"""repro — a reproduction of "Fast Object Search on Road Networks" (EDBT'09).

The ROAD framework evaluates location-dependent spatial queries (kNN and
range) over objects on road networks by organising the network as a
hierarchy of regional sub-networks (Rnets) augmented with shortcuts and
object abstracts, letting searches bypass object-free regions.

Public API tour:

* :class:`repro.ROAD` — build the index, attach objects, query, maintain.
* :mod:`repro.graph` — road-network model, generators, shortest paths.
* :mod:`repro.objects` — spatial objects and placement.
* :mod:`repro.queries` — LDSQ types (kNN / range, attribute predicates).
* :mod:`repro.baselines` — NetExp, Euclidean and Distance-Index engines.
* :mod:`repro.serving` — the unified serving API: the query-dispatch
  protocol every engine implements and the :class:`RoadService` facade
  (typed :class:`ServiceConfig`, async admission-batched front-end,
  sharded frozen replicas).
* :mod:`repro.eval` — the experiment harness reproducing the paper's
  figures.
"""

from repro.core.framework import ROAD, BuildReport, RoutedResult
from repro.core.frozen import FrozenRoad, FrozenRoadError, freeze_road
from repro.core.serialize import load_road, save_road
from repro.graph.network import RoadNetwork
from repro.objects.model import ObjectSet, SpatialObject
from repro.queries.types import (
    ANY,
    AggregateKNNQuery,
    KNNQuery,
    Predicate,
    RangeQuery,
    ResultEntry,
)
from repro.serving import (
    QueryExecutor,
    RoadService,
    ServiceConfig,
    UnknownDirectoryError,
    UnsupportedQueryError,
)

__version__ = "1.1.0"

__all__ = [
    "ANY",
    "AggregateKNNQuery",
    "BuildReport",
    "FrozenRoad",
    "FrozenRoadError",
    "KNNQuery",
    "ObjectSet",
    "Predicate",
    "QueryExecutor",
    "ROAD",
    "RangeQuery",
    "ResultEntry",
    "RoadNetwork",
    "RoadService",
    "RoutedResult",
    "ServiceConfig",
    "SpatialObject",
    "UnknownDirectoryError",
    "UnsupportedQueryError",
    "__version__",
    "freeze_road",
    "load_road",
    "save_road",
]
