"""Common search-engine interface.

Section 6 compares four approaches — ROAD, network expansion, the Euclidean
bound, and the Distance Index — on identical workloads, storage (CCAM,
4 KB pages, LRU-50 buffer) and metrics.  :class:`SearchEngine` is the
interface all four implement here, so the evaluation harness can treat them
uniformly: build, query, update, and account I/O through one pager.
"""

from __future__ import annotations

import time
from abc import abstractmethod
from typing import List, Optional

from repro.graph.network import RoadNetwork
from repro.objects.model import ObjectSet, SpatialObject
from repro.queries.types import ANY, KNNQuery, Predicate, RangeQuery, ResultEntry
from repro.serving.dispatch import (
    BatchContext,
    QueryExecutor,
    register_handler,
)
from repro.storage.pager import IOStats, PageManager


class EngineError(Exception):
    """Raised when an engine cannot serve a request (e.g. metric misuse)."""


class SearchEngine(QueryExecutor):
    """One LDSQ evaluation approach over a network + object set.

    As a :class:`~repro.serving.QueryExecutor` (dispatch key
    ``"baseline"``), every subclass gets ``execute`` / ``execute_many``
    — and with them the batch server front-end — for free from the two
    abstract query methods below; only engines with extra query kinds
    (e.g. :class:`~repro.baselines.road_adapter.ROADEngine` and
    aggregate kNN) register additional handlers under their own key.
    """

    dispatch_engine = "baseline"

    #: Short label used in result tables ("ROAD", "NetExp", ...).
    name: str = "engine"

    def __init__(self, network: RoadNetwork, pager: Optional[PageManager] = None):
        self.network = network
        self.pager = pager if pager is not None else PageManager(name=self.name)
        self.build_seconds = 0.0

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @abstractmethod
    def knn(self, node: int, k: int, predicate: Predicate = ANY) -> List[ResultEntry]:
        """The k nearest matching objects by network distance."""

    @abstractmethod
    def range(
        self, node: int, radius: float, predicate: Predicate = ANY
    ) -> List[ResultEntry]:
        """All matching objects within network distance ``radius``."""

    # ``execute`` / ``execute_many`` are inherited from QueryExecutor and
    # served by the ``engine="baseline"`` handlers at the bottom of this
    # module.

    # ------------------------------------------------------------------
    # Maintenance (Figures 15 and 16)
    # ------------------------------------------------------------------
    @abstractmethod
    def insert_object(self, obj: SpatialObject) -> None:
        """Add one object to the index."""

    @abstractmethod
    def delete_object(self, object_id: int) -> SpatialObject:
        """Remove one object from the index."""

    @abstractmethod
    def update_edge_distance(self, u: int, v: int, distance: float) -> None:
        """Propagate an edge-distance change into the index."""

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    @property
    @abstractmethod
    def index_size_bytes(self) -> int:
        """Total on-disk footprint of this engine's index structures."""

    @property
    @abstractmethod
    def objects(self) -> ObjectSet:
        """The engine's authoritative object collection."""

    def reset_io(self) -> None:
        """Empty the buffer and zero the counters (cold-cache queries)."""
        self.pager.drop_cache()
        self.pager.reset_stats()

    def io_snapshot(self) -> IOStats:
        """Current I/O counters."""
        return self.pager.stats.snapshot()

    def _timed(self, fn, *args, **kwargs):
        """Run a build step, accumulating wall time into build_seconds."""
        start = time.perf_counter()
        out = fn(*args, **kwargs)
        self.build_seconds += time.perf_counter() - start
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}(nodes={self.network.num_nodes}, "
            f"objects={len(self.objects)})"
        )


# ----------------------------------------------------------------------
# Generic baseline query handlers (the "baseline" dispatch key).
#
# Aggregate kNN is deliberately absent: the Section-2 baselines have no
# multi-source expansion, so an AggregateKNNQuery on them raises a typed
# UnsupportedQueryError naming the engine.
# ----------------------------------------------------------------------
@register_handler(KNNQuery, engine="baseline")
def _baseline_knn(engine: SearchEngine, query: KNNQuery, ctx: BatchContext):
    return engine.knn(query.node, query.k, query.predicate)


@register_handler(RangeQuery, engine="baseline")
def _baseline_range(engine: SearchEngine, query: RangeQuery, ctx: BatchContext):
    return engine.range(query.node, query.radius, query.predicate)
