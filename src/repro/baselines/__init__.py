"""The four compared engines: ROAD and the Section-2 baselines."""

from repro.baselines.distance_index import DistanceIndexEngine
from repro.baselines.engine import EngineError, SearchEngine
from repro.baselines.euclidean import EuclideanEngine
from repro.baselines.network_expansion import NetworkExpansionEngine
from repro.baselines.road_adapter import (
    ROAD_MAINTENANCE_MODES,
    ROAD_MODES,
    ROADEngine,
)

#: Build order used across the evaluation figures.
ALL_ENGINES = (
    NetworkExpansionEngine,
    EuclideanEngine,
    DistanceIndexEngine,
    ROADEngine,
)

__all__ = [
    "ALL_ENGINES",
    "ROAD_MAINTENANCE_MODES",
    "ROAD_MODES",
    "DistanceIndexEngine",
    "EngineError",
    "EuclideanEngine",
    "NetworkExpansionEngine",
    "ROADEngine",
    "SearchEngine",
]
