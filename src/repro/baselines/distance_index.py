"""Distance Index baseline (DistIdx) [6].

Hu et al.'s Distance Index "pre-computes for all nodes the object distances
and pointers to next nodes towards individual objects, and encodes them as
distance signatures".  Following the paper's experimental configuration,
"we adopt exact object distances in the distance signature to provide the
optimal search performance" (Section 6) — a query then answers directly
from the signature of the query node, and the dominating costs are exactly
those the paper measures: per-object network-wide pre-computation
(Figure 13: drastic index growth in |O|), bulky signatures to load
(Figures 17/18), and whole-network signature rewrites on any update
(Figures 15/16).

Signatures are chunked across B+-tree records so a node's signature spans
``ceil(|O| / chunk)`` disk records — loading it costs the "large number of
distance signatures" I/O the paper describes.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Dict, List, Optional, Set, Tuple

from repro.baselines.engine import SearchEngine
from repro.graph.network import RoadNetwork
from repro.objects.model import ObjectSet, SpatialObject
from repro.queries.types import ANY, Predicate, ResultEntry
from repro.storage.bptree import BPlusTree
from repro.storage.ccam import NetworkStore
from repro.storage.codecs import signature_entry_size
from repro.storage.pager import PageManager

#: Signature entries per chunked record (fits comfortably in one page).
CHUNK_SIZE = 150

#: Key space: node_id * stride + chunk index.
_KEY_STRIDE = 1 << 10


class DistanceIndexEngine(SearchEngine):
    """Per-node exact distance signatures with next-hop pointers."""

    name = "DistIdx"

    def __init__(
        self,
        network: RoadNetwork,
        objects: ObjectSet,
        pager: Optional[PageManager] = None,
    ) -> None:
        super().__init__(network, pager)
        self._objects = ObjectSet()
        self.store = self._timed(NetworkStore, network, self.pager, "distidx-net")
        self._signatures = BPlusTree(self.pager, name="distidx-sig")
        self._object_order: List[int] = []
        self._timed(self._build, objects)

    # ------------------------------------------------------------------
    # Construction: one network-wide Dijkstra per object
    # ------------------------------------------------------------------
    def _build(self, objects: ObjectSet) -> None:
        for obj in objects:
            self._objects.add(obj)
        self._object_order = sorted(self._objects.ids())
        columns = {
            object_id: self._object_column(self._objects.get(object_id))
            for object_id in self._object_order
        }
        self._write_signatures(columns)

    def _object_column(
        self, obj: SpatialObject
    ) -> Dict[int, Tuple[float, int]]:
        """distance + next hop from every node towards one object.

        A multi-source Dijkstra rooted at the object (entering the network
        at both host-edge endpoints with their offsets).
        """
        u, v = obj.edge
        edge_distance = self.network.edge_distance(u, v)
        dist: Dict[int, float] = {}
        next_hop: Dict[int, int] = {}
        seq = itertools.count()
        heap: List[Tuple[float, int, int, int]] = []
        for endpoint in (u, v):
            delta = obj.offset_from(endpoint, edge_distance)
            heapq.heappush(heap, (delta, next(seq), endpoint, endpoint))
        settled: Set[int] = set()
        while heap:
            d, _, node, hop = heapq.heappop(heap)
            if node in settled:
                continue
            settled.add(node)
            dist[node] = d
            next_hop[node] = hop
            for neighbour, weight in self.store.neighbours(node):
                if neighbour not in settled:
                    # The neighbour's first hop towards the object is `node`.
                    heapq.heappush(heap, (d + weight, next(seq), neighbour, node))
        return {n: (dist[n], next_hop[n]) for n in dist}

    def _write_signatures(
        self, columns: Dict[int, Dict[int, Tuple[float, int]]]
    ) -> None:
        chunks = max(1, -(-len(self._object_order) // CHUNK_SIZE))
        if chunks >= _KEY_STRIDE:
            raise ValueError("object count exceeds signature key space")
        for node in self.network.node_ids():
            # Drop stale chunks from an earlier (possibly larger) build.
            stale = [
                key
                for key, _ in self._signatures.range_scan(
                    node * _KEY_STRIDE, node * _KEY_STRIDE + _KEY_STRIDE - 1
                )
            ]
            for key in stale:
                self._signatures.delete(key)
            entries: List[Tuple[int, float, int]] = []
            for object_id in self._object_order:
                distance, hop = columns[object_id].get(node, (math.inf, -1))
                entries.append((object_id, distance, hop))
            for chunk_index in range(chunks):
                chunk = entries[
                    chunk_index * CHUNK_SIZE : (chunk_index + 1) * CHUNK_SIZE
                ]
                if not chunk and chunk_index > 0:
                    break
                self._signatures.insert(
                    node * _KEY_STRIDE + chunk_index,
                    chunk,
                    size=len(chunk) * signature_entry_size(),
                )
        self.pager.flush()

    def _read_signature(self, node: int) -> List[Tuple[int, float, int]]:
        """Load all signature chunks of one node (the bulky I/O)."""
        entries: List[Tuple[int, float, int]] = []
        for _key, chunk in self._signatures.range_scan(
            node * _KEY_STRIDE, node * _KEY_STRIDE + _KEY_STRIDE - 1
        ):
            entries.extend(chunk)
        return entries

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def knn(self, node: int, k: int, predicate: Predicate = ANY) -> List[ResultEntry]:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        candidates = []
        for object_id, distance, _ in self._read_signature(node):
            if not math.isfinite(distance):
                continue
            if predicate.matches(self._objects.get(object_id)):
                candidates.append((distance, object_id))
        candidates.sort()
        result = [ResultEntry(i, d) for d, i in candidates[:k]]
        self._materialise_paths(node, result)
        return result

    def range(
        self, node: int, radius: float, predicate: Predicate = ANY
    ) -> List[ResultEntry]:
        if radius < 0:
            raise ValueError(f"radius must be >= 0, got {radius}")
        out = []
        for object_id, distance, _ in self._read_signature(node):
            if distance <= radius + 1e-9 and predicate.matches(
                self._objects.get(object_id)
            ):
                out.append((distance, object_id))
        out.sort()
        result = [ResultEntry(i, d) for d, i in out]
        self._materialise_paths(node, result)
        return result

    def _materialise_paths(self, node: int, result: List[ResultEntry]) -> None:
        """Chase next-hop pointers to every answer object (Figure 11(d)).

        The Distance Index directs the search "towards the answer objects"
        by following per-node pointers; each hop loads that node's (bulky)
        signature.  This traversal is where DistIdx pays its query I/O —
        and it grows with |O| because signatures grow (Figure 17(b)).
        """
        for entry in result:
            try:
                self.path_to_object(node, entry.object_id)
            except (KeyError, RuntimeError):  # pragma: no cover - defensive
                continue

    def path_to_object(self, node: int, object_id: int) -> List[int]:
        """Chase next-hop pointers from ``node`` towards an object.

        This is the pointer-chasing access the Distance Index supports for
        materialising the actual route (Figure 3's arrows).
        """
        path = [node]
        seen = {node}
        current = node
        while True:
            entry = next(
                (
                    (d, hop)
                    for oid, d, hop in self._read_signature(current)
                    if oid == object_id
                ),
                None,
            )
            if entry is None or entry[1] < 0:
                raise KeyError(f"object {object_id} unreachable from {node}")
            _, hop = entry
            if hop == current:
                return path  # arrived at the object's host edge endpoint
            if hop in seen:
                raise RuntimeError("next-hop cycle — index corrupt")
            path.append(hop)
            seen.add(hop)
            current = hop

    # ------------------------------------------------------------------
    # Maintenance: the documented weakness — whole-network rewrites
    # ------------------------------------------------------------------
    def insert_object(self, obj: SpatialObject) -> None:
        self._objects.add(obj)
        self._rebuild_all()

    def delete_object(self, object_id: int) -> SpatialObject:
        obj = self._objects.remove(object_id)
        self._rebuild_all()
        return obj

    def update_edge_distance(self, u: int, v: int, distance: float) -> None:
        old = self.network.update_edge(u, v, distance)
        self.store.update_edge_distance(u, v, distance)
        factor = distance / old
        for obj in list(self._objects.on_edge(u, v)):
            self._objects.remove(obj.object_id)
            self._objects.add(
                SpatialObject(obj.object_id, obj.edge, obj.delta * factor, dict(obj.attrs))
            )
        self._rebuild_all()

    def _rebuild_all(self) -> None:
        """Recompute every node's signature (distances changed globally)."""
        self._object_order = sorted(self._objects.ids())
        columns = {
            object_id: self._object_column(self._objects.get(object_id))
            for object_id in self._object_order
        }
        self._write_signatures(columns)

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    @property
    def index_size_bytes(self) -> int:
        return self.store.size_bytes + self._signatures.size_bytes

    @property
    def objects(self) -> ObjectSet:
        return self._objects
