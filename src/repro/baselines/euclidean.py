"""Euclidean distance bound baseline (IER) [16, 19].

"Euclidean distance is always the lower bound of network distance" — so
candidates can be fetched from an R-tree in increasing Euclidean distance
and verified with exact shortest-path searches (A* [3]) until the bound
proves no better candidate remains (Incremental Euclidean Restriction).

The paper's criticisms are embodied faithfully: every candidate costs an
exact network-distance computation ("false hits", "redundant shortest path
searches over the same portion of the network"), and the heuristic is
invalid for metrics like travel time where the lower-bound property fails —
the engine refuses such networks (Section 2: "not always applicable").
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from repro.baselines.engine import EngineError, SearchEngine
from repro.graph.network import RoadNetwork
from repro.graph.shortest_path import Unreachable, astar
from repro.objects.model import ObjectSet, SpatialObject
from repro.queries.types import ANY, Predicate, ResultEntry
from repro.storage.ccam import NetworkStore
from repro.storage.pager import PageManager
from repro.storage.rtree import Rect, RTree

#: Metrics for which the Euclidean lower bound holds.
SOUND_METRICS = ("distance",)


class EuclideanEngine(SearchEngine):
    """R-tree candidates by Euclidean distance + A* network verification."""

    name = "Euclidean"

    def __init__(
        self,
        network: RoadNetwork,
        objects: ObjectSet,
        pager: Optional[PageManager] = None,
        *,
        unsafe_metric_override: bool = False,
    ) -> None:
        if network.metric not in SOUND_METRICS and not unsafe_metric_override:
            raise EngineError(
                f"Euclidean bound is unsound for metric {network.metric!r}: "
                "straight-line distance does not lower-bound it (Section 2)"
            )
        super().__init__(network, pager)
        self._objects = ObjectSet()
        self._positions: Dict[int, Tuple[float, float]] = {}
        self.store = self._timed(NetworkStore, network, self.pager, "euclid-net")
        self.rtree = self._timed(RTree, self.pager, "euclid-rtree")
        self._timed(self._load_objects, objects)

    def _load_objects(self, objects: ObjectSet) -> None:
        for obj in objects:
            self.insert_object(obj)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def knn(self, node: int, k: int, predicate: Predicate = ANY) -> List[ResultEntry]:
        """Incremental Euclidean Restriction kNN.

        Candidates stream from the R-tree in Euclidean order; each is
        verified by exact network distance.  The scan stops when the next
        candidate's Euclidean distance exceeds the k-th best verified
        network distance (lower-bound argument).
        """
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        qx, qy = self.store.coords(node)
        best: List[Tuple[float, int]] = []  # (network distance, object id)
        for euclid, object_id in self.rtree.iter_nearest(qx, qy):
            if len(best) >= k and euclid >= best[-1][0] - 1e-12:
                break
            obj = self._objects.get(object_id)
            if not predicate.matches(obj):
                continue
            network_distance = self._network_distance(node, obj)
            if network_distance is None:
                continue
            best.append((network_distance, object_id))
            best.sort()
            del best[k:]
        return [ResultEntry(object_id, d) for d, object_id in best]

    def range(
        self, node: int, radius: float, predicate: Predicate = ANY
    ) -> List[ResultEntry]:
        """Window candidates within Euclidean ``radius``, verify each."""
        if radius < 0:
            raise ValueError(f"radius must be >= 0, got {radius}")
        qx, qy = self.store.coords(node)
        window = Rect(qx - radius, qy - radius, qx + radius, qy + radius)
        results: List[ResultEntry] = []
        for rect, object_id in self.rtree.window(window):
            if rect.min_dist(qx, qy) > radius:
                continue  # box corner: outside the circle
            obj = self._objects.get(object_id)
            if not predicate.matches(obj):
                continue
            network_distance = self._network_distance(node, obj, cutoff=radius)
            if network_distance is not None and network_distance <= radius + 1e-9:
                results.append(ResultEntry(object_id, network_distance))
        results.sort(key=lambda e: (e.distance, e.object_id))
        return results

    def _network_distance(
        self, node: int, obj: SpatialObject, cutoff: Optional[float] = None
    ) -> Optional[float]:
        """Exact ``||node, o||`` via A* to each host-edge endpoint."""
        u, v = obj.edge
        edge_distance = self.network.edge_distance(u, v)
        best: Optional[float] = None
        for endpoint in (u, v):
            delta = obj.offset_from(endpoint, edge_distance)
            target_cutoff = None if cutoff is None else cutoff - delta
            if target_cutoff is not None and target_cutoff < 0:
                continue
            try:
                d, _ = astar(
                    self.store.neighbours,
                    node,
                    endpoint,
                    self._heuristic(endpoint),
                    cutoff=target_cutoff,
                )
            except Unreachable:
                continue
            total = d + delta
            if best is None or total < best:
                best = total
        return best

    def _heuristic(self, target: int):
        tx, ty = self.store.coords(target)

        def h(node: int) -> float:
            x, y = self.store.coords(node)
            return math.hypot(x - tx, y - ty)

        return h

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def insert_object(self, obj: SpatialObject) -> None:
        self._objects.add(obj)
        position = self._interpolate(obj)
        self._positions[obj.object_id] = position
        self.rtree.insert(Rect.point(*position), obj.object_id)

    def delete_object(self, object_id: int) -> SpatialObject:
        obj = self._objects.remove(object_id)
        position = self._positions.pop(object_id)
        self.rtree.delete(Rect.point(*position), object_id)
        return obj

    def update_edge_distance(self, u: int, v: int, distance: float) -> None:
        old = self.network.update_edge(u, v, distance)
        self.store.update_edge_distance(u, v, distance)
        factor = distance / old
        for obj in list(self._objects.on_edge(u, v)):
            self.delete_object(obj.object_id)
            self.insert_object(
                SpatialObject(obj.object_id, obj.edge, obj.delta * factor, dict(obj.attrs))
            )

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    @property
    def index_size_bytes(self) -> int:
        return self.store.size_bytes + self.rtree.size_bytes

    @property
    def objects(self) -> ObjectSet:
        return self._objects

    def _interpolate(self, obj: SpatialObject) -> Tuple[float, float]:
        """Coordinates of an object: linear interpolation along its edge."""
        u, v = obj.edge
        ux, uy = self.network.coords(u)
        vx, vy = self.network.coords(v)
        edge_distance = self.network.edge_distance(u, v)
        t = obj.delta / edge_distance if edge_distance > 0 else 0.0
        t = min(max(t, 0.0), 1.0)
        return ux + (vx - ux) * t, uy + (vy - uy) * t
