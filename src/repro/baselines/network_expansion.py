"""Network expansion baseline (NetExp) [9, 16].

"Network expansion gradually expands the search space in a network by
forming a spanning tree rooted at a query point" (Section 2) — i.e. plain
Dijkstra from the query node, checking the objects stored with every
settled node.  It is the correctness reference and the no-index baseline:
nothing precomputed, so index cost and update cost are minimal while query
cost grows with the explored area ("an almost blind scan over the entire
search space").

Objects are stored with network nodes (Section 6), so object lookups are
co-located with the adjacency page already being read — no extra I/O.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Dict, List, Optional, Set, Tuple

from repro.baselines.engine import SearchEngine
from repro.graph.network import RoadNetwork
from repro.objects.model import ObjectSet, SpatialObject
from repro.queries.types import ANY, Predicate, ResultEntry
from repro.storage.ccam import NetworkStore
from repro.storage.codecs import attrs_size, object_record_size
from repro.storage.pager import PAGE_SIZE, PageManager


class NetworkExpansionEngine(SearchEngine):
    """Dijkstra-from-the-query-node search over CCAM-stored nodes."""

    name = "NetExp"

    def __init__(
        self,
        network: RoadNetwork,
        objects: ObjectSet,
        pager: Optional[PageManager] = None,
    ) -> None:
        super().__init__(network, pager)
        self._objects = ObjectSet()
        self._node_objects: Dict[int, List[Tuple[SpatialObject, float]]] = {}
        self.store = self._timed(NetworkStore, network, self.pager, "netexp")
        self._timed(self._load_objects, objects)

    def _load_objects(self, objects: ObjectSet) -> None:
        for obj in objects:
            self.insert_object(obj)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def knn(self, node: int, k: int, predicate: Predicate = ANY) -> List[ResultEntry]:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        return self._expand(node, predicate, k=k)

    def range(
        self, node: int, radius: float, predicate: Predicate = ANY
    ) -> List[ResultEntry]:
        if radius < 0:
            raise ValueError(f"radius must be >= 0, got {radius}")
        return self._expand(node, predicate, radius=radius)

    def _expand(
        self,
        source: int,
        predicate: Predicate,
        *,
        k: Optional[int] = None,
        radius: Optional[float] = None,
    ) -> List[ResultEntry]:
        """Dijkstra expansion collecting objects off settled nodes."""
        seq = itertools.count()
        heap: List[Tuple[float, int, bool, int]] = [(0.0, next(seq), False, source)]
        settled_nodes: Set[int] = set()
        settled_objects: Set[int] = set()
        result: List[ResultEntry] = []
        while heap:
            distance, _, is_object, item = heapq.heappop(heap)
            if radius is not None and distance > radius:
                break
            if is_object:
                if item in settled_objects:
                    continue
                settled_objects.add(item)
                result.append(ResultEntry(item, distance))
                if k is not None and len(result) >= k:
                    break
                continue
            if item in settled_nodes:
                continue
            settled_nodes.add(item)
            # Objects are co-located with the node's page: no extra I/O.
            for obj, delta in self._node_objects.get(item, ()):
                if obj.object_id not in settled_objects and predicate.matches(obj):
                    heapq.heappush(
                        heap, (distance + delta, next(seq), True, obj.object_id)
                    )
            for neighbour, weight in self.store.neighbours(item):
                if neighbour not in settled_nodes:
                    heapq.heappush(
                        heap, (distance + weight, next(seq), False, neighbour)
                    )
        return result

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def insert_object(self, obj: SpatialObject) -> None:
        u, v = obj.edge
        distance = self.network.edge_distance(u, v)
        self._objects.add(obj)
        self._node_objects.setdefault(u, []).append((obj, obj.offset_from(u, distance)))
        self._node_objects.setdefault(v, []).append((obj, obj.offset_from(v, distance)))

    def delete_object(self, object_id: int) -> SpatialObject:
        obj = self._objects.remove(object_id)
        for node in obj.edge:
            entries = self._node_objects.get(node, [])
            entries[:] = [(o, d) for o, d in entries if o.object_id != object_id]
            if not entries:
                self._node_objects.pop(node, None)
        return obj

    def update_edge_distance(self, u: int, v: int, distance: float) -> None:
        old = self.network.update_edge(u, v, distance)
        self.store.update_edge_distance(u, v, distance)
        # Objects on the segment keep their relative position (offsets are
        # metric values and scale with the edge).
        factor = distance / old
        for obj in list(self._objects.on_edge(u, v)):
            self.delete_object(obj.object_id)
            scaled = SpatialObject(
                obj.object_id, obj.edge, obj.delta * factor, dict(obj.attrs)
            )
            self.insert_object(scaled)

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    @property
    def index_size_bytes(self) -> int:
        object_bytes = sum(
            object_record_size(attrs_size(o.attrs)) * 2 for o in self._objects
        )
        object_pages = -(-object_bytes // PAGE_SIZE) if object_bytes else 0
        return self.store.size_bytes + object_pages * PAGE_SIZE

    @property
    def objects(self) -> ObjectSet:
        return self._objects
