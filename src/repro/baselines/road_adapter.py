"""ROAD behind the common engine interface.

Wraps :class:`repro.core.framework.ROAD` as a :class:`SearchEngine` so the
evaluation harness can run all four approaches through one code path with
shared I/O accounting.

Two serving modes are supported:

* ``"charged"`` (default) — every query pays the simulated disk stack,
  reproducing the paper's I/O profile;
* ``"frozen"`` — queries run against a compiled
  :class:`~repro.core.frozen.FrozenRoad` snapshot (zero pager traffic).

In frozen mode, maintenance follows one of two lifecycles selected by
``maintenance_mode``:

* ``"patch"`` (default) — each update's
  :class:`~repro.core.maintenance.MaintenanceReport` is delta-applied to
  the live snapshot (:meth:`FrozenRoad.apply`): only the dirty CSR spans
  are rewritten, falling back to a full recompile on structural changes.
  Update cost scales with the perturbation, not the network.
* ``"refreeze"`` — the pre-patch behaviour: updates invalidate the
  snapshot, which is lazily re-frozen in full on the next query.

``stats()`` surfaces the last report plus cumulative maintenance counters
(patches applied, fallbacks, invalidations, freezes).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.baselines.engine import EngineError, SearchEngine
from repro.core.framework import ROAD
from repro.core.frozen import FrozenRoad
from repro.core.frozen_backends import get_backend
from repro.core.maintenance import MaintenanceReport
from repro.core.object_abstract import AbstractFactory, exact_abstract
from repro.graph.network import RoadNetwork
from repro.objects.model import ObjectSet, SpatialObject
from repro.partition.hierarchy import Bisector
from repro.queries.types import (
    ANY,
    AggregateKNNQuery,
    KNNQuery,
    ODMatrixQuery,
    Predicate,
    RangeQuery,
    ResultEntry,
    RouteKNNQuery,
    ServiceAreaQuery,
)
from repro.serving.dispatch import (
    DEFAULT_DIRECTORY,
    BatchContext,
    register_handler,
)
from repro.storage.pager import PageManager

#: Valid serving modes for :class:`ROADEngine`.
ROAD_MODES = ("charged", "frozen")

#: Valid frozen-snapshot maintenance lifecycles.
ROAD_MAINTENANCE_MODES = ("patch", "refreeze")


class ROADEngine(SearchEngine):
    """The paper's system as a pluggable engine (Table 1 defaults: p=4)."""

    name = "ROAD"
    #: Registry key: the ``"road"`` handlers forward to whichever serving
    #: object (charged ROAD / frozen snapshot) the configured mode picks,
    #: falling back to the generic ``"baseline"`` handlers via the MRO.
    dispatch_engine = "road"

    def __init__(
        self,
        network: RoadNetwork,
        objects: ObjectSet,
        pager: Optional[PageManager] = None,
        *,
        levels: int = 4,
        fanout: int = 4,
        bisector: Optional[Bisector] = None,
        partition_tree=None,
        reduce_shortcuts: bool = True,
        abstract_factory: AbstractFactory = exact_abstract,
        mode: str = "charged",
        maintenance_mode: str = "patch",
        backend: Optional[str] = None,
        providers: Optional[Mapping[str, ObjectSet]] = None,
        directories: Optional[Sequence[str]] = None,
    ) -> None:
        if mode not in ROAD_MODES:
            raise EngineError(
                f"mode must be one of {ROAD_MODES}, got {mode!r}"
            )
        if maintenance_mode not in ROAD_MAINTENANCE_MODES:
            raise EngineError(
                f"maintenance_mode must be one of {ROAD_MAINTENANCE_MODES}, "
                f"got {maintenance_mode!r}"
            )
        if backend is not None:
            # Validate eagerly (unknown name / missing numpy fail at
            # engine construction, not at the first freeze).
            get_backend(backend)
        super().__init__(network, pager)
        self.mode = mode
        self.maintenance_mode = maintenance_mode
        self.backend = backend
        #: The abstract factory every directory of this engine uses —
        #: late-attached providers default to it, so pruning behaviour
        #: never depends on *when* a provider was attached.
        self._abstract_factory = abstract_factory
        self.road = self._timed(
            ROAD.build,
            network,
            levels=levels,
            fanout=fanout,
            bisector=bisector,
            partition_tree=partition_tree,
            reduce_shortcuts=reduce_shortcuts,
            pager=self.pager,
        )
        self._timed(
            self.road.attach_objects, objects, abstract_factory=abstract_factory
        )
        # Additional content providers, attached as named directories on
        # the same Route Overlay (``objects`` stays the default).
        for name, provider_objects in (providers or {}).items():
            self._timed(
                self.road.attach_objects,
                provider_objects,
                name=name,
                abstract_factory=abstract_factory,
            )
        #: Which attached directories frozen snapshots compile — None
        #: means *all* of them (the multi-directory snapshot), so a
        #: refreeze can never silently drop a provider the service routes
        #: to.  Names are validated against the attached set eagerly, and
        #: a pinned set must keep the default directory: the engine's
        #: directory-less queries must answer identically in charged and
        #: frozen mode, so the snapshot's default may never drift to
        #: "first pinned name".  (Named-provider-only serving wants a
        #: bare ``road.freeze(directory=...)`` snapshot, not the engine.)
        if directories is not None:
            # Normalise once up front: a one-shot iterable must not be
            # exhausted by the first validation pass.
            directories = tuple(directories)
            attached = self.road.directory_names
            unknown = [d for d in directories if d not in attached]
            if unknown:
                raise EngineError(
                    f"directories {unknown!r} not attached "
                    f"(attached: {attached!r})"
                )
            if len(set(directories)) != len(directories):
                raise EngineError(
                    f"directories lists a name twice: {directories!r}"
                )
            if DEFAULT_DIRECTORY not in directories:
                raise EngineError(
                    f"directories must include the default directory "
                    f"{DEFAULT_DIRECTORY!r} so charged and frozen modes "
                    f"serve the same provider for directory-less queries; "
                    f"freeze a snapshot directly for named-provider-only "
                    f"serving"
                )
            self.directories: Optional[Tuple[str, ...]] = directories
        else:
            self.directories = None
        self._frozen: Optional[FrozenRoad] = None
        self._last_report: Optional[MaintenanceReport] = None
        self._maintenance_counters: Dict[str, int] = {
            "updates": 0,           # maintenance calls seen by the engine
            "patches_applied": 0,   # snapshot delta-patches that stuck
            "patch_fallbacks": 0,   # patches that degraded to a recompile
            "invalidations": 0,     # snapshots dropped (refreeze lifecycle)
            "freezes": 0,           # full compiles (initial, lazy, fallback)
        }
        if mode == "frozen":
            self._timed(self._refreeze)

    # ------------------------------------------------------------------
    # Frozen snapshot lifecycle
    # ------------------------------------------------------------------
    def _refreeze(self) -> FrozenRoad:
        # Compile the configured directory set (None = every attached
        # provider) into one snapshot sharing the entry arrays, so a
        # lazily re-frozen snapshot serves the same directories the
        # previous one did.
        self._frozen = self.road.freeze(
            directories=self.directories, backend=self.backend
        )
        self._maintenance_counters["freezes"] += 1
        return self._frozen

    def _serving(self):
        """The object queries run against in the configured mode."""
        if self.mode == "frozen":
            return self._frozen if self._frozen is not None else self._refreeze()
        return self.road

    def invalidate_frozen(self) -> None:
        """Drop the snapshot after an update; re-frozen on next query."""
        if self._frozen is not None:
            self._maintenance_counters["invalidations"] += 1
        self._frozen = None

    def _maintain(self, report: MaintenanceReport) -> MaintenanceReport:
        """Reconcile the snapshot with one live update, per lifecycle."""
        self._last_report = report
        self._maintenance_counters["updates"] += 1
        if self.mode != "frozen" or self._frozen is None:
            return report
        if self.maintenance_mode == "refreeze":
            self.invalidate_frozen()
            return report
        outcome = self._frozen.apply(report, self.road)
        if outcome == "patched":
            self._maintenance_counters["patches_applied"] += 1
        else:
            self._maintenance_counters["patch_fallbacks"] += 1
            self._maintenance_counters["freezes"] += 1
        return report

    @property
    def frozen(self) -> Optional[FrozenRoad]:
        """The current snapshot.

        None in charged mode and, under the ``refreeze`` lifecycle, after
        an update (until the next query lazily re-freezes).  Under the
        default ``patch`` lifecycle the same snapshot object stays live
        across updates — it is delta-patched, never dropped.
        """
        return self._frozen

    @property
    def last_report(self) -> Optional[MaintenanceReport]:
        """The report of the most recent maintenance operation."""
        return self._last_report

    # ------------------------------------------------------------------
    # Directory management (multi-provider serving)
    # ------------------------------------------------------------------
    def attach_objects(
        self,
        objects: ObjectSet,
        *,
        name: str,
        abstract_factory: Optional[AbstractFactory] = None,
    ):
        """Attach another provider's object set as a named directory.

        ``abstract_factory`` defaults to the factory the engine was
        constructed with, so late-attached providers prune exactly like
        construction-time ones.  In frozen mode a live snapshot compiled
        with the default ``directories=None`` policy is invalidated so
        the next query re-freezes with the new directory included; a
        pinned explicit ``directories`` list is left alone (the new
        provider is served once the caller adds it and refreezes).
        """
        if abstract_factory is None:
            abstract_factory = self._abstract_factory
        directory = self.road.attach_objects(
            objects, name=name, abstract_factory=abstract_factory
        )
        if self.mode == "frozen" and self.directories is None:
            self.invalidate_frozen()
        return directory

    def detach_objects(self, name: str) -> None:
        """Detach a directory; frozen snapshots stop serving it.

        The default directory cannot be detached through the engine:
        the charged path would start raising on directory-less queries
        while a re-frozen snapshot would silently fall back to another
        provider — the modes must never answer the same query
        differently.
        """
        if name == DEFAULT_DIRECTORY:
            raise EngineError(
                f"the default directory {DEFAULT_DIRECTORY!r} cannot be "
                f"detached from the engine (charged and frozen modes "
                f"would diverge on directory-less queries)"
            )
        compiled = self.directories
        self.road.detach_objects(name)
        if self.directories is not None:
            self.directories = tuple(
                d for d in self.directories if d != name
            )
        # A pinned set that never compiled the detached name leaves the
        # snapshot's contents untouched — keep it instead of paying a
        # full refreeze on the next query.
        if self.mode == "frozen" and (compiled is None or name in compiled):
            self.invalidate_frozen()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def knn(self, node: int, k: int, predicate: Predicate = ANY) -> List[ResultEntry]:
        return self._serving().knn(node, k, predicate)

    def range(
        self, node: int, radius: float, predicate: Predicate = ANY
    ) -> List[ResultEntry]:
        return self._serving().range(node, radius, predicate)

    def aggregate_knn(
        self,
        nodes: Sequence[int],
        k: int,
        agg: str = "sum",
        predicate: Predicate = ANY,
    ) -> List[ResultEntry]:
        """Aggregate kNN in the configured serving mode."""
        return self._serving().aggregate_knn(nodes, k, agg, predicate)

    @property
    def directory_names(self) -> List[str]:
        """Directories this engine serves, pinned set applied.

        The pinned ``directories`` knob restricts the servable set in
        *both* modes — the charged road physically holds every attached
        directory, but answering for an unpinned one in charged mode
        while frozen mode 404s on it would make the modes diverge on the
        same named query.
        """
        names = self._serving().directory_names
        if self.directories is not None:
            names = [n for n in names if n in self.directories]
        return names

    @property
    def default_directory(self) -> str:
        """The configured serving object's own default."""
        return self._serving().default_directory

    def execute_many(
        self,
        queries: Sequence,
        *,
        directory: Optional[str] = None,
        stats=None,
    ) -> List[List[ResultEntry]]:
        """Batch entry point: forwarded wholesale to the serving object.

        Forwarding the whole batch (rather than looping the inherited
        per-query dispatch) lets the charged path share its per-predicate
        AbstractCaches across the batch exactly as before.  The directory
        resolves through *this* engine first, so the pinned
        ``directories`` restriction holds on the batch path exactly as on
        ``execute`` — the charged road itself would happily serve any
        attached directory.
        """
        return self._serving().execute_many(
            queries, directory=self.check_directory(directory), stats=stats
        )

    # ------------------------------------------------------------------
    # Maintenance (patched into or invalidating any frozen snapshot)
    # ------------------------------------------------------------------
    def insert_object(
        self, obj: SpatialObject, *, directory: str = DEFAULT_DIRECTORY
    ) -> None:
        self._maintain(self.road.insert_object(obj, directory=directory))

    def delete_object(
        self, object_id: int, *, directory: str = DEFAULT_DIRECTORY
    ) -> SpatialObject:
        report = self._maintain(
            self.road.delete_object(object_id, directory=directory)
        )
        return report.obj

    def update_edge_distance(
        self, u: int, v: int, distance: float
    ) -> MaintenanceReport:
        return self._maintain(self.road.update_edge_distance(u, v, distance))

    def update_object_attrs(
        self, object_id: int, attrs, *, directory: str = DEFAULT_DIRECTORY
    ) -> MaintenanceReport:
        return self._maintain(
            self.road.update_object_attrs(object_id, attrs, directory=directory)
        )

    def add_edge(
        self, u: int, v: int, distance: float, *, coords=None
    ) -> MaintenanceReport:
        """Open a road segment, reconciling any frozen snapshot."""
        return self._maintain(
            self.road.add_edge(u, v, distance, coords=coords)
        )

    def remove_edge(self, u: int, v: int) -> MaintenanceReport:
        """Close a road segment, reconciling any frozen snapshot."""
        return self._maintain(self.road.remove_edge(u, v))

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        """Index shape plus the serving/maintenance lifecycle state."""
        summary = self.road.stats()
        summary.update(
            mode=self.mode,
            maintenance_mode=self.maintenance_mode,
            maintenance=dict(self._maintenance_counters),
            last_report=self._last_report,
        )
        if self._frozen is not None:
            summary["frozen_backend"] = self._frozen.backend
            summary["frozen_memory"] = self._frozen.memory_stats()
            summary["frozen_directories"] = self._frozen.directory_names
        return summary

    @property
    def index_size_bytes(self) -> int:
        return self.road.index_size_bytes()

    @property
    def objects(self) -> ObjectSet:
        return self.road.directory().objects


# ----------------------------------------------------------------------
# ROADEngine query handlers (the "road" dispatch key): forward one query
# to the configured serving object, which re-validates the directory and
# runs its own registered handler.
# ----------------------------------------------------------------------
def _road_forward(engine: ROADEngine, query, ctx: BatchContext):
    return engine._serving().execute(
        query, directory=ctx.directory, stats=ctx.stats
    )


for _query_type in (
    KNNQuery,
    RangeQuery,
    AggregateKNNQuery,
    ODMatrixQuery,
    ServiceAreaQuery,
    RouteKNNQuery,
):
    register_handler(_query_type, engine="road")(_road_forward)
del _query_type
