"""ROAD behind the common engine interface.

Wraps :class:`repro.core.framework.ROAD` as a :class:`SearchEngine` so the
evaluation harness can run all four approaches through one code path with
shared I/O accounting.
"""

from __future__ import annotations

from typing import List, Optional

from repro.baselines.engine import SearchEngine
from repro.core.framework import ROAD
from repro.core.object_abstract import AbstractFactory, exact_abstract
from repro.graph.network import RoadNetwork
from repro.objects.model import ObjectSet, SpatialObject
from repro.partition.hierarchy import Bisector
from repro.queries.types import ANY, Predicate, ResultEntry
from repro.storage.pager import PageManager


class ROADEngine(SearchEngine):
    """The paper's system as a pluggable engine (Table 1 defaults: p=4)."""

    name = "ROAD"

    def __init__(
        self,
        network: RoadNetwork,
        objects: ObjectSet,
        pager: Optional[PageManager] = None,
        *,
        levels: int = 4,
        fanout: int = 4,
        bisector: Optional[Bisector] = None,
        partition_tree=None,
        reduce_shortcuts: bool = True,
        abstract_factory: AbstractFactory = exact_abstract,
    ) -> None:
        super().__init__(network, pager)
        self.road = self._timed(
            ROAD.build,
            network,
            levels=levels,
            fanout=fanout,
            bisector=bisector,
            partition_tree=partition_tree,
            reduce_shortcuts=reduce_shortcuts,
            pager=self.pager,
        )
        self._timed(
            self.road.attach_objects, objects, abstract_factory=abstract_factory
        )

    def knn(self, node: int, k: int, predicate: Predicate = ANY) -> List[ResultEntry]:
        return self.road.knn(node, k, predicate)

    def range(
        self, node: int, radius: float, predicate: Predicate = ANY
    ) -> List[ResultEntry]:
        return self.road.range(node, radius, predicate)

    def insert_object(self, obj: SpatialObject) -> None:
        self.road.insert_object(obj)

    def delete_object(self, object_id: int) -> SpatialObject:
        return self.road.delete_object(object_id)

    def update_edge_distance(self, u: int, v: int, distance: float) -> None:
        self.road.update_edge_distance(u, v, distance)

    @property
    def index_size_bytes(self) -> int:
        return self.road.index_size_bytes()

    @property
    def objects(self) -> ObjectSet:
        return self.road.directory().objects
