"""ROAD behind the common engine interface.

Wraps :class:`repro.core.framework.ROAD` as a :class:`SearchEngine` so the
evaluation harness can run all four approaches through one code path with
shared I/O accounting.

Two serving modes are supported:

* ``"charged"`` (default) — every query pays the simulated disk stack,
  reproducing the paper's I/O profile;
* ``"frozen"`` — queries run against a compiled
  :class:`~repro.core.frozen.FrozenRoad` snapshot (zero pager traffic).
  Maintenance operations invalidate the snapshot, which is lazily
  re-frozen on the next query.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.baselines.engine import EngineError, SearchEngine
from repro.core.framework import ROAD
from repro.core.frozen import FrozenRoad
from repro.core.object_abstract import AbstractFactory, exact_abstract
from repro.graph.network import RoadNetwork
from repro.objects.model import ObjectSet, SpatialObject
from repro.partition.hierarchy import Bisector
from repro.queries.types import ANY, Predicate, ResultEntry
from repro.storage.pager import PageManager

#: Valid serving modes for :class:`ROADEngine`.
ROAD_MODES = ("charged", "frozen")


class ROADEngine(SearchEngine):
    """The paper's system as a pluggable engine (Table 1 defaults: p=4)."""

    name = "ROAD"

    def __init__(
        self,
        network: RoadNetwork,
        objects: ObjectSet,
        pager: Optional[PageManager] = None,
        *,
        levels: int = 4,
        fanout: int = 4,
        bisector: Optional[Bisector] = None,
        partition_tree=None,
        reduce_shortcuts: bool = True,
        abstract_factory: AbstractFactory = exact_abstract,
        mode: str = "charged",
    ) -> None:
        if mode not in ROAD_MODES:
            raise EngineError(
                f"mode must be one of {ROAD_MODES}, got {mode!r}"
            )
        super().__init__(network, pager)
        self.mode = mode
        self.road = self._timed(
            ROAD.build,
            network,
            levels=levels,
            fanout=fanout,
            bisector=bisector,
            partition_tree=partition_tree,
            reduce_shortcuts=reduce_shortcuts,
            pager=self.pager,
        )
        self._timed(
            self.road.attach_objects, objects, abstract_factory=abstract_factory
        )
        self._frozen: Optional[FrozenRoad] = None
        if mode == "frozen":
            self._timed(self._refreeze)

    # ------------------------------------------------------------------
    # Frozen snapshot lifecycle
    # ------------------------------------------------------------------
    def _refreeze(self) -> FrozenRoad:
        self._frozen = self.road.freeze()
        return self._frozen

    def _serving(self):
        """The object queries run against in the configured mode."""
        if self.mode == "frozen":
            return self._frozen if self._frozen is not None else self._refreeze()
        return self.road

    def invalidate_frozen(self) -> None:
        """Drop the snapshot after an update; re-frozen on next query."""
        self._frozen = None

    @property
    def frozen(self) -> Optional[FrozenRoad]:
        """The current snapshot (None in charged mode or after updates)."""
        return self._frozen

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def knn(self, node: int, k: int, predicate: Predicate = ANY) -> List[ResultEntry]:
        return self._serving().knn(node, k, predicate)

    def range(
        self, node: int, radius: float, predicate: Predicate = ANY
    ) -> List[ResultEntry]:
        return self._serving().range(node, radius, predicate)

    def execute_many(self, queries: Sequence) -> List[List[ResultEntry]]:
        """Batch entry point: one call per workload, shared predicate caches."""
        return self._serving().execute_many(queries)

    # ------------------------------------------------------------------
    # Maintenance (invalidates any frozen snapshot)
    # ------------------------------------------------------------------
    def insert_object(self, obj: SpatialObject) -> None:
        self.road.insert_object(obj)
        self.invalidate_frozen()

    def delete_object(self, object_id: int) -> SpatialObject:
        removed = self.road.delete_object(object_id)
        self.invalidate_frozen()
        return removed

    def update_edge_distance(self, u: int, v: int, distance: float) -> None:
        self.road.update_edge_distance(u, v, distance)
        self.invalidate_frozen()

    @property
    def index_size_bytes(self) -> int:
        return self.road.index_size_bytes()

    @property
    def objects(self) -> ObjectSet:
        return self.road.directory().objects
