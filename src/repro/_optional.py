"""Optional-dependency gates shared across the package.

The core library is stdlib-only; numpy is an extra that powers the
synthetic generators, object placement, workload sampling and the
FrozenRoad ``numpy`` backend.  Every feature that needs it funnels
through :func:`require_numpy`, so the install guidance lives (and can be
reworded) in exactly one place.
"""

from __future__ import annotations


def require_numpy(feature: str, *, hint: str = ""):
    """Import and return numpy, or raise ImportError naming ``feature``.

    ``hint`` appends feature-specific guidance (e.g. a stdlib fallback)
    after the install instructions.
    """
    try:
        import numpy
    except ImportError as exc:
        message = (
            f"{feature} requires the optional numpy dependency: install it "
            f"with pip install 'road-repro[numpy]' (or pip install numpy)"
        )
        if hint:
            message += f", {hint}"
        raise ImportError(message) from exc
    return numpy
