"""CLI entry point: ``python -m repro.analysis [ROOT ...]``.

Exit status 0 when every selected rule passes on every root, 1 when any
finding is reported, 2 on usage errors (unknown rule, missing root).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.analysis.engine import (
    AnalysisError,
    Finding,
    all_rules,
    analyze_path,
    get_rule,
)


def _default_root() -> Path:
    """The installed ``repro`` package — the tree CI gates on."""
    import repro

    return Path(repro.__file__).resolve().parent


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Check the repo's structural invariants (RA rules).",
    )
    parser.add_argument(
        "roots",
        nargs="*",
        type=Path,
        help="directories or files to scan (default: the repro package)",
    )
    parser.add_argument(
        "--rule",
        action="append",
        metavar="RULE",
        help="run only this rule (repeatable, e.g. --rule RA001)",
    )
    parser.add_argument(
        "--explain",
        metavar="RULE",
        help="print a rule's rationale and fix guidance, then exit",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        dest="list_rules",
        help="list the registered rules, then exit",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="emit findings as a JSON array instead of text",
    )
    return parser


def _emit(findings: List[Finding], as_json: bool) -> None:
    if as_json:
        payload = [
            {
                "rule": f.rule,
                "path": f.path,
                "line": f.line,
                "message": f.message,
            }
            for f in findings
        ]
        print(json.dumps(payload, indent=2))
    else:
        for finding in findings:
            print(finding.format())


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    try:
        if args.list_rules:
            for rule_cls in all_rules():
                print(f"{rule_cls.id}  {rule_cls.title}")
            return 0
        if args.explain:
            rule_cls = get_rule(args.explain)
            print(f"{rule_cls.id} — {rule_cls.title}")
            print()
            print(rule_cls.explain())
            return 0

        roots = args.roots or [_default_root()]
        findings: List[Finding] = []
        for root in roots:
            findings.extend(analyze_path(root, args.rule))
    except AnalysisError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    _emit(findings, args.as_json)
    if findings:
        if not args.as_json:
            print(
                f"\n{len(findings)} finding(s); "
                f"run with --explain RULE for rationale and fixes",
                file=sys.stderr,
            )
        return 1
    if not args.as_json:
        checked = ", ".join(str(r) for r in roots)
        print(f"repro.analysis: clean ({checked})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
