"""The rule framework: findings, the rule registry, and the runner.

A rule is a class with an ``id`` (``RA001`` ...), a one-line ``title``,
a docstring that *is* its ``--explain`` text (what the rule protects,
why the invariant matters, how to fix a finding), and a
:meth:`Rule.check` that inspects a :class:`~repro.analysis.project.Project`
and returns :class:`Finding`\\ s.  Rules register themselves with
:func:`register_rule`; :func:`run_rules` drives them over one scanned
tree.

Adding a rule:

1. create ``rules/raNNN_short_name.py`` defining a ``Rule`` subclass
   decorated with ``@register_rule``;
2. import it from ``rules/__init__.py`` (import order is report order);
3. add a seeded-violation fixture under ``tests/analysis/fixtures/`` and
   a test asserting the rule fires on the fixture and stays quiet on the
   real tree.
"""

from __future__ import annotations

import inspect
from abc import ABC, abstractmethod
from dataclasses import dataclass
from pathlib import Path
from typing import ClassVar, Dict, List, Optional, Sequence, Type

from repro.analysis.project import Project


class AnalysisError(Exception):
    """Raised on misuse of the analysis engine (unknown rule, bad root)."""


@dataclass(frozen=True)
class Finding:
    """One invariant violation at one source location."""

    rule: str
    path: str
    line: int
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} {self.message}"


class Rule(ABC):
    """One invariant, encoded.  Subclasses are stateless."""

    id: ClassVar[str]
    title: ClassVar[str]

    @abstractmethod
    def check(self, project: Project) -> List[Finding]:
        """Scan one project tree; return every violation found."""

    @classmethod
    def explain(cls) -> str:
        """The rule's rationale and fix guidance (its docstring)."""
        doc = cls.__doc__ or cls.title
        return inspect.cleandoc(doc)


#: Registered rules by id, in registration (== report) order.
_RULES: Dict[str, Type[Rule]] = {}


def register_rule(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the registry.

    Double registration raises — two rules fighting over an id is always
    a bug, mirroring the dispatch registry's contract.
    """
    rule_id = rule_cls.id
    if rule_id in _RULES:
        raise AnalysisError(
            f"rule {rule_id} already registered ({_RULES[rule_id]!r})"
        )
    _RULES[rule_id] = rule_cls
    return rule_cls


def all_rules() -> List[Type[Rule]]:
    """Every registered rule, in registration order."""
    _ensure_loaded()
    return list(_RULES.values())


def get_rule(rule_id: str) -> Type[Rule]:
    """One rule by id (case-insensitive); raises on unknown ids."""
    _ensure_loaded()
    rule = _RULES.get(rule_id.upper())
    if rule is None:
        known = ", ".join(sorted(_RULES))
        raise AnalysisError(f"unknown rule {rule_id!r} (known: {known})")
    return rule


def _ensure_loaded() -> None:
    # Rules self-register on import; importing the package is idempotent.
    import repro.analysis.rules  # noqa: F401


def run_rules(
    project: Project, rule_ids: Optional[Sequence[str]] = None
) -> List[Finding]:
    """Run the selected rules (default: all) over one scanned tree."""
    if rule_ids is None:
        selected = all_rules()
    else:
        selected = [get_rule(rule_id) for rule_id in rule_ids]
    findings: List[Finding] = []
    for rule_cls in selected:
        findings.extend(rule_cls().check(project))
    return findings


def analyze_path(
    root: Path, rule_ids: Optional[Sequence[str]] = None
) -> List[Finding]:
    """Load ``root`` and run the selected rules over it."""
    if not root.exists():
        raise AnalysisError(f"no such file or directory: {root}")
    return run_rules(Project.load(root), rule_ids)
