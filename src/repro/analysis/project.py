"""Source-tree model for the invariant lint rules.

The rules in :mod:`repro.analysis.rules` reason about *this repository's*
invariants — which functions a patch path may reach, which attribute
writes need a lock, where numpy may be imported — so they need more than
per-file pattern matching: a parsed view of the whole tree plus an
(approximate) call graph.  This module provides both:

* :class:`Project` — every ``*.py`` file under a root directory, parsed
  once, with dotted module names derived from the package layout.
* :class:`FunctionInfo` — one function or method (nested functions
  included), addressable by qualname ``module:Class.method``.
* :meth:`Project.reachable` — a name-resolution call-graph closure.

The call graph is deliberately *approximate*: Python has no static
types here, so an attribute call ``x.foo()`` is resolved to **every**
method named ``foo`` defined anywhere in the scanned tree.  That
over-approximation is the right default for a purity rule (RA001):
claiming a patch path is uncharged requires following every call it
*might* make.  Ubiquitous container-protocol names (``get``, ``items``,
``append``, ...) are exempted via :data:`GENERIC_METHOD_NAMES` — they
would otherwise connect everything to everything; rules that care about
a generic-named charged entry point (e.g. ``BPlusTree.items``) guard it
by *forbidding the call site name* instead (see RA001's forbidden set).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

#: Container/protocol method names too common to resolve by name alone —
#: following them would connect the call graph through every dict/list
#: in the tree.  Rules needing one of these guarded treat the *call site
#: name* as forbidden instead of relying on graph closure.
GENERIC_METHOD_NAMES = frozenset(
    {
        "get",
        "add",
        "append",
        "extend",
        "remove",
        "pop",
        "clear",
        "items",
        "keys",
        "values",
        "update",
        "copy",
        "sort",
        "reverse",
        "index",
        "count",
        "join",
        "split",
        "strip",
        "format",
        "close",
        "setdefault",
        "popitem",
        "encode",
        "decode",
    }
)


@dataclass(frozen=True)
class CallSite:
    """One call expression inside a function body.

    ``kind`` is ``"name"`` for a bare call (``helper(...)``), ``"self"``
    for ``self.method(...)``, and ``"attr"`` for any other attribute
    call (``road.directory(...)``).
    """

    kind: str
    name: str
    line: int


@dataclass
class FunctionInfo:
    """One function, method, or nested function in the scanned tree."""

    qualname: str
    module: str
    name: str
    class_name: Optional[str]
    node: "ast.FunctionDef | ast.AsyncFunctionDef"
    #: Enclosing function's qualname, for nested defs.
    parent: Optional[str] = None
    calls: List[CallSite] = field(default_factory=list)

    @property
    def line(self) -> int:
        return self.node.lineno


@dataclass
class ModuleInfo:
    """One parsed source file."""

    name: str
    path: Path
    tree: ast.Module


class _FunctionCollector(ast.NodeVisitor):
    """Collect every function/method (and its call sites) in one module."""

    def __init__(self, module: str) -> None:
        self.module = module
        self.functions: List[FunctionInfo] = []
        self._class_stack: List[str] = []
        self._func_stack: List[FunctionInfo] = []

    # -- structure ------------------------------------------------------
    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._class_stack.append(node.name)
        self.generic_visit(node)
        self._class_stack.pop()

    def _visit_function(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        class_name = self._class_stack[-1] if self._class_stack else None
        if self._func_stack:
            parent = self._func_stack[-1]
            qualname = f"{parent.qualname}.{node.name}"
            parent_qual: Optional[str] = parent.qualname
            # A nested def belongs to its enclosing function, not to the
            # class the outer method happens to live in.
            class_name = None
        else:
            parent_qual = None
            prefix = f"{class_name}." if class_name else ""
            qualname = f"{self.module}:{prefix}{node.name}"
        info = FunctionInfo(
            qualname=qualname,
            module=self.module,
            name=node.name,
            class_name=class_name,
            node=node,
            parent=parent_qual,
        )
        self.functions.append(info)
        self._func_stack.append(info)
        self.generic_visit(node)
        self._func_stack.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    # -- call sites -----------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        if self._func_stack:
            site = _call_site(node)
            if site is not None:
                self._func_stack[-1].calls.append(site)
        self.generic_visit(node)


def _call_site(node: ast.Call) -> Optional[CallSite]:
    func = node.func
    if isinstance(func, ast.Name):
        return CallSite("name", func.id, node.lineno)
    if isinstance(func, ast.Attribute):
        kind = (
            "self"
            if isinstance(func.value, ast.Name) and func.value.id == "self"
            else "attr"
        )
        return CallSite(kind, func.attr, node.lineno)
    return None


class Project:
    """Every parsed module under one root, plus function/call indexes."""

    def __init__(self, root: Path, modules: Dict[str, ModuleInfo]) -> None:
        self.root = root
        self.modules = modules
        self.functions: Dict[str, FunctionInfo] = {}
        #: method name -> every method of that name, any class, any module.
        self.methods_by_name: Dict[str, List[FunctionInfo]] = {}
        #: (module, class, name) -> the method.
        self.class_methods: Dict[Tuple[str, str, str], FunctionInfo] = {}
        #: (module, name) -> module-level function.
        self.module_functions: Dict[Tuple[str, str], FunctionInfo] = {}
        #: name -> module-level functions of that name, any module.
        self.functions_by_name: Dict[str, List[FunctionInfo]] = {}
        #: (parent qualname, name) -> nested function.
        self.nested: Dict[Tuple[str, str], FunctionInfo] = {}
        for module in modules.values():
            collector = _FunctionCollector(module.name)
            collector.visit(module.tree)
            for fn in collector.functions:
                self.functions[fn.qualname] = fn
                if fn.parent is not None:
                    self.nested[(fn.parent, fn.name)] = fn
                elif fn.class_name is not None:
                    self.methods_by_name.setdefault(fn.name, []).append(fn)
                    self.class_methods[
                        (fn.module, fn.class_name, fn.name)
                    ] = fn
                else:
                    self.module_functions[(fn.module, fn.name)] = fn
                    self.functions_by_name.setdefault(fn.name, []).append(fn)

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------
    @classmethod
    def load(cls, root: Path) -> "Project":
        """Parse every ``*.py`` under ``root``.

        When ``root`` is a package directory (holds ``__init__.py``) the
        package name seeds the dotted module names, so scanning
        ``src/repro`` yields modules named ``repro.core.frozen`` etc.;
        a loose directory of files (rule fixtures) yields bare names.
        """
        root = root.resolve()
        if root.is_file():
            modules = {root.stem: cls._parse(root.stem, root)}
            return cls(root.parent, modules)
        prefix = root.name if (root / "__init__.py").exists() else ""
        modules: Dict[str, ModuleInfo] = {}
        for path in sorted(root.rglob("*.py")):
            if any(part.startswith(".") for part in path.parts):
                continue
            rel = path.relative_to(root)
            parts = list(rel.parts[:-1])
            stem = rel.stem
            if stem != "__init__":
                parts.append(stem)
            name = ".".join(([prefix] if prefix else []) + parts)
            if not name:
                name = root.name
            modules[name] = cls._parse(name, path)
        return cls(root, modules)

    @staticmethod
    def _parse(name: str, path: Path) -> ModuleInfo:
        source = path.read_text(encoding="utf-8")
        return ModuleInfo(name, path, ast.parse(source, filename=str(path)))

    # ------------------------------------------------------------------
    # Lookup helpers
    # ------------------------------------------------------------------
    def iter_modules(self) -> Iterator[ModuleInfo]:
        return iter(self.modules.values())

    def relative_path(self, module: ModuleInfo) -> str:
        """Module path relative to the scan root (for findings)."""
        try:
            return str(module.path.relative_to(self.root))
        except ValueError:  # pragma: no cover - absolute fallback
            return str(module.path)

    def module_of(self, fn: FunctionInfo) -> ModuleInfo:
        return self.modules[fn.module]

    def find_methods(
        self, class_name: str, method_names: Iterable[str]
    ) -> List[FunctionInfo]:
        """Methods of every class named ``class_name``, filtered by name."""
        wanted = set(method_names)
        return [
            fn
            for fns in self.methods_by_name.values()
            for fn in fns
            if fn.class_name == class_name and fn.name in wanted
        ]

    # ------------------------------------------------------------------
    # Approximate call-graph closure
    # ------------------------------------------------------------------
    def resolve_call(
        self,
        fn: FunctionInfo,
        site: CallSite,
        skip_names: Iterable[str] = (),
    ) -> List[FunctionInfo]:
        """Every project function a call site might invoke (by name)."""
        if site.kind == "name":
            # Nested defs of this function (and its ancestors) win, then
            # module-level functions of the same module, then any
            # module-level function of that name anywhere in the tree
            # (the common `from x import helper` pattern).
            scope: Optional[FunctionInfo] = fn
            while scope is not None:
                nested = self.nested.get((scope.qualname, site.name))
                if nested is not None:
                    return [nested]
                scope = (
                    self.functions.get(scope.parent)
                    if scope.parent
                    else None
                )
            local = self.module_functions.get((fn.module, site.name))
            if local is not None:
                return [local]
            return list(self.functions_by_name.get(site.name, ()))
        if site.kind == "self" and fn.class_name is not None:
            own = self.class_methods.get(
                (fn.module, fn.class_name, site.name)
            )
            if own is not None:
                return [own]
        # self-call into an inherited method, or a plain attribute call:
        # resolve by method name across the tree, except the generic
        # container-protocol names (see module docstring) and any
        # rule-supplied ambiguous names.
        if site.name in GENERIC_METHOD_NAMES or site.name in skip_names:
            return []
        return list(self.methods_by_name.get(site.name, ()))

    def reachable(
        self,
        roots: Iterable[FunctionInfo],
        skip_names: Iterable[str] = (),
    ) -> Dict[str, Optional[str]]:
        """Call-graph closure from ``roots``.

        Returns ``{qualname: caller qualname}`` (roots map to ``None``),
        so a rule can render the reaching path of a finding.
        ``skip_names`` lists attribute-call names a rule knows to be
        ambiguous (several same-named methods where the resolvable ones
        are benign) — those edges are not followed.
        """
        skip = frozenset(skip_names)
        came_from: Dict[str, Optional[str]] = {}
        queue: List[FunctionInfo] = []
        for root in roots:
            if root.qualname not in came_from:
                came_from[root.qualname] = None
                queue.append(root)
        while queue:
            fn = queue.pop()
            for site in fn.calls:
                for callee in self.resolve_call(fn, site, skip):
                    if callee.qualname not in came_from:
                        came_from[callee.qualname] = fn.qualname
                        queue.append(callee)
        return came_from

    def trace(
        self, came_from: Dict[str, Optional[str]], qualname: str
    ) -> List[str]:
        """The root → ... → ``qualname`` chain recorded by :meth:`reachable`."""
        chain = [qualname]
        seen = {qualname}
        current: Optional[str] = came_from.get(qualname)
        while current is not None and current not in seen:
            chain.append(current)
            seen.add(current)
            current = came_from.get(current)
        return list(reversed(chain))
