"""The repo-specific invariant rules.

Import order is report order.  Each module defines one ``Rule`` subclass
decorated with ``@register_rule``; see :mod:`repro.analysis.engine` for
the steps to add a new one.
"""

from repro.analysis.rules import (  # noqa: F401  (imports self-register)
    ra001_patch_purity,
    ra002_lock_discipline,
    ra003_dispatch,
    ra004_view_lifecycle,
    ra005_optional_imports,
    ra006_shm_lifecycle,
    ra007_cache_invalidation,
)

__all__ = [
    "ra001_patch_purity",
    "ra002_lock_discipline",
    "ra003_dispatch",
    "ra004_view_lifecycle",
    "ra005_optional_imports",
    "ra006_shm_lifecycle",
    "ra007_cache_invalidation",
]
