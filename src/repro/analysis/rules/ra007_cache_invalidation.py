"""RA007 — maintenance paths must reach the result-cache invalidators."""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.analysis.engine import Finding, Rule, register_rule
from repro.analysis.project import FunctionInfo, Project

#: The only methods that evict cached answers.  Everything a
#: maintenance path may do to the network or a directory must funnel
#: into one of these (directly or through a helper like
#: ``RoadService._invalidate_cache``) before the change is visible to
#: queries.
SINKS = frozenset({"invalidate_report", "invalidate_directory", "clear_all"})

#: The class owning the sinks.
CACHE_CLASS = "ResultCache"

#: Entry points that dirty what cached answers were computed from: the
#: six maintenance operations, plus the two snapshot-replacement paths
#: (a swapped snapshot invalidates every answer's provenance even though
#: no report describes the delta).
ENTRY_POINTS = frozenset(
    {
        "insert_object",
        "delete_object",
        "update_object_attrs",
        "update_edge_distance",
        "add_edge",
        "remove_edge",
        "replace_snapshot",
        "_rebuild_replicas",
    }
)


@register_rule
class CacheInvalidationRule(Rule):
    """Every maintenance entry point on a caching class reaches the cache.

    Why: the result cache (:mod:`repro.serving.result_cache`) serves
    answers *without executing them* — its one safety property is that
    every mutation of the network or an object directory evicts (or
    generation-refuses) the entries it could have changed.  A
    maintenance entry point that patches replicas but never reaches an
    invalidator silently serves pre-patch answers forever; no test that
    happens to skip that op will notice.  The churn-soak equivalence
    suite proves the *current* wiring correct; this rule keeps the next
    maintenance op honest at review time.

    How it checks: in any scanned tree that defines ``ResultCache`` with
    its invalidation sinks (``invalidate_report`` /
    ``invalidate_directory`` / ``clear_all``), every class that holds a
    cache — it constructs ``ResultCache(...)`` or calls a sink directly
    somewhere — must have each of its maintenance/snapshot entry points
    (:data:`ENTRY_POINTS`, when defined) reach a sink in the
    approximate call-graph closure.  Classes that never touch a cache
    (engines, pools) are exempt: they have nothing to invalidate.

    How to fix a finding: route the entry point through the class's
    invalidation helper (``self._invalidate_cache(report)`` /
    ``apply_report``), or call ``invalidate_directory`` / ``clear_all``
    when the change has no per-identity report (refreezes, snapshot
    swaps, membership changes).
    """

    id = "RA007"
    title = "maintenance entry points reach the result-cache invalidators"

    def check(self, project: Project) -> List[Finding]:
        sink_quals = {
            fn.qualname
            for fn in project.functions.values()
            if fn.class_name == CACHE_CLASS and fn.name in SINKS
        }
        if not sink_quals:
            return []  # this tree has no result cache to invalidate
        findings: List[Finding] = []
        for (module, class_name), methods in self._classes(project).items():
            if class_name == CACHE_CLASS or not self._holds_cache(methods):
                continue
            for fn in methods:
                if fn.name not in ENTRY_POINTS:
                    continue
                reached = project.reachable([fn])
                if sink_quals.isdisjoint(reached):
                    findings.append(
                        Finding(
                            self.id,
                            project.relative_path(project.module_of(fn)),
                            fn.line,
                            f"{class_name}.{fn.name} mutates what cached "
                            f"answers were computed from but never reaches "
                            f"{CACHE_CLASS}."
                            f"{'/'.join(sorted(SINKS))} — the cache keeps "
                            f"serving pre-patch answers after this "
                            f"operation",
                        )
                    )
        findings.sort(key=lambda f: (f.path, f.line))
        return findings

    @staticmethod
    def _classes(
        project: Project,
    ) -> Dict[Tuple[str, str], List[FunctionInfo]]:
        classes: Dict[Tuple[str, str], List[FunctionInfo]] = {}
        for fn in project.functions.values():
            if fn.class_name is not None:
                classes.setdefault((fn.module, fn.class_name), []).append(fn)
        return classes

    @staticmethod
    def _holds_cache(methods: List[FunctionInfo]) -> bool:
        """A class holds a cache when it constructs one or calls a sink
        directly — indirect holders go through those same helpers."""
        for fn in methods:
            for site in fn.calls:
                if site.name == CACHE_CLASS or site.name in SINKS:
                    return True
        return False
