"""RA001 — uncharged-patch-purity."""

from __future__ import annotations

from typing import List

from repro.analysis.engine import Finding, Rule, register_rule
from repro.analysis.project import Project

#: Patch-path roots: everything these can reach must stay uncharged.
ROOT_CLASS = "FrozenRoad"
ROOT_METHODS = ("apply", "apply_object_delta", "_plan_tree_patch")

#: Method names that are (or lead straight into) charging entry points:
#: B+-tree descents (`search`/`get`-family mutators included), pager
#: buffer traffic, and the charged overlay/directory accessors.  Patch
#: code must use the `peek` / `stored_tree` / `peek_entries` family
#: instead.  Names here are *call-site* names: the approximate call
#: graph cannot type receivers, so a reachable body calling `.insert(...)`
#: on anything is a violation — patch paths have no business calling
#: any `insert` at all.
FORBIDDEN_METHODS = frozenset(
    {
        # BPlusTree charged surface
        "search",
        "insert",
        "delete",
        "range_scan",
        "min_key",
        # PageManager charged surface
        "read",
        "write",
        "allocate",
        # charged RouteOverlay accessors
        "shortcut_tree",
        "neighbours",
        "refresh_node",
        "refresh_nodes",
        # charged AssociationDirectory accessors (incl. the charged bulk
        # export: the recompile fallback must use peek_entries instead)
        "node_objects",
        "rnet_abstract",
        "rnet_may_contain",
        "export_entries",
    }
)

#: Attribute-call names the closure must not follow: each has several
#: same-named definitions where the one the patch path actually hits is
#: pure.  ``may_contain`` is ``RnetAbstract.may_contain`` (a predicate
#: test on a deep-copied snapshot) in ``_refresh_abstracts``, but the
#: name also belongs to the charged ``AbstractCache.may_contain``.  The
#: charged twin stays guarded: its own entry points
#: (``rnet_may_contain``) are in the forbidden set above.
AMBIGUOUS_PURE_NAMES = frozenset({"may_contain"})


@register_rule
class PatchPurityRule(Rule):
    """Patch paths must stay uncharged: ``peek``-family access only.

    Why: ``FrozenRoad.apply`` / ``apply_object_delta`` and the patch
    planner run during live maintenance, between query batches.  The
    charged B+-tree / pager entry points (``search``, ``insert``,
    ``read``, ``shortcut_tree``, ``node_objects``, ``export_entries``,
    ...) exist to *simulate the paper's disk stack*: they count I/O and
    disturb the LRU buffer.  If snapshot bookkeeping ever calls one, the
    reproduction's I/O figures silently include maintenance overhead and
    the buffer no longer reflects query traffic — the exact drift PR 2
    removed by introducing ``PageManager.peek`` / ``BPlusTree.peek`` /
    ``RouteOverlay.stored_tree`` / ``AssociationDirectory.peek_*``.

    How it checks: an approximate call-graph closure from the patch
    roots (``FrozenRoad.apply``, ``apply_object_delta``,
    ``_plan_tree_patch``); any reachable function that calls a method
    named in the forbidden set is reported, with the reaching chain.

    How to fix a finding: route the access through the uncharged family
    (``peek``, ``peek_node_objects``, ``peek_rnet_abstract``,
    ``peek_entries``, ``stored_tree``, ``iter_trees``) — or, if the call
    is genuinely benign (an unrelated method that happens to share a
    forbidden name), rename the method; sharing a name with a charging
    entry point is itself a maintenance hazard.
    """

    id = "RA001"
    title = "patch paths must not call charging B+-tree/pager entry points"

    def check(self, project: Project) -> List[Finding]:
        roots = project.find_methods(ROOT_CLASS, ROOT_METHODS)
        if not roots:
            return []
        came_from = project.reachable(roots, skip_names=AMBIGUOUS_PURE_NAMES)
        findings: List[Finding] = []
        for qualname in came_from:
            fn = project.functions.get(qualname)
            if fn is None:
                continue
            for site in fn.calls:
                if site.kind == "name" or site.name not in FORBIDDEN_METHODS:
                    continue
                chain = " -> ".join(project.trace(came_from, qualname))
                findings.append(
                    Finding(
                        rule=self.id,
                        path=project.relative_path(project.module_of(fn)),
                        line=site.line,
                        message=(
                            f"charged call '.{site.name}(...)' on the "
                            f"uncharged patch path (reached via {chain}); "
                            f"use the peek/stored_tree family instead"
                        ),
                    )
                )
        findings.sort(key=lambda f: (f.path, f.line))
        return findings
