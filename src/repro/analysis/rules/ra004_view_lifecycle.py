"""RA004 — zero-copy view lifecycle around buffer-resizing patches."""

from __future__ import annotations

import ast
from typing import List

from repro.analysis.engine import Finding, Rule, register_rule
from repro.analysis.project import Project

#: FrozenRoad internals that resize / splice the backing ``array``
#: buffers.  Any method invoking one must drop cached views first.
RESIZING_CALLS = frozenset({"_recompile", "_rebuild_node_objects"})

#: The call that releases cached memoryview / frombuffer exports.
DROP_CALL = "_drop_views"

#: ``__init__`` builds the arrays before any view can exist.
EXEMPT_METHODS = frozenset({"__init__"})

#: The only functions allowed to *create* zero-copy views: the backend
#: primitives, FrozenRoad's cached view builders (which register their
#: product for `_drop_views` to release), and the snapshot-file mapper
#: (whose product `_SnapshotFile.close` releases).
VIEW_FACTORIES = frozenset(
    {"view", "frombuffer", "_numpy_views", "_object_numpy_views",
     "_map_snapshot"}
)


@register_rule
class ViewLifecycleRule(Rule):
    """Cached zero-copy views never outlive a buffer resize.

    Why: the compact and numpy backends serve queries through
    ``memoryview`` / ``np.frombuffer`` views over ``array('i'/'d')``
    buffers.  Those are *exports* at the C level: while one is alive,
    resizing the backing array raises ``BufferError`` — and a stale view
    that survived a resize by luck reads the pre-patch snapshot.  PR 3's
    contract is therefore: ``_drop_views()`` before any patch step that
    can splice or recompile the arrays, and views are only (re)built by
    the registered factory methods that ``_drop_views`` knows about.

    How it checks:

    * in every class named ``FrozenRoad``, a method that calls
      ``_recompile`` or ``_rebuild_node_objects`` (the buffer-resizing
      steps) must call ``_drop_views`` at a lexically earlier line of
      the same method (``__init__`` is exempt — no views exist yet);
    * ``memoryview(...)`` / ``.frombuffer(...)`` may only appear inside
      the view-factory functions (backend ``view`` / ``frombuffer``,
      ``_numpy_views``, ``_object_numpy_views``) — ad-hoc views created
      elsewhere are invisible to ``_drop_views``.

    How to fix a finding: call ``self._drop_views()`` before the first
    resizing step, or move the view construction into one of the
    registered factories so the drop machinery tracks it.
    """

    id = "RA004"
    title = "drop cached buffer views before any resizing patch step"

    def check(self, project: Project) -> List[Finding]:
        findings = self._check_drop_ordering(project)
        findings.extend(self._check_view_factories(project))
        findings.sort(key=lambda f: (f.path, f.line))
        return findings

    def _check_drop_ordering(self, project: Project) -> List[Finding]:
        findings: List[Finding] = []
        for fn in project.functions.values():
            if (
                fn.class_name != "FrozenRoad"
                or fn.name in EXEMPT_METHODS
                or fn.name in RESIZING_CALLS
            ):
                continue
            resize_sites = [
                site
                for site in fn.calls
                if site.kind == "self" and site.name in RESIZING_CALLS
            ]
            if not resize_sites:
                continue
            first = min(site.line for site in resize_sites)
            drops = [
                site.line
                for site in fn.calls
                if site.kind == "self" and site.name == DROP_CALL
            ]
            if not drops or min(drops) > first:
                which = sorted({s.name for s in resize_sites})
                findings.append(
                    Finding(
                        self.id,
                        project.relative_path(project.module_of(fn)),
                        first,
                        f"{fn.name} calls {'/'.join(which)} without a "
                        f"preceding self.{DROP_CALL}() — live memoryview/"
                        f"frombuffer exports make the resize raise "
                        f"BufferError (or worse, read stale data)",
                    )
                )
        return findings

    def _check_view_factories(self, project: Project) -> List[Finding]:
        findings: List[Finding] = []
        for fn in project.functions.values():
            if fn.name in VIEW_FACTORIES:
                continue
            for site in fn.calls:
                is_view = (
                    site.kind == "name" and site.name == "memoryview"
                ) or (site.kind != "name" and site.name == "frombuffer")
                if is_view:
                    findings.append(
                        Finding(
                            self.id,
                            project.relative_path(project.module_of(fn)),
                            site.line,
                            f"zero-copy view created in {fn.name}, outside "
                            f"the registered view factories "
                            f"({', '.join(sorted(VIEW_FACTORIES))}); "
                            f"_drop_views cannot release it before a patch",
                        )
                    )
        return findings
