"""RA005 — optional heavy deps import lazily, through ``repro._optional``."""

from __future__ import annotations

import ast
from typing import List

from repro.analysis.engine import Finding, Rule, register_rule
from repro.analysis.project import ModuleInfo, Project

#: Optional dependencies gated behind extras.
OPTIONAL_PACKAGES = frozenset({"numpy"})

#: Module basenames allowed to import the optional packages directly:
#: the gate itself, and the ``[numpy]``-extra backend that the gate
#: routes to (its import error is converted into install guidance).
ALLOWED_MODULES = frozenset({"_optional", "frozen_backends"})


def _is_type_checking(test: ast.expr) -> bool:
    if isinstance(test, ast.Name):
        return test.id == "TYPE_CHECKING"
    if isinstance(test, ast.Attribute):
        return test.attr == "TYPE_CHECKING"
    return False


def _root_package(name: str) -> str:
    return name.split(".", 1)[0]


class _ImportWalker(ast.NodeVisitor):
    """Find optional-package imports outside ``if TYPE_CHECKING:`` blocks."""

    def __init__(self) -> None:
        self.hits: List[ast.stmt] = []
        self._guard_depth = 0

    def visit_If(self, node: ast.If) -> None:
        if _is_type_checking(node.test):
            self._guard_depth += 1
            for stmt in node.body:
                self.visit(stmt)
            self._guard_depth -= 1
            for stmt in node.orelse:
                self.visit(stmt)
        else:
            self.generic_visit(node)

    def visit_Import(self, node: ast.Import) -> None:
        if self._guard_depth == 0 and any(
            _root_package(alias.name) in OPTIONAL_PACKAGES
            for alias in node.names
        ):
            self.hits.append(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if (
            self._guard_depth == 0
            and node.module is not None
            and _root_package(node.module) in OPTIONAL_PACKAGES
        ):
            self.hits.append(node)


@register_rule
class LazyOptionalImportsRule(Rule):
    """numpy (and future optional deps) import only through the gate.

    Why: the package promises a working pure-stdlib install — numpy is
    the ``[numpy]`` extra, accelerating the frozen backend but never
    required.  A stray top-level ``import numpy`` in any module that the
    core paths (or the CLI) transitively import breaks every
    numpy-less environment at import time, which is exactly what the
    ``tests-no-numpy`` CI leg exists to prevent.  ``repro._optional``
    centralises the gate so a missing dep surfaces as one actionable
    error message instead of an ImportError five frames deep.

    How it checks: flags any ``import numpy`` / ``from numpy import``
    outside the allowed modules (``_optional.py`` — the gate — and
    ``frozen_backends.py`` — the ``[numpy]``-extra backend, which
    converts the failure into install guidance).  Imports inside ``if
    TYPE_CHECKING:`` blocks are fine: they cost nothing at runtime and
    keep annotations precise.

    How to fix a finding: replace the import with ``np =
    require_numpy("<feature name>")`` from ``repro._optional`` at the
    point of use, or move it under ``if TYPE_CHECKING:`` if it is only
    needed for annotations (then quote the annotations).
    """

    id = "RA005"
    title = "optional deps (numpy) import only via repro._optional"

    def check(self, project: Project) -> List[Finding]:
        findings: List[Finding] = []
        for module in project.iter_modules():
            if module.path.stem in ALLOWED_MODULES:
                continue
            findings.extend(self._check_module(project, module))
        findings.sort(key=lambda f: (f.path, f.line))
        return findings

    def _check_module(
        self, project: Project, module: ModuleInfo
    ) -> List[Finding]:
        walker = _ImportWalker()
        walker.visit(module.tree)
        return [
            Finding(
                self.id,
                project.relative_path(module),
                node.lineno,
                "direct numpy import outside repro._optional / the "
                "[numpy]-extra backend; use require_numpy(...) or an "
                "'if TYPE_CHECKING:' guard",
            )
            for node in walker.hits
        ]
