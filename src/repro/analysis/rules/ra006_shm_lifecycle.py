"""RA006 — shared-memory segment lifecycle around the ``"shm"`` backend."""

from __future__ import annotations

import ast
from typing import List, Tuple

from repro.analysis.engine import Finding, Rule, register_rule
from repro.analysis.project import FunctionInfo, Project

#: The only modules allowed to construct ``SharedMemory`` segments: the
#: shm storage layer.  Everything else (backends, snapshots, the process
#: pool) goes through :class:`ShmVector`, whose close/unlink discipline
#: this rule checks below.
GATE_MODULES = frozenset({"shm_arrays"})

#: The raw segment constructor.
CONSTRUCTOR = "SharedMemory"


def _basename(module: str) -> str:
    return module.rsplit(".", 1)[-1]


def _creates_segments(node: ast.ClassDef) -> List[int]:
    """Lines inside ``node`` that call the raw segment constructor."""
    return [
        child.lineno
        for child in ast.walk(node)
        if isinstance(child, ast.Call)
        and (
            (isinstance(child.func, ast.Name) and child.func.id == CONSTRUCTOR)
            or (
                isinstance(child.func, ast.Attribute)
                and child.func.attr == CONSTRUCTOR
            )
        )
    ]


def _unlink_sites(node: ast.AST) -> List[Tuple[int, bool]]:
    """``(line, guarded)`` for every ``.unlink(...)`` call under ``node``.

    ``guarded`` is whether an ``if`` statement encloses the call — the
    lexical shape of the owner check (``if self._owner: ... unlink()``).
    """
    sites: List[Tuple[int, bool]] = []

    def walk(parent: ast.AST, guarded: bool) -> None:
        for child in ast.iter_child_nodes(parent):
            if (
                isinstance(child, ast.Call)
                and isinstance(child.func, ast.Attribute)
                and child.func.attr == "unlink"
            ):
                sites.append((child.lineno, guarded))
            walk(child, guarded or isinstance(child, ast.If))

    walk(node, False)
    return sites


@register_rule
class ShmLifecycleRule(Rule):
    """Shm segments: ``close()`` on every path, ``unlink()`` exactly once.

    Why: a POSIX shared-memory segment is an OS object with two distinct
    teardown halves.  ``close()`` drops *this process's* mapping and must
    run in every process that attached (a missed close leaks the mapping
    until process exit, and the resource tracker complains at shutdown).
    ``unlink()`` destroys the *name* for everyone and must run exactly
    once, by the owning process — an attacher that unlinks yanks the
    segment out from under the owner and every sibling worker, while an
    owner that never unlinks leaks ``/dev/shm`` space past process death.
    The serving design therefore funnels all raw ``SharedMemory`` use
    through the :mod:`repro.core.shm_arrays` storage layer, whose
    ``ShmVector.close`` is the single close/unlink path.

    How it checks:

    * ``SharedMemory(...)`` may only be called inside the gate modules
      (:data:`GATE_MODULES`) — ad-hoc segments elsewhere are invisible to
      the vector lifecycle and the pool's reload protocol;
    * in a gate module, every class that constructs a segment must define
      a ``close`` method that calls ``.close()`` on something (releasing
      the mapping), and must contain exactly one ``.unlink(...)`` site,
      lexically guarded by an ``if`` (the owner check) — zero unlinks
      leak the segment, a second unlink (or an unguarded one) lets a
      non-owner destroy it.

    How to fix a finding: route segment creation through
    ``repro.core.shm_arrays``, or give the owning class a ``close`` that
    closes its mapping and unlinks once behind the owner flag.
    """

    id = "RA006"
    title = "shm segments close everywhere, unlink exactly once (owner)"

    def check(self, project: Project) -> List[Finding]:
        findings = self._check_constructor_gate(project)
        findings.extend(self._check_owner_classes(project))
        findings.sort(key=lambda f: (f.path, f.line))
        return findings

    def _check_constructor_gate(self, project: Project) -> List[Finding]:
        findings: List[Finding] = []
        for fn in project.functions.values():
            if _basename(fn.module) in GATE_MODULES:
                continue
            for site in fn.calls:
                if site.name == CONSTRUCTOR:
                    findings.append(
                        self._finding(project, fn, site.line)
                    )
        return findings

    def _finding(
        self, project: Project, fn: FunctionInfo, line: int
    ) -> Finding:
        return Finding(
            self.id,
            project.relative_path(project.module_of(fn)),
            line,
            f"raw {CONSTRUCTOR} segment created in {fn.name}, outside the "
            f"shm storage layer ({', '.join(sorted(GATE_MODULES))}) — "
            f"its close/unlink lifecycle is invisible to ShmVector and "
            f"the process pool's reload protocol",
        )

    def _check_owner_classes(self, project: Project) -> List[Finding]:
        findings: List[Finding] = []
        for module in project.iter_modules():
            if _basename(module.name) not in GATE_MODULES:
                continue
            path = project.relative_path(module)
            for node in module.tree.body:
                if isinstance(node, ast.ClassDef):
                    findings.extend(
                        self._check_class(path, node)
                    )
        return findings

    def _check_class(
        self, path: str, node: ast.ClassDef
    ) -> List[Finding]:
        if not _creates_segments(node):
            return []
        findings: List[Finding] = []
        close = next(
            (
                child
                for child in node.body
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
                and child.name == "close"
            ),
            None,
        )
        if close is None:
            findings.append(
                Finding(
                    self.id, path, node.lineno,
                    f"{node.name} creates shm segments but defines no "
                    f"close() — every attached process must be able to "
                    f"drop its mapping",
                )
            )
        elif not any(
            isinstance(child, ast.Call)
            and isinstance(child.func, ast.Attribute)
            and child.func.attr == "close"
            for child in ast.walk(close)
        ):
            findings.append(
                Finding(
                    self.id, path, close.lineno,
                    f"{node.name}.close never calls .close() on the "
                    f"segment — the mapping outlives the vector and leaks "
                    f"until process exit",
                )
            )
        unlinks = _unlink_sites(node)
        if len(unlinks) != 1:
            line = unlinks[1][0] if len(unlinks) > 1 else node.lineno
            findings.append(
                Finding(
                    self.id, path, line,
                    f"{node.name} unlinks its segment {len(unlinks)} times "
                    f"— the name must be destroyed exactly once, by the "
                    f"owner's close()",
                )
            )
        elif not unlinks[0][1]:
            findings.append(
                Finding(
                    self.id, path, unlinks[0][0],
                    f"{node.name} unlinks unconditionally — without an "
                    f"owner guard (if self._owner: ...) an attached "
                    f"process destroys the segment under the owner and "
                    f"every sibling worker",
                )
            )
        return findings
