"""RA002 — replica lock discipline in the serving layer."""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Tuple

from repro.analysis.engine import Finding, Rule, register_rule
from repro.analysis.project import ModuleInfo, Project

#: Methods allowed to (re)bind the replica containers themselves: before
#: the pool starts there is nothing to race with.
SETUP_METHODS = frozenset({"__init__", "_init_replicas"})

#: Replica/shard state: element writes require an enclosing lock.
REPLICA_ATTRS = frozenset({"_replicas", "_replica_locks"})

#: Admission-batching state is *event-loop-thread-confined* by design
#: (see RoadService.submit) — it is never written under a replica lock,
#: because code holding a replica lock runs on a pool worker thread.
ADMISSION_ATTRS = frozenset({"_pending", "_pending_count", "_flush_handle"})


def _self_attr(node: ast.expr) -> Optional[str]:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _flatten_targets(target: ast.expr) -> Iterator[ast.expr]:
    if isinstance(target, (ast.Tuple, ast.List)):
        for elt in target.elts:
            yield from _flatten_targets(elt)
    else:
        yield target


class _LockWalker(ast.NodeVisitor):
    """Walk one method body tracking the enclosing ``with`` contexts."""

    def __init__(self) -> None:
        self.with_stack: List[str] = []
        #: (line, attr, write kind, joined with-contexts at that point)
        self.writes: List[Tuple[int, str, str, str]] = []

    def _visit_with(self, node: ast.With | ast.AsyncWith) -> None:
        contexts = " ".join(
            ast.unparse(item.context_expr) for item in node.items
        )
        self.with_stack.append(contexts)
        for stmt in node.body:
            self.visit(stmt)
        self.with_stack.pop()

    visit_With = _visit_with
    visit_AsyncWith = _visit_with

    def _record(self, target: ast.expr, line: int) -> None:
        attr = _self_attr(target)
        if attr is not None:
            self._push(line, attr, "rebind")
            return
        if isinstance(target, ast.Subscript):
            attr = _self_attr(target.value)
            if attr is not None:
                self._push(line, attr, "element")

    def _push(self, line: int, attr: str, kind: str) -> None:
        self.writes.append((line, attr, kind, " ".join(self.with_stack)))

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            for leaf in _flatten_targets(target):
                self._record(leaf, node.lineno)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._record(node.target, node.lineno)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._record(node.target, node.lineno)
        self.generic_visit(node)

    # Nested defs run on whichever thread calls them; their writes are
    # judged in the lexical context where they appear, which is exactly
    # the enclosing-with picture this walker maintains.


@register_rule
class LockDisciplineRule(Rule):
    """Replica/shard state is touched only under its per-replica lock.

    Why: ``RoadService`` keeps one ``FrozenRoad`` replica per pool
    thread, each guarded by a ``threading.Lock`` in ``_replica_locks``.
    Query execution holds the lock on a *worker* thread; maintenance
    broadcasts and hot-rebuilds swap replicas from the *event-loop*
    thread.  A replica write outside its lock lets a rebuild swap an
    engine out from under an executing batch — with the planned
    shared-memory shards, that upgrades from "stale read" to "corrupted
    snapshot".  Conversely the admission buckets (``_pending``,
    ``_pending_count``, ``_flush_handle``) are event-loop-confined and
    deliberately lock-free; writing them while holding a replica lock
    means worker-thread code is reaching into loop-owned state.

    How it checks: in every class that defines ``_replica_locks``,

    * element writes (``self._replicas[i] = ...``) must be lexically
      inside a ``with`` whose context mentions a lock;
    * rebinding ``self._replicas`` / ``self._replica_locks`` wholesale
      is allowed only in ``__init__`` / ``_init_replicas`` (before the
      pool exists);
    * admission-bucket writes must *not* appear under a replica lock.

    How to fix a finding: wrap the write in ``with
    self._replica_locks[index]:`` (or the lock variable for that
    replica); move container rebinds into ``_init_replicas``; move
    admission mutations back onto the event loop via
    ``loop.call_soon_threadsafe``.
    """

    id = "RA002"
    title = "replica state writes must hold the matching replica lock"

    def check(self, project: Project) -> List[Finding]:
        findings: List[Finding] = []
        for module in project.iter_modules():
            for class_node in ast.walk(module.tree):
                if isinstance(class_node, ast.ClassDef) and self._guarded(
                    class_node
                ):
                    findings.extend(self._check_class(module, class_node, project))
        findings.sort(key=lambda f: (f.path, f.line))
        return findings

    @staticmethod
    def _guarded(class_node: ast.ClassDef) -> bool:
        """Does this class manage replica locks at all?"""
        return any(
            isinstance(node, (ast.Assign, ast.AnnAssign))
            and _self_attr(
                node.targets[0]
                if isinstance(node, ast.Assign)
                else node.target
            )
            == "_replica_locks"
            for node in ast.walk(class_node)
        )

    def _check_class(
        self, module: ModuleInfo, class_node: ast.ClassDef, project: Project
    ) -> List[Finding]:
        findings: List[Finding] = []
        path = project.relative_path(module)
        for method in class_node.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            walker = _LockWalker()
            for stmt in method.body:
                walker.visit(stmt)
            for line, attr, kind, contexts in walker.writes:
                locked = "lock" in contexts.lower()
                if attr in REPLICA_ATTRS:
                    if kind == "rebind" and method.name not in SETUP_METHODS:
                        findings.append(
                            Finding(
                                self.id,
                                path,
                                line,
                                f"'self.{attr}' rebound outside "
                                f"__init__/_init_replicas (in {method.name}); "
                                f"swap elements under their lock instead",
                            )
                        )
                    elif (
                        kind == "element"
                        and not locked
                        and method.name not in SETUP_METHODS
                    ):
                        findings.append(
                            Finding(
                                self.id,
                                path,
                                line,
                                f"'self.{attr}[...]' written outside a "
                                f"'with <replica lock>:' block "
                                f"(in {method.name})",
                            )
                        )
                elif attr in ADMISSION_ATTRS and "_replica_locks" in contexts:
                    findings.append(
                        Finding(
                            self.id,
                            path,
                            line,
                            f"loop-confined admission state 'self.{attr}' "
                            f"written under a replica lock (in {method.name}); "
                            f"hand it back to the event loop instead",
                        )
                    )
        return findings
