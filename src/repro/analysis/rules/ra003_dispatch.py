"""RA003 — dispatch completeness: registry over isinstance ladders."""

from __future__ import annotations

import ast
from typing import List, Optional, Tuple

from repro.analysis.engine import Finding, Rule, register_rule
from repro.analysis.project import Project


def _query_type_name(node: ast.expr) -> Optional[str]:
    """The ``*Query`` class named by an isinstance second argument."""
    if isinstance(node, ast.Name) and node.id.endswith("Query"):
        return node.id
    if isinstance(node, ast.Attribute) and node.attr.endswith("Query"):
        return node.attr
    if isinstance(node, ast.Tuple):
        for elt in node.elts:
            name = _query_type_name(elt)
            if name is not None:
                return name
    return None


@register_rule
class DispatchCompletenessRule(Rule):
    """Every query type reaches every engine through the registry.

    Why: PR 4 replaced per-engine ``isinstance(query, ...)`` ladders
    with the ``@register_handler(QueryType, engine=...)`` registry in
    ``repro.serving.dispatch``.  A ladder reintroduced in one executor
    silently diverges from the others the next time a query type is
    added: the registry raises ``UnsupportedQueryError`` loudly, a
    ladder just falls through.  The registry is also what makes the
    completeness *checkable* — the rule can enumerate it.

    How it checks: two halves.

    * **Static** (always): any ``isinstance(x, SomethingQuery)`` test in
      the scanned tree is flagged — executors must consult
      ``lookup_handler`` / ``supported_queries`` instead.
    * **Registry** (only when the real ``repro`` package is the scan
      target): imports the executors and asserts the charged (``ROAD``)
      and frozen (``FrozenRoad``) engines serve *identical* query-type
      sets, the ``ROADEngine`` facade serves everything charged does,
      every executor serves at least ``KNNQuery`` + ``RangeQuery``, and
      the wire-codec registry (``repro.serving.wire``) matches the
      dispatch registry in *both* directions — a query type no engine
      can reach over HTTP, or a codec for a type no engine executes, is
      a finding.

    How to fix a finding: for a ladder, register one handler per query
    type with ``@register_handler``; for a coverage gap, add the missing
    handler next to that engine's others (see the bottom of
    ``core/frozen.py`` for the pattern).
    """

    id = "RA003"
    title = "query dispatch must stay registry-complete (no isinstance ladders)"

    def check(self, project: Project) -> List[Finding]:
        findings = self._check_ladders(project)
        if "repro.serving.dispatch" in project.modules:
            findings.extend(self._check_registry(project))
        return findings

    # -- static half ----------------------------------------------------
    def _check_ladders(self, project: Project) -> List[Finding]:
        findings: List[Finding] = []
        for module in project.iter_modules():
            for node in ast.walk(module.tree):
                if not (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id == "isinstance"
                    and len(node.args) == 2
                ):
                    continue
                name = _query_type_name(node.args[1])
                if name is not None:
                    findings.append(
                        Finding(
                            self.id,
                            project.relative_path(module),
                            node.lineno,
                            f"isinstance ladder on query type {name}; "
                            f"dispatch through @register_handler / "
                            f"lookup_handler instead",
                        )
                    )
        findings.sort(key=lambda f: (f.path, f.line))
        return findings

    # -- registry half --------------------------------------------------
    def _check_registry(self, project: Project) -> List[Finding]:
        try:
            from repro.baselines.engine import SearchEngine
            from repro.baselines.road_adapter import ROADEngine
            from repro.core.framework import ROAD
            from repro.core.frozen import FrozenRoad
            from repro.queries.types import KNNQuery, RangeQuery
            from repro.serving.dispatch import supported_queries
            from repro.serving.wire import wire_types
        except ImportError:  # pragma: no cover - partial install
            return []

        module = project.modules["repro.serving.dispatch"]
        path = project.relative_path(module)

        def finding(message: str) -> Finding:
            return Finding(self.id, path, 1, message)

        findings: List[Finding] = []
        names = lambda types: sorted(t.__name__ for t in types)  # noqa: E731

        charged = set(supported_queries(ROAD))
        frozen = set(supported_queries(FrozenRoad))
        if charged != frozen:
            findings.append(
                finding(
                    f"charged and frozen engines serve different query sets "
                    f"(charged={names(charged)}, frozen={names(frozen)})"
                )
            )
        road = set(supported_queries(ROADEngine))
        missing = charged - road
        if missing:
            findings.append(
                finding(
                    f"ROADEngine is missing handlers for {names(missing)} "
                    f"served by the charged engine"
                )
            )
        executors: List[Tuple[str, type]] = [
            ("ROAD", ROAD),
            ("FrozenRoad", FrozenRoad),
            ("ROADEngine", ROADEngine),
            ("SearchEngine", SearchEngine),
        ]
        served_anywhere: set = set()
        for label, executor in executors:
            served = set(supported_queries(executor))
            served_anywhere |= served
            core_missing = {KNNQuery, RangeQuery} - served
            if core_missing:
                findings.append(
                    finding(
                        f"{label} has no handler for {names(core_missing)} "
                        f"(every engine must serve kNN and range)"
                    )
                )
        # Wire-registry parity, both directions: every executable query
        # type must cross the HTTP edge, and no codec may advertise a
        # type nothing executes.
        on_wire = set(wire_types())
        unreachable = served_anywhere - on_wire
        if unreachable:
            findings.append(
                finding(
                    f"query types {names(unreachable)} are registered for "
                    f"dispatch but have no wire codec (register_wire in "
                    f"repro.serving.wire)"
                )
            )
        orphaned = on_wire - served_anywhere
        if orphaned:
            findings.append(
                finding(
                    f"wire codecs for {names(orphaned)} name query types "
                    f"no executor serves (dead wire surface)"
                )
            )
        return findings
