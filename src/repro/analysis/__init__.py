"""Static invariant analysis for the reproduction's hot paths.

``python -m repro.analysis`` scans a source tree (the installed
``repro`` package by default) and enforces the repo's load-bearing
invariants as AST / call-graph rules:

========  ==========================================================
RA001     patch paths stay *uncharged* (peek-family access only)
RA002     replica state writes hold the matching replica lock
RA003     query dispatch stays registry-complete (no isinstance ladders)
RA004     cached buffer views are dropped before any resizing patch
RA005     optional deps (numpy) import only via ``repro._optional``
========  ==========================================================

``python -m repro.analysis --explain RA001`` prints a rule's rationale;
``--list`` enumerates the registry.  Exit status: 0 clean, 1 findings,
2 usage error — so CI can gate on it directly.
"""

from repro.analysis.engine import (
    AnalysisError,
    Finding,
    Rule,
    all_rules,
    analyze_path,
    get_rule,
    register_rule,
    run_rules,
)
from repro.analysis.project import Project

__all__ = [
    "AnalysisError",
    "Finding",
    "Project",
    "Rule",
    "all_rules",
    "analyze_path",
    "get_rule",
    "register_rule",
    "run_rules",
]
