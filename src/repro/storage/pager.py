"""Simulated disk pager.

The paper's evaluation (Section 6) stores every index on disk with a fixed
page size of 4 KB and a 50-page LRU buffer, and reports logical page I/O.
This module reproduces that storage substrate: a :class:`PageManager` owns a
set of fixed-size pages ("the disk") and routes every access through an LRU
:class:`~repro.storage.buffer.BufferPool`, counting buffer misses as reads
and dirty evictions as writes.

Pages carry an arbitrary Python payload plus a byte-size estimate supplied by
the structure that owns the page (B+-tree node, R-tree node, CCAM adjacency
block, ...).  Byte sizes come from the codecs in
:mod:`repro.storage.codecs`, so page occupancy and index sizes reflect real
serialized record sizes even though the hot path keeps deserialized objects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterator, Optional

from repro.storage.buffer import BufferPool

#: Fixed page size used throughout the evaluation (Section 6: "the page size
#: is fixed at 4KB").
PAGE_SIZE = 4096

#: Bytes reserved per page for the page header (id, kind, record count).
PAGE_HEADER_SIZE = 16


class PagerError(Exception):
    """Base class for pager failures."""


class PageNotFoundError(PagerError):
    """Raised when a page id does not exist on the simulated disk."""


class PageOverflowError(PagerError):
    """Raised when a payload is declared larger than a page can hold."""


@dataclass
class IOStats:
    """Logical I/O counters, mirroring the paper's "I/O = N pages" metric."""

    reads: int = 0
    writes: int = 0
    hits: int = 0
    misses: int = 0

    def reset(self) -> None:
        """Zero every counter (queries start from an empty cache, Section 6)."""
        self.reads = 0
        self.writes = 0
        self.hits = 0
        self.misses = 0

    @property
    def total_io(self) -> int:
        """Pages transferred between buffer and disk."""
        return self.reads + self.writes

    def snapshot(self) -> "IOStats":
        """Return a copy of the current counters."""
        return IOStats(self.reads, self.writes, self.hits, self.misses)

    def diff(self, earlier: "IOStats") -> "IOStats":
        """Counters accumulated since ``earlier`` was snapshotted."""
        return IOStats(
            self.reads - earlier.reads,
            self.writes - earlier.writes,
            self.hits - earlier.hits,
            self.misses - earlier.misses,
        )


@dataclass
class Page:
    """One fixed-size disk page.

    ``payload`` is the deserialized content (owned by the index structure);
    ``nbytes`` is the serialized size of that content, used for occupancy
    accounting against :data:`PAGE_SIZE`.
    """

    page_id: int
    kind: str
    payload: Any = None
    nbytes: int = 0
    dirty: bool = False

    @property
    def free_bytes(self) -> int:
        """Remaining capacity after the header and current payload."""
        return PAGE_SIZE - PAGE_HEADER_SIZE - self.nbytes


@dataclass
class _DiskSlot:
    """Backing-store slot for a page (what survives buffer eviction)."""

    page: Page
    live: bool = True


class PageManager:
    """Simulated disk with an LRU buffer pool and logical I/O accounting.

    Parameters
    ----------
    buffer_pages:
        Capacity of the buffer pool in pages.  The paper uses 50.
    name:
        Label used in ``repr`` and error messages; handy when several managers
        coexist (one per index in the benchmarks).
    """

    def __init__(self, buffer_pages: int = 50, name: str = "pager") -> None:
        if buffer_pages < 1:
            raise ValueError("buffer_pages must be >= 1")
        self.name = name
        self.stats = IOStats()
        self._disk: Dict[int, _DiskSlot] = {}
        self._next_page_id = 0
        self._buffer = BufferPool(buffer_pages)

    # ------------------------------------------------------------------
    # Allocation / deallocation
    # ------------------------------------------------------------------
    def allocate(self, kind: str, payload: Any = None, nbytes: int = 0) -> Page:
        """Create a new page and make it resident (counts as a write later).

        The new page is dirty: it must reach the disk before it can be
        evicted, so its first eviction costs one write.
        """
        if nbytes > PAGE_SIZE - PAGE_HEADER_SIZE:
            raise PageOverflowError(
                f"{self.name}: payload of {nbytes} bytes exceeds page capacity"
            )
        page = Page(self._next_page_id, kind, payload, nbytes, dirty=True)
        self._next_page_id += 1
        self._disk[page.page_id] = _DiskSlot(page)
        self._admit(page)
        return page

    def free(self, page_id: int) -> None:
        """Release a page; subsequent reads raise :class:`PageNotFoundError`."""
        slot = self._disk.get(page_id)
        if slot is None or not slot.live:
            raise PageNotFoundError(f"{self.name}: page {page_id} not allocated")
        slot.live = False
        self._buffer.discard(page_id)

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def read(self, page_id: int) -> Page:
        """Fetch a page, counting a read if it is not buffered."""
        slot = self._disk.get(page_id)
        if slot is None or not slot.live:
            raise PageNotFoundError(f"{self.name}: page {page_id} not allocated")
        if self._buffer.contains(page_id):
            self.stats.hits += 1
            self._buffer.touch(page_id)
        else:
            self.stats.misses += 1
            self.stats.reads += 1
            self._admit(slot.page)
        return slot.page

    def write(self, page: Page, nbytes: Optional[int] = None) -> None:
        """Mark a page dirty after its payload was mutated.

        ``nbytes`` updates the occupancy estimate; the write to disk is
        deferred until eviction or :meth:`flush` (write-back buffering).
        """
        if nbytes is not None:
            if nbytes > PAGE_SIZE - PAGE_HEADER_SIZE:
                raise PageOverflowError(
                    f"{self.name}: payload of {nbytes} bytes exceeds page capacity"
                )
            page.nbytes = nbytes
        page.dirty = True
        if not self._buffer.contains(page.page_id):
            # Mutating a non-resident page still requires fetching it first.
            self.stats.misses += 1
            self.stats.reads += 1
            self._admit(page)
        else:
            self._buffer.touch(page.page_id)

    def flush(self) -> int:
        """Write every dirty resident page back to disk; return pages written."""
        written = 0
        for page in self._buffer.pages():
            if page.dirty:
                page.dirty = False
                self.stats.writes += 1
                written += 1
        return written

    def drop_cache(self) -> None:
        """Empty the buffer pool (queries start with an empty cache)."""
        self.flush()
        self._buffer.clear()

    def reset_stats(self) -> None:
        """Zero the I/O counters without touching buffer contents."""
        self.stats.reset()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def page_count(self) -> int:
        """Number of live pages on the simulated disk."""
        return sum(1 for slot in self._disk.values() if slot.live)

    @property
    def size_bytes(self) -> int:
        """Total on-disk footprint (live pages x fixed page size)."""
        return self.page_count * PAGE_SIZE

    @property
    def used_bytes(self) -> int:
        """Sum of payload bytes actually occupied across live pages."""
        return sum(
            slot.page.nbytes + PAGE_HEADER_SIZE
            for slot in self._disk.values()
            if slot.live
        )

    @property
    def utilization(self) -> float:
        """Fraction of allocated disk space occupied by payload bytes."""
        if self.page_count == 0:
            return 0.0
        return self.used_bytes / self.size_bytes

    def iter_pages(self, kind: Optional[str] = None) -> Iterator[Page]:
        """Iterate live pages (optionally only those of one ``kind``).

        Iteration bypasses the buffer and does not count I/O; it exists for
        statistics and tests, not for query processing.
        """
        for slot in self._disk.values():
            if slot.live and (kind is None or slot.page.kind == kind):
                yield slot.page

    def peek(self, page_id: int) -> Page:
        """One page, uncharged: bypasses the buffer and counts no I/O.

        The single-page counterpart of :meth:`iter_pages`, for
        maintenance-time bulk consumers (snapshot compilation/patching)
        that must not disturb the buffer or the counters.  Never use it in
        query processing.
        """
        slot = self._disk.get(page_id)
        if slot is None or not slot.live:
            raise PageNotFoundError(f"{self.name}: no page {page_id}")
        return slot.page

    def page_counts_by_kind(self) -> Dict[str, int]:
        """Histogram of live pages per kind (route-overlay, ad, rtree, ...)."""
        counts: Dict[str, int] = {}
        for page in self.iter_pages():
            counts[page.kind] = counts.get(page.kind, 0) + 1
        return counts

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PageManager(name={self.name!r}, pages={self.page_count}, "
            f"size={self.size_bytes}B, stats={self.stats})"
        )

    # ------------------------------------------------------------------
    # Internal
    # ------------------------------------------------------------------
    def _admit(self, page: Page) -> None:
        evicted = self._buffer.admit(page)
        if evicted is not None and evicted.dirty:
            evicted.dirty = False
            self.stats.writes += 1
