"""Paged R-tree (Guttman, quadratic split).

The Euclidean-bound baseline indexes "objects ... by an R-tree" (Section 6)
and retrieves candidates in increasing Euclidean distance.  This is a classic
R-tree over :class:`~repro.storage.pager.PageManager` with:

* insertion via least-enlargement descent and quadratic node splitting,
* deletion with under-full node condensation and re-insertion,
* window (rectangle intersection) search, and
* best-first incremental nearest-neighbour traversal — the access pattern
  needed for Incremental Euclidean Restriction.

Entries are points or rectangles tagged with an integer reference (object
id).  Page I/O is charged for every node visited.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from repro.storage.codecs import RTREE_ENTRY_SIZE
from repro.storage.pager import PAGE_HEADER_SIZE, PAGE_SIZE, PageManager

#: Maximum entries per node derived from real entry sizes.
DEFAULT_MAX_ENTRIES = (PAGE_SIZE - PAGE_HEADER_SIZE) // RTREE_ENTRY_SIZE


@dataclass(frozen=True)
class Rect:
    """Axis-aligned rectangle; points are zero-area rectangles."""

    xmin: float
    ymin: float
    xmax: float
    ymax: float

    @staticmethod
    def point(x: float, y: float) -> "Rect":
        """Zero-area rectangle at (x, y)."""
        return Rect(x, y, x, y)

    @property
    def area(self) -> float:
        """Width times height."""
        return (self.xmax - self.xmin) * (self.ymax - self.ymin)

    def union(self, other: "Rect") -> "Rect":
        """Smallest rectangle covering both."""
        return Rect(
            min(self.xmin, other.xmin),
            min(self.ymin, other.ymin),
            max(self.xmax, other.xmax),
            max(self.ymax, other.ymax),
        )

    def intersects(self, other: "Rect") -> bool:
        """True if the rectangles share any point (boundaries count)."""
        return not (
            other.xmin > self.xmax
            or other.xmax < self.xmin
            or other.ymin > self.ymax
            or other.ymax < self.ymin
        )

    def contains_point(self, x: float, y: float) -> bool:
        """True if (x, y) lies inside or on the boundary."""
        return self.xmin <= x <= self.xmax and self.ymin <= y <= self.ymax

    def enlargement(self, other: "Rect") -> float:
        """Area growth needed to also cover ``other``."""
        return self.union(other).area - self.area

    def min_dist(self, x: float, y: float) -> float:
        """Minimum Euclidean distance from (x, y) to this rectangle."""
        dx = max(self.xmin - x, 0.0, x - self.xmax)
        dy = max(self.ymin - y, 0.0, y - self.ymax)
        return (dx * dx + dy * dy) ** 0.5


class _RTreeNode:
    """Node payload: parallel lists of entry rectangles and references.

    For leaves the references are object ids; for internal nodes they are
    child page ids.
    """

    __slots__ = ("leaf", "rects", "refs")

    def __init__(self, leaf: bool) -> None:
        self.leaf = leaf
        self.rects: List[Rect] = []
        self.refs: List[int] = []

    @property
    def nbytes(self) -> int:
        return len(self.rects) * RTREE_ENTRY_SIZE

    def mbr(self) -> Rect:
        box = self.rects[0]
        for rect in self.rects[1:]:
            box = box.union(rect)
        return box


class RTree:
    """Guttman R-tree with quadratic split over a simulated pager."""

    def __init__(
        self,
        pager: PageManager,
        name: str = "rtree",
        max_entries: Optional[int] = None,
    ) -> None:
        self._pager = pager
        self.name = name
        self._max = max_entries if max_entries is not None else DEFAULT_MAX_ENTRIES
        if self._max < 4:
            raise ValueError("max_entries must be >= 4")
        self._min = max(2, self._max * 2 // 5)  # Guttman's 40% fill heuristic
        self._count = 0
        root = _RTreeNode(leaf=True)
        self._root_id = self._pager.allocate(self.name, root, root.nbytes).page_id

    def __len__(self) -> int:
        return self._count

    @property
    def page_count(self) -> int:
        """Pages currently allocated to this tree."""
        return sum(1 for _ in self._pager.iter_pages(self.name))

    @property
    def size_bytes(self) -> int:
        """On-disk footprint (pages x page size)."""
        return self.page_count * PAGE_SIZE

    @property
    def height(self) -> int:
        """Levels from root to leaves (1 for a lone leaf)."""
        height = 1
        node = self._load(self._root_id)
        while not node.leaf:
            height += 1
            node = self._load(node.refs[0])
        return height

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def insert(self, rect: Rect, ref: int) -> None:
        """Insert an entry; duplicate (rect, ref) pairs are allowed."""
        split = self._insert_at(self._root_id, rect, ref)
        self._count += 1
        if split is not None:
            self._grow_root(split)

    def delete(self, rect: Rect, ref: int) -> bool:
        """Remove one entry matching (rect, ref); return True if found."""
        found = self._delete_from(self._root_id, rect, ref)
        if not found:
            return False
        self._count -= 1
        root = self._load(self._root_id)
        if not root.leaf and len(root.refs) == 1:
            old = self._root_id
            self._root_id = root.refs[0]
            self._pager.free(old)
        return True

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def window(self, query: Rect) -> List[Tuple[Rect, int]]:
        """All entries whose rectangles intersect ``query``."""
        out: List[Tuple[Rect, int]] = []
        stack = [self._root_id]
        while stack:
            node = self._load(stack.pop())
            for rect, ref in zip(node.rects, node.refs):
                if rect.intersects(query):
                    if node.leaf:
                        out.append((rect, ref))
                    else:
                        stack.append(ref)
        return out

    def nearest(self, x: float, y: float, k: int = 1) -> List[Tuple[float, int]]:
        """The k entries nearest to (x, y) as (distance, ref) pairs."""
        return list(itertools.islice(self.iter_nearest(x, y), k))

    def iter_nearest(self, x: float, y: float) -> Iterator[Tuple[float, int]]:
        """Yield entries in increasing Euclidean distance from (x, y).

        Best-first traversal over node MBRs; this is the incremental access
        pattern used by the Euclidean-bound baseline to fetch the next
        candidate object lazily.
        """
        counter = itertools.count()  # tie-breaker so Rects never compare
        heap: List[Tuple[float, int, bool, int]] = []
        heapq.heappush(heap, (0.0, next(counter), False, self._root_id))
        while heap:
            dist, _, is_entry, ref = heapq.heappop(heap)
            if is_entry:
                yield dist, ref
                continue
            node = self._load(ref)
            for rect, child in zip(node.rects, node.refs):
                heapq.heappush(
                    heap,
                    (rect.min_dist(x, y), next(counter), node.leaf, child),
                )

    def entries(self) -> List[Tuple[Rect, int]]:
        """Every stored (rect, ref) entry (test/debug helper)."""
        out: List[Tuple[Rect, int]] = []
        stack = [self._root_id]
        while stack:
            node = self._load(stack.pop())
            if node.leaf:
                out.extend(zip(node.rects, node.refs))
            else:
                stack.extend(node.refs)
        return out

    def validate(self) -> None:
        """Check MBR containment and fill invariants (tests)."""
        self._validate_node(self._root_id, is_root=True)

    # ------------------------------------------------------------------
    # Internal
    # ------------------------------------------------------------------
    def _load(self, page_id: int) -> _RTreeNode:
        return self._pager.read(page_id).payload

    def _save(self, page_id: int) -> None:
        page = self._pager.read(page_id)
        self._pager.write(page, page.payload.nbytes)

    def _grow_root(self, split: Tuple[Rect, int, Rect, int]) -> None:
        left_rect, left_id, right_rect, right_id = split
        root = _RTreeNode(leaf=False)
        root.rects = [left_rect, right_rect]
        root.refs = [left_id, right_id]
        self._root_id = self._pager.allocate(self.name, root, root.nbytes).page_id

    def _insert_at(
        self, page_id: int, rect: Rect, ref: int
    ) -> Optional[Tuple[Rect, int, Rect, int]]:
        node = self._load(page_id)
        if node.leaf:
            node.rects.append(rect)
            node.refs.append(ref)
            if len(node.refs) <= self._max:
                self._save(page_id)
                return None
            return self._split(page_id, node)

        best = self._choose_subtree(node, rect)
        split = self._insert_at(node.refs[best], rect, ref)
        if split is None:
            node.rects[best] = node.rects[best].union(rect)
            self._save(page_id)
            return None
        left_rect, left_id, right_rect, right_id = split
        node.rects[best] = left_rect
        node.refs[best] = left_id
        node.rects.append(right_rect)
        node.refs.append(right_id)
        if len(node.refs) <= self._max:
            self._save(page_id)
            return None
        return self._split(page_id, node)

    def _choose_subtree(self, node: _RTreeNode, rect: Rect) -> int:
        best, best_growth, best_area = 0, float("inf"), float("inf")
        for i, child_rect in enumerate(node.rects):
            growth = child_rect.enlargement(rect)
            area = child_rect.area
            if growth < best_growth or (growth == best_growth and area < best_area):
                best, best_growth, best_area = i, growth, area
        return best

    def _split(self, page_id: int, node: _RTreeNode) -> Tuple[Rect, int, Rect, int]:
        """Quadratic split; reuse ``page_id`` for the left group."""
        rects, refs = node.rects, node.refs
        seed_a, seed_b = self._pick_seeds(rects)
        groups: Tuple[List[int], List[int]] = ([seed_a], [seed_b])
        boxes = [rects[seed_a], rects[seed_b]]
        remaining = [i for i in range(len(rects)) if i not in (seed_a, seed_b)]

        while remaining:
            # Force-assign when one group must take everything left to reach
            # minimum fill.
            if len(groups[0]) + len(remaining) == self._min:
                groups[0].extend(remaining)
                for i in remaining:
                    boxes[0] = boxes[0].union(rects[i])
                break
            if len(groups[1]) + len(remaining) == self._min:
                groups[1].extend(remaining)
                for i in remaining:
                    boxes[1] = boxes[1].union(rects[i])
                break

            # Pick the entry with the strongest preference.
            best_i, best_diff, best_into = -1, -1.0, 0
            for i in remaining:
                d0 = boxes[0].enlargement(rects[i])
                d1 = boxes[1].enlargement(rects[i])
                diff = abs(d0 - d1)
                if diff > best_diff:
                    best_i, best_diff = i, diff
                    best_into = 0 if d0 < d1 else 1
            remaining.remove(best_i)
            groups[best_into].append(best_i)
            boxes[best_into] = boxes[best_into].union(rects[best_i])

        left = _RTreeNode(leaf=node.leaf)
        right = _RTreeNode(leaf=node.leaf)
        for i in groups[0]:
            left.rects.append(rects[i])
            left.refs.append(refs[i])
        for i in groups[1]:
            right.rects.append(rects[i])
            right.refs.append(refs[i])

        page = self._pager.read(page_id)
        page.payload = left
        self._pager.write(page, left.nbytes)
        right_page = self._pager.allocate(self.name, right, right.nbytes)
        return left.mbr(), page_id, right.mbr(), right_page.page_id

    def _pick_seeds(self, rects: List[Rect]) -> Tuple[int, int]:
        worst, seeds = -1.0, (0, 1)
        for i in range(len(rects)):
            for j in range(i + 1, len(rects)):
                waste = rects[i].union(rects[j]).area - rects[i].area - rects[j].area
                if waste > worst:
                    worst, seeds = waste, (i, j)
        return seeds

    def _delete_from(self, page_id: int, rect: Rect, ref: int) -> bool:
        """Find and remove the entry, condensing under-full leaves."""
        orphans: List[Tuple[Rect, int]] = []
        found = self._delete_rec(self._root_id, rect, ref, orphans)
        for orphan_rect, orphan_ref in orphans:
            split = self._insert_at(self._root_id, orphan_rect, orphan_ref)
            if split is not None:
                self._grow_root(split)
        return found

    def _delete_rec(
        self, page_id: int, rect: Rect, ref: int, orphans: List[Tuple[Rect, int]]
    ) -> bool:
        node = self._load(page_id)
        if node.leaf:
            for i, (entry_rect, entry_ref) in enumerate(zip(node.rects, node.refs)):
                if entry_ref == ref and entry_rect == rect:
                    del node.rects[i], node.refs[i]
                    self._save(page_id)
                    return True
            return False

        for i in range(len(node.refs)):
            if not node.rects[i].intersects(rect):
                continue
            if self._delete_rec(node.refs[i], rect, ref, orphans):
                child = self._load(node.refs[i])
                if child.leaf and len(child.refs) < self._min and page_id != self._root_id:
                    orphans.extend(zip(child.rects, child.refs))
                    self._pager.free(node.refs[i])
                    del node.rects[i], node.refs[i]
                elif child.rects:
                    node.rects[i] = child.mbr()
                elif not child.rects:
                    self._pager.free(node.refs[i])
                    del node.rects[i], node.refs[i]
                self._save(page_id)
                return True
        return False

    def _validate_node(self, page_id: int, is_root: bool = False) -> Rect:
        node = self._load(page_id)
        if not is_root and len(node.refs) > self._max:
            raise ValueError(f"rtree node {page_id} overflows")
        if node.leaf:
            return node.mbr() if node.rects else Rect(0, 0, 0, 0)
        for rect, child_id in zip(node.rects, node.refs):
            child_mbr = self._validate_node(child_id)
            union = rect.union(child_mbr)
            if union != rect:
                raise ValueError(
                    f"rtree node {page_id}: child MBR {child_mbr} escapes {rect}"
                )
        return node.mbr()
