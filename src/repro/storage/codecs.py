"""Record codecs: serialized sizes and byte round-trips.

Index sizes in the paper (Figures 13 and 14) are on-disk sizes, so the page
occupancy accounting must be grounded in real serialized record sizes, not
``sys.getsizeof`` of Python objects.  Each codec here knows how to ``encode``
a record to bytes, ``decode`` it back, and report its ``size`` cheaply
(without building the bytes) so that hot paths can stay object-based.

The formats are deliberately simple fixed/length-prefixed ``struct`` layouts:

* integers: 8-byte signed little-endian (``<q``)
* floats:   8-byte IEEE-754 doubles (``<d``)
* strings:  2-byte length prefix + UTF-8 bytes
* composite records: concatenation of their fields, documented per codec
"""

from __future__ import annotations

import struct
from typing import Dict, List, Sequence, Tuple

_INT = struct.Struct("<q")
_FLOAT = struct.Struct("<d")
_SHORT = struct.Struct("<H")

INT_SIZE = _INT.size
FLOAT_SIZE = _FLOAT.size


class CodecError(Exception):
    """Raised when bytes cannot be decoded as the expected record."""


# ---------------------------------------------------------------------------
# Primitives
# ---------------------------------------------------------------------------

def encode_int(value: int) -> bytes:
    """Encode a signed 64-bit integer."""
    return _INT.pack(value)


def decode_int(data: bytes, offset: int = 0) -> Tuple[int, int]:
    """Decode a signed 64-bit integer; return (value, next_offset)."""
    try:
        (value,) = _INT.unpack_from(data, offset)
    except struct.error as exc:
        raise CodecError(f"cannot decode int at offset {offset}") from exc
    return value, offset + INT_SIZE


def encode_float(value: float) -> bytes:
    """Encode a 64-bit float."""
    return _FLOAT.pack(value)


def decode_float(data: bytes, offset: int = 0) -> Tuple[float, int]:
    """Decode a 64-bit float; return (value, next_offset)."""
    try:
        (value,) = _FLOAT.unpack_from(data, offset)
    except struct.error as exc:
        raise CodecError(f"cannot decode float at offset {offset}") from exc
    return value, offset + FLOAT_SIZE


def encode_str(value: str) -> bytes:
    """Encode a short string (< 64 KiB UTF-8 bytes) with a length prefix."""
    raw = value.encode("utf-8")
    if len(raw) > 0xFFFF:
        raise CodecError("string too long for 2-byte length prefix")
    return _SHORT.pack(len(raw)) + raw


def decode_str(data: bytes, offset: int = 0) -> Tuple[str, int]:
    """Decode a length-prefixed string; return (value, next_offset)."""
    try:
        (length,) = _SHORT.unpack_from(data, offset)
    except struct.error as exc:
        raise CodecError(f"cannot decode string length at offset {offset}") from exc
    start = offset + _SHORT.size
    raw = data[start : start + length]
    if len(raw) != length:
        raise CodecError("truncated string payload")
    return raw.decode("utf-8"), start + length


def str_size(value: str) -> int:
    """Serialized size of a string without encoding it."""
    return _SHORT.size + len(value.encode("utf-8"))


# ---------------------------------------------------------------------------
# Composite records
# ---------------------------------------------------------------------------

def encode_int_list(values: Sequence[int]) -> bytes:
    """Length-prefixed list of 64-bit integers."""
    parts = [_SHORT.pack(len(values))]
    parts.extend(_INT.pack(v) for v in values)
    return b"".join(parts)


def decode_int_list(data: bytes, offset: int = 0) -> Tuple[List[int], int]:
    """Decode a length-prefixed integer list; return (values, next_offset)."""
    (count,) = _SHORT.unpack_from(data, offset)
    offset += _SHORT.size
    values: List[int] = []
    for _ in range(count):
        value, offset = decode_int(data, offset)
        values.append(value)
    return values, offset


def int_list_size(count: int) -> int:
    """Serialized size of an integer list of ``count`` elements."""
    return _SHORT.size + count * INT_SIZE


# --- graph records ---------------------------------------------------------

#: node record: node_id, x, y  (adjacency lives in separate edge records)
NODE_RECORD_SIZE = INT_SIZE + 2 * FLOAT_SIZE

#: edge record inside an adjacency block: neighbour id + distance
EDGE_RECORD_SIZE = INT_SIZE + FLOAT_SIZE


def encode_node_record(node_id: int, x: float, y: float) -> bytes:
    """Node record: ``id | x | y``."""
    return _INT.pack(node_id) + _FLOAT.pack(x) + _FLOAT.pack(y)


def decode_node_record(data: bytes, offset: int = 0) -> Tuple[Tuple[int, float, float], int]:
    """Decode a node record; return ((id, x, y), next_offset)."""
    node_id, offset = decode_int(data, offset)
    x, offset = decode_float(data, offset)
    y, offset = decode_float(data, offset)
    return (node_id, x, y), offset


def encode_adjacency(node_id: int, neighbours: Sequence[Tuple[int, float]]) -> bytes:
    """Adjacency block: ``node_id | count | (neighbour, distance)*``."""
    parts = [_INT.pack(node_id), _SHORT.pack(len(neighbours))]
    for neighbour, distance in neighbours:
        parts.append(_INT.pack(neighbour))
        parts.append(_FLOAT.pack(distance))
    return b"".join(parts)


def decode_adjacency(data: bytes, offset: int = 0) -> Tuple[Tuple[int, List[Tuple[int, float]]], int]:
    """Decode an adjacency block; return ((node_id, neighbours), next_offset)."""
    node_id, offset = decode_int(data, offset)
    (count,) = _SHORT.unpack_from(data, offset)
    offset += _SHORT.size
    neighbours: List[Tuple[int, float]] = []
    for _ in range(count):
        neighbour, offset = decode_int(data, offset)
        distance, offset = decode_float(data, offset)
        neighbours.append((neighbour, distance))
    return (node_id, neighbours), offset


def adjacency_size(degree: int) -> int:
    """Serialized size of an adjacency block for a node of given degree."""
    return INT_SIZE + _SHORT.size + degree * EDGE_RECORD_SIZE


# --- shortcut records ------------------------------------------------------

#: shortcut record: target border node, distance, rnet id, via-node count
def shortcut_size(n_via: int = 0) -> int:
    """Serialized size of one shortcut entry with ``n_via`` via-nodes."""
    return 2 * INT_SIZE + FLOAT_SIZE + int_list_size(n_via)


def encode_shortcut(target: int, distance: float, rnet_id: int, via: Sequence[int]) -> bytes:
    """Shortcut record: ``target | rnet | distance | via-list``."""
    return (
        _INT.pack(target)
        + _INT.pack(rnet_id)
        + _FLOAT.pack(distance)
        + encode_int_list(via)
    )


def decode_shortcut(data: bytes, offset: int = 0) -> Tuple[Tuple[int, int, float, List[int]], int]:
    """Decode a shortcut record; return ((target, rnet, dist, via), offset)."""
    target, offset = decode_int(data, offset)
    rnet_id, offset = decode_int(data, offset)
    distance, offset = decode_float(data, offset)
    via, offset = decode_int_list(data, offset)
    return (target, rnet_id, distance, via), offset


# --- object records --------------------------------------------------------

def object_record_size(attr_bytes: int = 0) -> int:
    """Size of an object association: object id, node id, offset, attributes."""
    return 2 * INT_SIZE + FLOAT_SIZE + _SHORT.size + attr_bytes


def encode_object_record(object_id: int, node_id: int, offset_dist: float, attrs: Dict[str, str]) -> bytes:
    """Object association record: ``oid | node | delta | attr-pairs``."""
    parts = [_INT.pack(object_id), _INT.pack(node_id), _FLOAT.pack(offset_dist)]
    parts.append(_SHORT.pack(len(attrs)))
    for key in sorted(attrs):
        parts.append(encode_str(key))
        parts.append(encode_str(attrs[key]))
    return b"".join(parts)


def decode_object_record(data: bytes, offset: int = 0) -> Tuple[Tuple[int, int, float, Dict[str, str]], int]:
    """Decode an object association record."""
    object_id, offset = decode_int(data, offset)
    node_id, offset = decode_int(data, offset)
    delta, offset = decode_float(data, offset)
    (count,) = _SHORT.unpack_from(data, offset)
    offset += _SHORT.size
    attrs: Dict[str, str] = {}
    for _ in range(count):
        key, offset = decode_str(data, offset)
        value, offset = decode_str(data, offset)
        attrs[key] = value
    return (object_id, node_id, delta, attrs), offset


def attrs_size(attrs: Dict[str, str]) -> int:
    """Serialized size of an attribute dictionary."""
    return sum(str_size(k) + str_size(v) for k, v in attrs.items())


# --- spatial records -------------------------------------------------------

#: R-tree entry: 4 doubles for the MBR + child/object id
RTREE_ENTRY_SIZE = 4 * FLOAT_SIZE + INT_SIZE


def encode_mbr_entry(xmin: float, ymin: float, xmax: float, ymax: float, ref: int) -> bytes:
    """R-tree entry: ``xmin | ymin | xmax | ymax | ref``."""
    return (
        _FLOAT.pack(xmin)
        + _FLOAT.pack(ymin)
        + _FLOAT.pack(xmax)
        + _FLOAT.pack(ymax)
        + _INT.pack(ref)
    )


def decode_mbr_entry(data: bytes, offset: int = 0) -> Tuple[Tuple[float, float, float, float, int], int]:
    """Decode an R-tree entry."""
    xmin, offset = decode_float(data, offset)
    ymin, offset = decode_float(data, offset)
    xmax, offset = decode_float(data, offset)
    ymax, offset = decode_float(data, offset)
    ref, offset = decode_int(data, offset)
    return (xmin, ymin, xmax, ymax, ref), offset


# --- distance signatures (DistIdx baseline) --------------------------------

def signature_entry_size() -> int:
    """Size of one distance-signature entry: object id, distance, next hop."""
    return 2 * INT_SIZE + FLOAT_SIZE


def encode_signature_entry(object_id: int, distance: float, next_hop: int) -> bytes:
    """Distance-signature entry: ``object | distance | next-hop``."""
    return _INT.pack(object_id) + _FLOAT.pack(distance) + _INT.pack(next_hop)


def decode_signature_entry(data: bytes, offset: int = 0) -> Tuple[Tuple[int, float, int], int]:
    """Decode a distance-signature entry."""
    object_id, offset = decode_int(data, offset)
    distance, offset = decode_float(data, offset)
    next_hop, offset = decode_int(data, offset)
    return (object_id, distance, next_hop), offset
