"""LRU buffer pool.

The evaluation employs "a memory cache of 50 pages with LRU replacement
scheme to buffer loaded pages" (Section 6).  :class:`BufferPool` implements
exactly that policy; :class:`~repro.storage.pager.PageManager` drives it and
does the I/O accounting.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.storage.pager import Page


class BufferPool:
    """Fixed-capacity LRU cache of :class:`~repro.storage.pager.Page`s."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._frames: "OrderedDict[int, Page]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._frames)

    def contains(self, page_id: int) -> bool:
        """True if the page is resident (does not affect recency)."""
        return page_id in self._frames

    def touch(self, page_id: int) -> None:
        """Move a resident page to the most-recently-used position."""
        self._frames.move_to_end(page_id)

    def admit(self, page: "Page") -> Optional["Page"]:
        """Insert a page, evicting the LRU page if full.

        Returns the evicted page (still dirty if it had unwritten changes) or
        ``None`` when no eviction was necessary.  Admitting an already
        resident page only refreshes its recency.
        """
        if page.page_id in self._frames:
            self._frames.move_to_end(page.page_id)
            return None
        evicted: Optional["Page"] = None
        if len(self._frames) >= self.capacity:
            _, evicted = self._frames.popitem(last=False)
        self._frames[page.page_id] = page
        return evicted

    def discard(self, page_id: int) -> None:
        """Drop a page from the pool without any write-back."""
        self._frames.pop(page_id, None)

    def clear(self) -> None:
        """Empty the pool."""
        self._frames.clear()

    def pages(self) -> Iterator["Page"]:
        """Iterate resident pages from least to most recently used."""
        return iter(self._frames.values())

    def resident_ids(self) -> Iterator[int]:
        """Iterate resident page ids from least to most recently used."""
        return iter(self._frames.keys())
