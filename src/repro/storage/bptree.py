"""Paged B+-tree.

Both ROAD components are "indexed by a B+-tree with unique node IDs as search
keys" (Section 3.4): the Route Overlay keys nodes, the Association Directory
keys nodes and Rnets.  The Distance-Index baseline stores per-node signatures
the same way.  This module implements a classic disk-oriented B+-tree on top
of :class:`~repro.storage.pager.PageManager`, so every descent and leaf walk
is charged page I/O exactly like the paper's disk-resident indexes.

Keys are signed 64-bit integers.  Values are arbitrary Python objects whose
*serialized* size the caller declares at insert time (defaults to 16 bytes);
leaves split when their byte budget overflows, which makes index sizes track
the record codecs in :mod:`repro.storage.codecs`.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Tuple

from repro.storage.codecs import INT_SIZE
from repro.storage.pager import PAGE_HEADER_SIZE, PAGE_SIZE, Page, PageManager

#: Per-leaf overhead: next/prev sibling pointers.
_LEAF_OVERHEAD = 2 * INT_SIZE

#: Byte budget available to leaf entries.
LEAF_CAPACITY_BYTES = PAGE_SIZE - PAGE_HEADER_SIZE - _LEAF_OVERHEAD

#: Maximum children of an internal node with 8-byte keys and pointers.
INTERNAL_MAX_CHILDREN = (PAGE_SIZE - PAGE_HEADER_SIZE) // (2 * INT_SIZE)

#: Default declared size for values whose caller does not provide one.
DEFAULT_VALUE_SIZE = 2 * INT_SIZE


class BPlusTreeError(Exception):
    """Raised on structural misuse (oversized record, corrupted node)."""


class _LeafNode:
    """Leaf page payload: sorted keys with values and their byte sizes."""

    __slots__ = ("keys", "values", "sizes", "next_leaf", "prev_leaf")

    def __init__(self) -> None:
        self.keys: List[int] = []
        self.values: List[Any] = []
        self.sizes: List[int] = []
        self.next_leaf: Optional[int] = None
        self.prev_leaf: Optional[int] = None

    @property
    def nbytes(self) -> int:
        return _LEAF_OVERHEAD + len(self.keys) * INT_SIZE + sum(self.sizes)

    @property
    def is_leaf(self) -> bool:
        return True


class _InternalNode:
    """Internal page payload: separator keys and child page ids.

    ``children[i]`` covers keys < ``keys[i]``; ``children[-1]`` covers the
    rest (left-biased separators: equal keys go right).
    """

    __slots__ = ("keys", "children")

    def __init__(self) -> None:
        self.keys: List[int] = []
        self.children: List[int] = []

    @property
    def nbytes(self) -> int:
        return len(self.keys) * INT_SIZE + len(self.children) * INT_SIZE

    @property
    def is_leaf(self) -> bool:
        return False


class BPlusTree:
    """Disk-style B+-tree mapping int keys to Python values.

    Parameters
    ----------
    pager:
        Page manager that owns this tree's pages (shared across indexes in
        the benchmarks so I/O is accounted globally).
    name:
        Page ``kind`` tag, letting several trees share one pager.
    order:
        Optional fan-out override (maximum children per internal node and
        maximum entries per leaf).  Small orders force deep trees in tests;
        production trees use the page-derived default.
    """

    def __init__(
        self,
        pager: PageManager,
        name: str = "bptree",
        order: Optional[int] = None,
    ) -> None:
        if order is not None and order < 3:
            raise ValueError("order must be >= 3")
        self._pager = pager
        self.name = name
        self._max_children = order if order is not None else INTERNAL_MAX_CHILDREN
        self._max_leaf_entries = order if order is not None else 1 << 60
        self._count = 0
        root = _LeafNode()
        self._root_id = self._new_page(root).page_id

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._count

    def __contains__(self, key: int) -> bool:
        return self.search(key) is not _MISSING

    @property
    def height(self) -> int:
        """Number of levels from root to leaves (1 for a lone leaf)."""
        height = 1
        node = self._load(self._root_id)
        while not node.is_leaf:
            height += 1
            node = self._load(node.children[0])
        return height

    @property
    def page_count(self) -> int:
        """Pages currently allocated to this tree."""
        return sum(1 for _ in self._pager.iter_pages(self.name))

    @property
    def size_bytes(self) -> int:
        """On-disk footprint (pages x page size)."""
        return self.page_count * PAGE_SIZE

    def get(self, key: int, default: Any = None) -> Any:
        """Return the value stored under ``key`` or ``default``."""
        value = self.search(key)
        return default if value is _MISSING else value

    def search(self, key: int) -> Any:
        """Return the value under ``key`` or the ``_MISSING`` sentinel."""
        page = self._descend_to_leaf(key)
        leaf: _LeafNode = page.payload
        idx = _find(leaf.keys, key)
        if idx is None:
            return _MISSING
        return leaf.values[idx]

    def peek(self, key: int, default: Any = None) -> Any:
        """Uncharged lookup: bypasses the buffer and counts no I/O.

        The single-key counterpart of :meth:`items`'s bulk-export
        semantics, built on :meth:`PageManager.peek` — for maintenance-time
        compile/patch consumers, never for query processing (queries go
        through :meth:`get` and pay the descent).
        """
        page = self._pager.peek(self._root_id)
        while not page.payload.is_leaf:
            node: _InternalNode = page.payload
            page = self._pager.peek(
                node.children[_child_index(node.keys, key)]
            )
        leaf: _LeafNode = page.payload
        idx = _find(leaf.keys, key)
        return default if idx is None else leaf.values[idx]

    def insert(self, key: int, value: Any, size: Optional[int] = None) -> None:
        """Insert or replace the value under ``key``.

        ``size`` is the declared serialized size in bytes used for page
        occupancy; oversized records are rejected rather than silently
        spilled (the codecs never produce entries near 4 KB).
        """
        entry_size = DEFAULT_VALUE_SIZE if size is None else size
        if entry_size + INT_SIZE > LEAF_CAPACITY_BYTES:
            raise BPlusTreeError(
                f"record of {entry_size} bytes exceeds leaf capacity"
            )
        split = self._insert_into(self._root_id, key, value, entry_size)
        if split is not None:
            sep_key, right_id = split
            new_root = _InternalNode()
            new_root.keys = [sep_key]
            new_root.children = [self._root_id, right_id]
            self._root_id = self._new_page(new_root).page_id

    def delete(self, key: int) -> bool:
        """Remove ``key``; return True if it was present."""
        removed = self._delete_from(self._root_id, key)
        if not removed:
            return False
        root_page = self._pager.read(self._root_id)
        root = root_page.payload
        if not root.is_leaf and len(root.children) == 1:
            old_root_id = self._root_id
            self._root_id = root.children[0]
            self._pager.free(old_root_id)
        return True

    def range_scan(self, lo: int, hi: int) -> Iterator[Tuple[int, Any]]:
        """Yield (key, value) pairs with ``lo <= key <= hi`` in key order."""
        if lo > hi:
            return
        page = self._descend_to_leaf(lo)
        leaf: _LeafNode = page.payload
        while True:
            for i, key in enumerate(leaf.keys):
                if key > hi:
                    return
                if key >= lo:
                    yield key, leaf.values[i]
            if leaf.next_leaf is None:
                return
            leaf = self._load(leaf.next_leaf)

    def items(self) -> Iterator[Tuple[int, Any]]:
        """Yield every (key, value) pair in key order."""
        node = self._load(self._root_id)
        while not node.is_leaf:
            node = self._load(node.children[0])
        leaf: _LeafNode = node
        while True:
            for key, value in zip(leaf.keys, leaf.values):
                yield key, value
            if leaf.next_leaf is None:
                return
            leaf = self._load(leaf.next_leaf)

    def peek_items(self) -> Iterator[Tuple[int, Any]]:
        """Uncharged :meth:`items`: same leaf walk, no buffer, no I/O.

        The bulk counterpart of :meth:`peek` — for maintenance-time
        compile/patch consumers (snapshot recompiles must not disturb
        the LRU buffer or the I/O counters).  Queries use :meth:`items`
        and pay the walk.
        """
        node = self._pager.peek(self._root_id).payload
        while not node.is_leaf:
            node = self._pager.peek(node.children[0]).payload
        leaf: _LeafNode = node
        while True:
            for key, value in zip(leaf.keys, leaf.values):
                yield key, value
            if leaf.next_leaf is None:
                return
            leaf = self._pager.peek(leaf.next_leaf).payload

    def keys(self) -> Iterator[int]:
        """Yield every key in order."""
        for key, _ in self.items():
            yield key

    def min_key(self) -> Optional[int]:
        """Smallest key, or None if empty."""
        for key, _ in self.items():
            return key
        return None

    def destroy(self) -> int:
        """Free every page of this tree; return the number freed.

        The tree is unusable afterwards (any access raises
        :class:`~repro.storage.pager.PageNotFoundError`).  Owners call this
        when an index is dropped so its pages return to the pager instead
        of leaking — kinds are unique per tree, so the sweep is exact.
        """
        page_ids = [page.page_id for page in self._pager.iter_pages(self.name)]
        for page_id in page_ids:
            self._pager.free(page_id)
        self._count = 0
        return len(page_ids)

    def validate(self) -> None:
        """Check structural invariants; raise :class:`BPlusTreeError` if broken.

        Used by tests (including property-based ones) after random workloads.
        """
        leaf_depths: List[int] = []
        count = self._validate_node(self._root_id, None, None, 0, leaf_depths,
                                    is_root=True)
        if count != self._count:
            raise BPlusTreeError(
                f"entry count mismatch: tracked {self._count}, found {count}"
            )
        if len(set(leaf_depths)) > 1:
            raise BPlusTreeError(f"leaves at unequal depths: {set(leaf_depths)}")

    # ------------------------------------------------------------------
    # Internal: node management
    # ------------------------------------------------------------------
    def _new_page(self, node: Any) -> Page:
        return self._pager.allocate(self.name, node, node.nbytes)

    def _load(self, page_id: int) -> Any:
        return self._pager.read(page_id).payload

    def _save(self, page_id: int) -> None:
        page = self._pager.read(page_id)
        self._pager.write(page, page.payload.nbytes)

    def _descend_to_leaf(self, key: int) -> Page:
        page = self._pager.read(self._root_id)
        while not page.payload.is_leaf:
            node: _InternalNode = page.payload
            page = self._pager.read(node.children[_child_index(node.keys, key)])
        return page

    # ------------------------------------------------------------------
    # Internal: insertion
    # ------------------------------------------------------------------
    def _insert_into(
        self, page_id: int, key: int, value: Any, entry_size: int
    ) -> Optional[Tuple[int, int]]:
        """Insert under ``page_id``; return (separator, new_right_page_id) on split."""
        node = self._load(page_id)
        if node.is_leaf:
            return self._insert_into_leaf(page_id, node, key, value, entry_size)

        child_pos = _child_index(node.keys, key)
        split = self._insert_into(node.children[child_pos], key, value, entry_size)
        if split is None:
            return None
        sep_key, right_id = split
        node.keys.insert(child_pos, sep_key)
        node.children.insert(child_pos + 1, right_id)
        if len(node.children) <= self._max_children:
            self._save(page_id)
            return None
        return self._split_internal(page_id, node)

    def _insert_into_leaf(
        self, page_id: int, leaf: _LeafNode, key: int, value: Any, entry_size: int
    ) -> Optional[Tuple[int, int]]:
        idx = _find(leaf.keys, key)
        if idx is not None:
            leaf.values[idx] = value
            leaf.sizes[idx] = entry_size
        else:
            pos = _insert_position(leaf.keys, key)
            leaf.keys.insert(pos, key)
            leaf.values.insert(pos, value)
            leaf.sizes.insert(pos, entry_size)
            self._count += 1
        if (
            leaf.nbytes <= LEAF_CAPACITY_BYTES
            and len(leaf.keys) <= self._max_leaf_entries
        ):
            self._save(page_id)
            return None
        return self._split_leaf(page_id, leaf)

    def _split_leaf(self, page_id: int, leaf: _LeafNode) -> Tuple[int, int]:
        """Split a leaf at the byte midpoint; return (separator, right page id)."""
        total = sum(leaf.sizes)
        acc = 0
        cut = len(leaf.keys) - 1
        for i, size in enumerate(leaf.sizes):
            acc += size
            if acc * 2 >= total and i + 1 < len(leaf.keys):
                cut = i + 1
                break
        if cut <= 0 or cut >= len(leaf.keys):
            cut = max(1, len(leaf.keys) // 2)

        right = _LeafNode()
        right.keys = leaf.keys[cut:]
        right.values = leaf.values[cut:]
        right.sizes = leaf.sizes[cut:]
        del leaf.keys[cut:], leaf.values[cut:], leaf.sizes[cut:]

        right_page = self._new_page(right)
        right.next_leaf = leaf.next_leaf
        right.prev_leaf = page_id
        if leaf.next_leaf is not None:
            after = self._load(leaf.next_leaf)
            after.prev_leaf = right_page.page_id
            self._save(leaf.next_leaf)
        leaf.next_leaf = right_page.page_id
        self._save(page_id)
        self._save(right_page.page_id)
        return right.keys[0], right_page.page_id

    def _split_internal(self, page_id: int, node: _InternalNode) -> Tuple[int, int]:
        mid = len(node.children) // 2
        sep_key = node.keys[mid - 1]
        right = _InternalNode()
        right.keys = node.keys[mid:]
        right.children = node.children[mid:]
        del node.keys[mid - 1 :]
        del node.children[mid:]
        right_page = self._new_page(right)
        self._save(page_id)
        return sep_key, right_page.page_id

    # ------------------------------------------------------------------
    # Internal: deletion
    # ------------------------------------------------------------------
    def _delete_from(self, page_id: int, key: int) -> bool:
        node = self._load(page_id)
        if node.is_leaf:
            idx = _find(node.keys, key)
            if idx is None:
                return False
            del node.keys[idx], node.values[idx], node.sizes[idx]
            self._count -= 1
            self._save(page_id)
            return True

        child_pos = _child_index(node.keys, key)
        removed = self._delete_from(node.children[child_pos], key)
        if removed:
            self._rebalance_child(page_id, node, child_pos)
        return removed

    def _min_leaf_entries(self) -> int:
        if self._max_leaf_entries < (1 << 60):
            return max(1, self._max_leaf_entries // 2)
        return 1  # byte-budget trees shrink by merging when siblings fit

    def _rebalance_child(self, page_id: int, node: _InternalNode, pos: int) -> None:
        child_id = node.children[pos]
        child = self._load(child_id)
        if child.is_leaf:
            if len(child.keys) >= self._min_leaf_entries() and child.keys:
                self._save(page_id)
                return
            self._rebalance_leaf(page_id, node, pos)
        else:
            min_children = max(2, self._max_children // 2)
            if len(child.children) >= min_children:
                self._save(page_id)
                return
            self._rebalance_internal(page_id, node, pos)

    def _rebalance_leaf(self, page_id: int, parent: _InternalNode, pos: int) -> None:
        child_id = parent.children[pos]
        child: _LeafNode = self._load(child_id)
        left_id = parent.children[pos - 1] if pos > 0 else None
        right_id = parent.children[pos + 1] if pos + 1 < len(parent.children) else None

        # Try borrowing from the richer sibling first.
        if left_id is not None:
            left: _LeafNode = self._load(left_id)
            if len(left.keys) > self._min_leaf_entries() and len(left.keys) > 1:
                child.keys.insert(0, left.keys.pop())
                child.values.insert(0, left.values.pop())
                child.sizes.insert(0, left.sizes.pop())
                parent.keys[pos - 1] = child.keys[0]
                self._save(left_id)
                self._save(child_id)
                self._save(page_id)
                return
        if right_id is not None:
            right: _LeafNode = self._load(right_id)
            if len(right.keys) > self._min_leaf_entries() and len(right.keys) > 1:
                child.keys.append(right.keys.pop(0))
                child.values.append(right.values.pop(0))
                child.sizes.append(right.sizes.pop(0))
                parent.keys[pos] = right.keys[0]
                self._save(right_id)
                self._save(child_id)
                self._save(page_id)
                return

        # Merge with a sibling when borrowing is impossible.
        if left_id is not None:
            left = self._load(left_id)
            if left.nbytes + child.nbytes - _LEAF_OVERHEAD <= LEAF_CAPACITY_BYTES and (
                len(left.keys) + len(child.keys) <= self._max_leaf_entries
            ):
                self._merge_leaves(left_id, left, child_id, child)
                del parent.keys[pos - 1]
                del parent.children[pos]
                self._save(page_id)
                return
        if right_id is not None:
            right = self._load(right_id)
            if child.nbytes + right.nbytes - _LEAF_OVERHEAD <= LEAF_CAPACITY_BYTES and (
                len(child.keys) + len(right.keys) <= self._max_leaf_entries
            ):
                self._merge_leaves(child_id, child, right_id, right)
                del parent.keys[pos]
                del parent.children[pos + 1]
                self._save(page_id)
                return

        # Empty leaf that could not merge (siblings full): drop it entirely.
        if not child.keys and len(parent.children) > 1:
            if child.prev_leaf is not None:
                before = self._load(child.prev_leaf)
                before.next_leaf = child.next_leaf
                self._save(child.prev_leaf)
            if child.next_leaf is not None:
                after = self._load(child.next_leaf)
                after.prev_leaf = child.prev_leaf
                self._save(child.next_leaf)
            del parent.children[pos]
            del parent.keys[pos - 1 if pos > 0 else 0]
            self._pager.free(child_id)
        self._save(page_id)

    def _merge_leaves(
        self, left_id: int, left: _LeafNode, right_id: int, right: _LeafNode
    ) -> None:
        left.keys.extend(right.keys)
        left.values.extend(right.values)
        left.sizes.extend(right.sizes)
        left.next_leaf = right.next_leaf
        if right.next_leaf is not None:
            after = self._load(right.next_leaf)
            after.prev_leaf = left_id
            self._save(right.next_leaf)
        self._save(left_id)
        self._pager.free(right_id)

    def _rebalance_internal(self, page_id: int, parent: _InternalNode, pos: int) -> None:
        child_id = parent.children[pos]
        child: _InternalNode = self._load(child_id)
        min_children = max(2, self._max_children // 2)
        left_id = parent.children[pos - 1] if pos > 0 else None
        right_id = parent.children[pos + 1] if pos + 1 < len(parent.children) else None

        if left_id is not None:
            left: _InternalNode = self._load(left_id)
            if len(left.children) > min_children:
                child.keys.insert(0, parent.keys[pos - 1])
                parent.keys[pos - 1] = left.keys.pop()
                child.children.insert(0, left.children.pop())
                self._save(left_id)
                self._save(child_id)
                self._save(page_id)
                return
        if right_id is not None:
            right: _InternalNode = self._load(right_id)
            if len(right.children) > min_children:
                child.keys.append(parent.keys[pos])
                parent.keys[pos] = right.keys.pop(0)
                child.children.append(right.children.pop(0))
                self._save(right_id)
                self._save(child_id)
                self._save(page_id)
                return

        if left_id is not None:
            left = self._load(left_id)
            if len(left.children) + len(child.children) <= self._max_children:
                left.keys.append(parent.keys[pos - 1])
                left.keys.extend(child.keys)
                left.children.extend(child.children)
                del parent.keys[pos - 1]
                del parent.children[pos]
                self._save(left_id)
                self._pager.free(child_id)
                self._save(page_id)
                return
        if right_id is not None:
            right = self._load(right_id)
            if len(child.children) + len(right.children) <= self._max_children:
                child.keys.append(parent.keys[pos])
                child.keys.extend(right.keys)
                child.children.extend(right.children)
                del parent.keys[pos]
                del parent.children[pos + 1]
                self._save(child_id)
                self._pager.free(right_id)
                self._save(page_id)
                return
        self._save(page_id)

    # ------------------------------------------------------------------
    # Internal: validation
    # ------------------------------------------------------------------
    def _validate_node(
        self,
        page_id: int,
        lo: Optional[int],
        hi: Optional[int],
        depth: int,
        leaf_depths: List[int],
        is_root: bool = False,
    ) -> int:
        node = self._load(page_id)
        if node.is_leaf:
            leaf_depths.append(depth)
            keys = node.keys
            if keys != sorted(keys):
                raise BPlusTreeError(f"leaf {page_id} keys unsorted: {keys}")
            if len(set(keys)) != len(keys):
                raise BPlusTreeError(f"leaf {page_id} has duplicate keys")
            for key in keys:
                if lo is not None and key < lo:
                    raise BPlusTreeError(f"leaf key {key} below bound {lo}")
                if hi is not None and key >= hi:
                    raise BPlusTreeError(f"leaf key {key} above bound {hi}")
            if node.nbytes > LEAF_CAPACITY_BYTES:
                raise BPlusTreeError(f"leaf {page_id} overflows byte budget")
            return len(keys)

        if len(node.children) != len(node.keys) + 1:
            raise BPlusTreeError(
                f"internal {page_id}: {len(node.children)} children, "
                f"{len(node.keys)} keys"
            )
        if len(node.children) > self._max_children:
            raise BPlusTreeError(f"internal {page_id} overflows fan-out")
        if not is_root and len(node.children) < 2:
            raise BPlusTreeError(f"internal {page_id} underflows")
        if node.keys != sorted(node.keys):
            raise BPlusTreeError(f"internal {page_id} keys unsorted")
        total = 0
        bounds = [lo] + list(node.keys) + [hi]
        for i, child_id in enumerate(node.children):
            total += self._validate_node(
                child_id, bounds[i], bounds[i + 1], depth + 1, leaf_depths
            )
        return total


class _Missing:
    """Sentinel distinguishing 'absent' from a stored ``None``."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<missing>"


_MISSING = _Missing()


def _find(keys: List[int], key: int) -> Optional[int]:
    """Binary-search ``keys`` for ``key``; return its index or None."""
    lo, hi = 0, len(keys)
    while lo < hi:
        mid = (lo + hi) // 2
        if keys[mid] < key:
            lo = mid + 1
        else:
            hi = mid
    if lo < len(keys) and keys[lo] == key:
        return lo
    return None


def _insert_position(keys: List[int], key: int) -> int:
    """Index at which ``key`` keeps ``keys`` sorted."""
    lo, hi = 0, len(keys)
    while lo < hi:
        mid = (lo + hi) // 2
        if keys[mid] < key:
            lo = mid + 1
        else:
            hi = mid
    return lo


def _child_index(keys: List[int], key: int) -> int:
    """Child slot for ``key`` under left-biased separators (equal goes right)."""
    lo, hi = 0, len(keys)
    while lo < hi:
        mid = (lo + hi) // 2
        if keys[mid] <= key:
            lo = mid + 1
        else:
            hi = mid
    return lo
