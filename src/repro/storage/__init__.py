"""Simulated disk storage substrate.

Reproduces the paper's storage set-up (Section 6): 4 KB pages, a 50-page LRU
buffer, CCAM-clustered network pages [18], and paged B+-tree / R-tree
indexes, all with logical I/O accounting.
"""

from repro.storage.bptree import BPlusTree
from repro.storage.buffer import BufferPool
from repro.storage.ccam import NetworkStore
from repro.storage.pager import (
    IOStats,
    Page,
    PageManager,
    PageNotFoundError,
    PageOverflowError,
    PagerError,
    PAGE_SIZE,
)
from repro.storage.rtree import Rect, RTree

__all__ = [
    "BPlusTree",
    "BufferPool",
    "IOStats",
    "NetworkStore",
    "Page",
    "PageManager",
    "PageNotFoundError",
    "PageOverflowError",
    "PagerError",
    "PAGE_SIZE",
    "Rect",
    "RTree",
]
