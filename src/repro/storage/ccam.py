"""CCAM-style network storage.

All compared approaches in the paper "adopt CCAM [18] to organize network
nodes in storage" (Section 6).  CCAM (Connectivity-Clustered Access Method)
packs the adjacency records of topologically close nodes into the same disk
page, so a network expansion touches few pages while it stays local.

:class:`NetworkStore` reproduces that behaviour on the simulated pager: nodes
are laid out in breadth-first order (a standard approximation of CCAM's
min-cut clustering) and packed into 4 KB pages by their real serialized
record sizes.  Every adjacency access goes through the buffer pool and is
charged I/O, which is what makes the per-query "I/O = N pages" numbers of
the evaluation reproducible.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Optional, Tuple

from repro.graph.network import RoadNetwork
from repro.storage.codecs import NODE_RECORD_SIZE, adjacency_size
from repro.storage.pager import PAGE_HEADER_SIZE, PAGE_SIZE, PageManager


class _NodeBlock:
    """Page payload: adjacency lists and coordinates of co-located nodes."""

    __slots__ = ("adjacency", "coords", "nbytes")

    def __init__(self) -> None:
        self.adjacency: Dict[int, List[Tuple[int, float]]] = {}
        self.coords: Dict[int, Tuple[float, float]] = {}
        self.nbytes = 0


def _record_size(degree: int) -> int:
    """Serialized size of one node's record: coordinates + adjacency block."""
    return NODE_RECORD_SIZE + adjacency_size(degree)


class NetworkStore:
    """Disk-resident road network with connectivity-clustered pages.

    Parameters
    ----------
    network:
        The in-memory :class:`~repro.graph.network.RoadNetwork` to lay out.
    pager:
        Simulated disk; adjacency reads charge I/O against its buffer pool.
    name:
        Page ``kind`` tag (defaults to ``"ccam"``).
    """

    def __init__(
        self, network: RoadNetwork, pager: PageManager, name: str = "ccam"
    ) -> None:
        self._pager = pager
        self.name = name
        self._node_page: Dict[int, int] = {}
        self._build(network)

    # ------------------------------------------------------------------
    # Layout
    # ------------------------------------------------------------------
    def _build(self, network: RoadNetwork) -> None:
        capacity = PAGE_SIZE - PAGE_HEADER_SIZE
        block = _NodeBlock()
        page = self._pager.allocate(self.name, block, 0)
        for node_id in self._bfs_order(network):
            degree = network.degree(node_id)
            size = _record_size(degree)
            if block.nbytes + size > capacity and block.adjacency:
                self._pager.write(page, block.nbytes)
                block = _NodeBlock()
                page = self._pager.allocate(self.name, block, 0)
            block.adjacency[node_id] = list(network.neighbours(node_id))
            block.coords[node_id] = network.coords(node_id)
            block.nbytes += size
            self._node_page[node_id] = page.page_id
        self._pager.write(page, block.nbytes)
        self._pager.flush()

    @staticmethod
    def _bfs_order(network: RoadNetwork) -> Iterable[int]:
        """Breadth-first node order: neighbours land on nearby pages."""
        seen = set()
        order: List[int] = []
        for start in network.node_ids():
            if start in seen:
                continue
            queue = deque([start])
            seen.add(start)
            while queue:
                node = queue.popleft()
                order.append(node)
                for neighbour, _ in network.neighbours(node):
                    if neighbour not in seen:
                        seen.add(neighbour)
                        queue.append(neighbour)
        return order

    # ------------------------------------------------------------------
    # Access (charged I/O)
    # ------------------------------------------------------------------
    def neighbours(self, node_id: int) -> List[Tuple[int, float]]:
        """Adjacency list of ``node_id`` as (neighbour, distance) pairs."""
        block = self._block(node_id)
        return block.adjacency[node_id]

    def coords(self, node_id: int) -> Tuple[float, float]:
        """Coordinates of ``node_id``."""
        block = self._block(node_id)
        return block.coords[node_id]

    def has_node(self, node_id: int) -> bool:
        """True if the node is stored (no I/O charged)."""
        return node_id in self._node_page

    def node_ids(self) -> Iterable[int]:
        """All stored node ids (no I/O charged; for tests/statistics)."""
        return self._node_page.keys()

    # ------------------------------------------------------------------
    # Maintenance (Section 5.2: network changes reach the stored pages)
    # ------------------------------------------------------------------
    def update_edge_distance(self, u: int, v: int, distance: float) -> None:
        """Overwrite the stored distance of edge (u, v) in both directions."""
        for a, b in ((u, v), (v, u)):
            block = self._block(a)
            adj = block.adjacency[a]
            for i, (neighbour, _) in enumerate(adj):
                if neighbour == b:
                    adj[i] = (b, distance)
                    break
            else:
                raise KeyError(f"edge ({a}, {b}) not stored")
            self._dirty(a)

    def add_edge(self, u: int, v: int, distance: float) -> None:
        """Store a new edge; both endpoints must already exist.

        A node whose grown record no longer fits its page is relocated to a
        page with room (CCAM handles record growth the same way).
        """
        growth = _record_size(1) - _record_size(0)
        capacity = PAGE_SIZE - PAGE_HEADER_SIZE
        for a, b in ((u, v), (v, u)):
            block = self._block(a)
            adj = block.adjacency[a]
            if any(neighbour == b for neighbour, _ in adj):
                raise KeyError(f"edge ({a}, {b}) already stored")
            if block.nbytes + growth > capacity:
                block = self._relocate(a)
                adj = block.adjacency[a]
            adj.append((b, distance))
            block.nbytes += growth
            self._dirty(a)

    def _relocate(self, node_id: int) -> _NodeBlock:
        """Move a node's record to a page with spare room; return its block."""
        old_block = self._block(node_id)
        adj = old_block.adjacency.pop(node_id)
        coords = old_block.coords.pop(node_id)
        size = _record_size(len(adj))
        old_block.nbytes -= size
        self._dirty(node_id)

        capacity = PAGE_SIZE - PAGE_HEADER_SIZE
        target = None
        for page in self._pager.iter_pages(self.name):
            if page.payload.nbytes + size + _record_size(1) - _record_size(0) <= capacity:
                target = page
                break
        if target is None:
            target = self._pager.allocate(self.name, _NodeBlock(), 0)
        block = target.payload
        block.adjacency[node_id] = adj
        block.coords[node_id] = coords
        block.nbytes += size
        self._node_page[node_id] = target.page_id
        self._pager.write(target, block.nbytes)
        return block

    def add_node(self, node_id: int, x: float, y: float) -> None:
        """Store a new isolated node on the last page with room."""
        if node_id in self._node_page:
            raise KeyError(f"node {node_id} already stored")
        size = _record_size(0)
        capacity = PAGE_SIZE - PAGE_HEADER_SIZE
        target: Optional[int] = None
        for page in self._pager.iter_pages(self.name):
            if page.payload.nbytes + size <= capacity:
                target = page.page_id
                break
        if target is None:
            block = _NodeBlock()
            page = self._pager.allocate(self.name, block, 0)
            target = page.page_id
        page = self._pager.read(target)
        block = page.payload
        block.adjacency[node_id] = []
        block.coords[node_id] = (x, y)
        block.nbytes += size
        self._node_page[node_id] = target
        self._pager.write(page, block.nbytes)

    def remove_edge(self, u: int, v: int) -> None:
        """Delete edge (u, v) from both adjacency blocks."""
        for a, b in ((u, v), (v, u)):
            block = self._block(a)
            adj = block.adjacency[a]
            before = len(adj)
            block.adjacency[a] = [(n, d) for n, d in adj if n != b]
            if len(block.adjacency[a]) == before:
                raise KeyError(f"edge ({a}, {b}) not stored")
            block.nbytes -= _record_size(1) - _record_size(0)
            self._dirty(a)

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    @property
    def page_count(self) -> int:
        """Pages allocated to the network layout."""
        return sum(1 for _ in self._pager.iter_pages(self.name))

    @property
    def size_bytes(self) -> int:
        """On-disk footprint of the network layout."""
        return self.page_count * PAGE_SIZE

    def locality(self) -> float:
        """Fraction of edges whose endpoints share a page (layout quality)."""
        same = 0
        total = 0
        for page in self._pager.iter_pages(self.name):
            for node, adj in page.payload.adjacency.items():
                for neighbour, _ in adj:
                    total += 1
                    if self._node_page.get(neighbour) == self._node_page[node]:
                        same += 1
        return same / total if total else 1.0

    # ------------------------------------------------------------------
    # Internal
    # ------------------------------------------------------------------
    def _block(self, node_id: int) -> _NodeBlock:
        try:
            page_id = self._node_page[node_id]
        except KeyError:
            raise KeyError(f"node {node_id} not stored") from None
        return self._pager.read(page_id).payload

    def _dirty(self, node_id: int) -> None:
        page = self._pager.read(self._node_page[node_id])
        self._pager.write(page, page.payload.nbytes)
