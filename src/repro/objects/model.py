"""Spatial objects.

Section 3.1: "objects reside on edges ... We denote a set of objects on edge
(n, n') by O(n, n') and the distance from an object o ∈ O(n, n') to the
nodes n and n' by δ(o, n) and δ(o, n')".  A :class:`SpatialObject` therefore
carries its host edge, its offset from the edge's canonical first endpoint,
and free-form string attributes (``o.a`` of the attribute predicate ``A``).

:class:`ObjectSet` is the content-provider collection: objects indexed by id
and by host edge, ready to be mapped onto a network through an Association
Directory (or consumed directly by the baselines).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional

from repro.graph.network import EdgeKey, RoadNetwork, edge_key


class ObjectError(Exception):
    """Raised on invalid object definitions or set operations."""


@dataclass(frozen=True)
class SpatialObject:
    """An object on a road segment.

    ``delta`` measures along the edge from the canonical first endpoint
    (``edge[0]``, the smaller node id); δ(o, edge[1]) follows from the edge
    distance at lookup time.
    """

    object_id: int
    edge: EdgeKey
    delta: float
    attrs: Dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        u, v = self.edge
        if u > v:
            object.__setattr__(self, "edge", (v, u))
        if self.delta < 0:
            raise ObjectError(
                f"object {self.object_id}: negative offset {self.delta}"
            )

    def offset_from(self, node: int, edge_distance: float) -> float:
        """δ(o, node) for either endpoint of the host edge."""
        if node == self.edge[0]:
            return self.delta
        if node == self.edge[1]:
            remainder = edge_distance - self.delta
            if remainder < -1e-9:
                raise ObjectError(
                    f"object {self.object_id}: offset {self.delta} exceeds "
                    f"edge distance {edge_distance}"
                )
            return max(remainder, 0.0)
        raise ObjectError(f"node {node} is not an endpoint of {self.edge}")

    def attr(self, key: str, default: Optional[str] = None) -> Optional[str]:
        """Attribute value or ``default``."""
        return self.attrs.get(key, default)


class ObjectSet:
    """A collection of spatial objects indexed by id and by host edge."""

    def __init__(self, objects: Iterable[SpatialObject] = ()) -> None:
        self._by_id: Dict[int, SpatialObject] = {}
        self._by_edge: Dict[EdgeKey, List[int]] = {}
        for obj in objects:
            self.add(obj)

    def __len__(self) -> int:
        return len(self._by_id)

    def __iter__(self) -> Iterator[SpatialObject]:
        return iter(self._by_id.values())

    def __contains__(self, object_id: int) -> bool:
        return object_id in self._by_id

    def add(self, obj: SpatialObject) -> None:
        """Add an object; ids must be unique within the set."""
        if obj.object_id in self._by_id:
            raise ObjectError(f"object {obj.object_id} already present")
        self._by_id[obj.object_id] = obj
        self._by_edge.setdefault(obj.edge, []).append(obj.object_id)

    def remove(self, object_id: int) -> SpatialObject:
        """Remove and return an object."""
        try:
            obj = self._by_id.pop(object_id)
        except KeyError:
            raise ObjectError(f"object {object_id} not present") from None
        peers = self._by_edge[obj.edge]
        peers.remove(object_id)
        if not peers:
            del self._by_edge[obj.edge]
        return obj

    def get(self, object_id: int) -> SpatialObject:
        """Object by id."""
        try:
            return self._by_id[object_id]
        except KeyError:
            raise ObjectError(f"object {object_id} not present") from None

    def on_edge(self, u: int, v: int) -> List[SpatialObject]:
        """``O(u, v)`` — objects hosted on edge (u, v)."""
        return [
            self._by_id[i] for i in self._by_edge.get(edge_key(u, v), ())
        ]

    def ids(self) -> List[int]:
        """All object ids."""
        return list(self._by_id)

    def edges(self) -> List[EdgeKey]:
        """Distinct edges hosting at least one object."""
        return list(self._by_edge)

    def next_id(self) -> int:
        """Smallest id larger than any in use (for inserting new objects)."""
        return max(self._by_id, default=-1) + 1

    def validate_against(self, network: RoadNetwork) -> None:
        """Check every object sits on an existing edge within its length."""
        for obj in self:
            u, v = obj.edge
            if not network.has_edge(u, v):
                raise ObjectError(
                    f"object {obj.object_id} on missing edge {obj.edge}"
                )
            if obj.delta > network.edge_distance(u, v) + 1e-9:
                raise ObjectError(
                    f"object {obj.object_id} offset beyond edge length"
                )
