"""Object placement generators.

The evaluation distributes 10–1000 objects "evenly ... over those road
networks" (Section 6); the paper also notes ROAD "can benefit more from
uneven object distribution" (footnote 3) because clustering leaves more
object-free Rnets to prune — hotels concentrate in business districts
(Section 3.2).  Both distributions are provided, plus attribute assignment
for predicate-carrying LDSQs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - annotations only
    import numpy as np

from repro.graph.network import RoadNetwork
from repro.objects.model import ObjectSet, SpatialObject


def _rng(seed: int) -> "np.random.RandomState":
    """Lazy numpy import: placement needs it, the rest of the package
    (and numpy-free deployments of the core library) does not."""
    from repro._optional import require_numpy

    return require_numpy("object placement").random.RandomState(seed)


def place_uniform(
    network: RoadNetwork,
    count: int,
    *,
    seed: int = 0,
    attr_choices: Optional[Dict[str, Sequence[str]]] = None,
) -> ObjectSet:
    """Place ``count`` objects uniformly at random over the network's edges.

    Each object picks a random edge and a random position along it.
    ``attr_choices`` maps attribute name to the values sampled uniformly
    (e.g. ``{"type": ["restaurant", "hotel", "fuel"]}``).
    """
    rng = _rng(seed)
    edges = sorted((u, v) for u, v, _ in network.edges())
    if not edges:
        raise ValueError("network has no edges to place objects on")
    objects = ObjectSet()
    for object_id in range(count):
        u, v = edges[rng.randint(0, len(edges))]
        distance = network.edge_distance(u, v)
        delta = float(rng.uniform(0.0, distance))
        attrs = _sample_attrs(rng, attr_choices)
        objects.add(SpatialObject(object_id, (u, v), delta, attrs))
    return objects


def place_clustered(
    network: RoadNetwork,
    count: int,
    *,
    clusters: int = 4,
    seed: int = 0,
    spread: int = 3,
    attr_choices: Optional[Dict[str, Sequence[str]]] = None,
) -> ObjectSet:
    """Place objects around a few hub nodes (hops-limited neighbourhoods).

    ``clusters`` hubs are sampled; each object lands on an edge within
    ``spread`` hops of its hub.  This is the uneven distribution that makes
    most Rnets object-free.
    """
    if clusters < 1:
        raise ValueError("need at least one cluster")
    rng = _rng(seed)
    nodes = sorted(network.node_ids())
    hubs = [nodes[i] for i in rng.choice(len(nodes), size=clusters, replace=False)]
    pools: List[List[Tuple[int, int]]] = []
    for hub in hubs:
        pool = _edges_within_hops(network, hub, spread)
        pools.append(pool if pool else [_any_edge(network, hub)])
    objects = ObjectSet()
    for object_id in range(count):
        pool = pools[rng.randint(0, clusters)]
        u, v = pool[rng.randint(0, len(pool))]
        distance = network.edge_distance(u, v)
        delta = float(rng.uniform(0.0, distance))
        attrs = _sample_attrs(rng, attr_choices)
        objects.add(SpatialObject(object_id, (u, v), delta, attrs))
    return objects


def _edges_within_hops(
    network: RoadNetwork, hub: int, hops: int
) -> List[Tuple[int, int]]:
    """Edges whose endpoints are both within ``hops`` hops of ``hub``."""
    frontier = {hub}
    seen = {hub}
    for _ in range(hops):
        frontier = {
            neighbour
            for node in frontier
            for neighbour, _ in network.neighbours(node)
            if neighbour not in seen
        }
        seen |= frontier
    return sorted(
        (u, v)
        for u, v, _ in network.edges()
        if u in seen and v in seen
    )


def _any_edge(network: RoadNetwork, node: int) -> Tuple[int, int]:
    """An arbitrary edge incident to ``node`` (fallback for isolated hubs)."""
    for neighbour, _ in network.neighbours(node):
        return (node, neighbour) if node < neighbour else (neighbour, node)
    u, v, _ = next(network.edges())
    return (u, v)


def _sample_attrs(
    rng: "np.random.RandomState",
    attr_choices: Optional[Dict[str, Sequence[str]]],
) -> Dict[str, str]:
    if not attr_choices:
        return {}
    return {
        key: values[rng.randint(0, len(values))]
        for key, values in sorted(attr_choices.items())
    }
