"""Spatial objects: model, placement generators, compact summaries."""

from repro.objects.bloom import BloomFilter
from repro.objects.model import ObjectError, ObjectSet, SpatialObject
from repro.objects.placement import place_clustered, place_uniform
from repro.objects.signature import Signature, SignatureScheme

__all__ = [
    "BloomFilter",
    "ObjectError",
    "ObjectSet",
    "Signature",
    "SignatureScheme",
    "SpatialObject",
    "place_clustered",
    "place_uniform",
]
