"""Superimposed-coding signatures [5].

The second compact object-abstract representation Section 3.4 cites:
each attribute value maps to a fixed-weight bit pattern (a *word
signature*); an Rnet's abstract is the OR of its objects' signatures.  A
query signature matches if all its bits are present — no false negatives,
tunable false positives.  Unlike a Bloom filter over object ids, signatures
summarise *attribute values*, so an attribute predicate can prune Rnets
whose objects are all of the wrong type.
"""

from __future__ import annotations

import hashlib
from typing import Dict


class SignatureScheme:
    """Shared geometry for signatures: width and bits-per-value."""

    def __init__(self, num_bits: int = 128, bits_per_value: int = 4) -> None:
        if num_bits < 8:
            raise ValueError("num_bits must be >= 8")
        if not 1 <= bits_per_value <= num_bits:
            raise ValueError("bits_per_value out of range")
        self.num_bits = num_bits
        self.bits_per_value = bits_per_value

    def value_signature(self, key: str, value: str) -> int:
        """Fixed-weight bit pattern for one attribute (key, value) pair."""
        bits = 0
        counter = 0
        token = f"{key}={value}".encode()
        while bin(bits).count("1") < self.bits_per_value:
            digest = hashlib.blake2b(
                token + counter.to_bytes(4, "little"), digest_size=8
            ).digest()
            bits |= 1 << (int.from_bytes(digest, "little") % self.num_bits)
            counter += 1
        return bits

    def object_signature(self, attrs: Dict[str, str]) -> int:
        """OR of all attribute-value signatures of one object."""
        sig = 0
        for key, value in attrs.items():
            sig |= self.value_signature(key, value)
        return sig


class Signature:
    """A mutable OR-accumulated signature bound to a scheme."""

    def __init__(self, scheme: SignatureScheme, bits: int = 0, count: int = 0) -> None:
        self.scheme = scheme
        self.bits = bits
        self.count = count

    def add_object(self, attrs: Dict[str, str]) -> None:
        """Superimpose one object's attributes."""
        self.bits |= self.scheme.object_signature(attrs)
        self.count += 1

    def may_contain(self, attrs: Dict[str, str]) -> bool:
        """True unless some required attribute bit is missing.

        An empty query (no attribute constraints) matches anything that has
        at least one object.
        """
        if self.count == 0:
            return False
        pattern = self.scheme.object_signature(attrs)
        return self.bits & pattern == pattern

    def union(self, other: "Signature") -> "Signature":
        """OR-combine two signatures (parent abstract from children)."""
        if other.scheme.num_bits != self.scheme.num_bits:
            raise ValueError("cannot union signatures of different widths")
        return Signature(
            self.scheme, self.bits | other.bits, self.count + other.count
        )

    def clear(self) -> None:
        """Reset to empty."""
        self.bits = 0
        self.count = 0

    @property
    def size_bytes(self) -> int:
        """Serialized size of the bitmap."""
        return self.scheme.num_bits // 8
