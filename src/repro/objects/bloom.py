"""Bloom filter [1].

Section 3.4 suggests Bloom filters as one compact representation of an
object abstract: a fixed bitmap answering "might this Rnet contain an object
of interest?" with no false negatives.  Hashing uses ``hashlib`` digests so
behaviour is stable across processes (Python's ``hash`` of strings is
salted per run).
"""

from __future__ import annotations

import hashlib
import math
from typing import Hashable, Iterable


class BloomFilter:
    """Fixed-size Bloom filter over hashable items.

    Parameters
    ----------
    num_bits:
        Bitmap width ``m``.
    num_hashes:
        Number of hash functions ``k``; defaults to the optimum for the
        expected load if ``expected_items`` is given, else 3.
    expected_items:
        Optional sizing hint used only to pick ``num_hashes``.
    """

    def __init__(
        self,
        num_bits: int = 256,
        num_hashes: int = 0,
        expected_items: int = 0,
    ) -> None:
        if num_bits < 8:
            raise ValueError("num_bits must be >= 8")
        self.num_bits = num_bits
        if num_hashes > 0:
            self.num_hashes = num_hashes
        elif expected_items > 0:
            # k* = (m/n) ln 2, clamped to something sane
            self.num_hashes = max(1, min(8, round(num_bits / expected_items * math.log(2))))
        else:
            self.num_hashes = 3
        self._bits = 0
        self._count = 0

    def __len__(self) -> int:
        return self._count

    def _positions(self, item: Hashable) -> Iterable[int]:
        # Double hashing over a stable digest: h_i = h1 + i*h2 (mod m).
        digest = hashlib.blake2b(repr(item).encode(), digest_size=16).digest()
        h1 = int.from_bytes(digest[:8], "little")
        h2 = int.from_bytes(digest[8:], "little") | 1
        for i in range(self.num_hashes):
            yield (h1 + i * h2) % self.num_bits

    def add(self, item: Hashable) -> None:
        """Insert an item."""
        for pos in self._positions(item):
            self._bits |= 1 << pos
        self._count += 1

    def __contains__(self, item: Hashable) -> bool:
        return all(self._bits >> pos & 1 for pos in self._positions(item))

    def union(self, other: "BloomFilter") -> "BloomFilter":
        """OR-combine two filters of identical geometry (Lemma 1 roll-up)."""
        if (self.num_bits, self.num_hashes) != (other.num_bits, other.num_hashes):
            raise ValueError("cannot union Bloom filters of different shapes")
        merged = BloomFilter(self.num_bits, self.num_hashes)
        merged._bits = self._bits | other._bits
        merged._count = self._count + other._count
        return merged

    def clear(self) -> None:
        """Remove everything (rebuild path for maintenance)."""
        self._bits = 0
        self._count = 0

    @property
    def fill_ratio(self) -> float:
        """Fraction of set bits — a false-positive-rate proxy."""
        return bin(self._bits).count("1") / self.num_bits

    @property
    def size_bytes(self) -> int:
        """Serialized size of the bitmap."""
        return self.num_bits // 8

    def false_positive_rate(self) -> float:
        """Expected FP rate for the current load: (1 - e^{-kn/m})^k."""
        if self._count == 0:
            return 0.0
        k, n, m = self.num_hashes, self._count, self.num_bits
        return (1.0 - math.exp(-k * n / m)) ** k
