"""Shortcuts: pre-computed border-to-border shortest paths per Rnet.

Definition 3: the shortcut ``S(b, b')`` between border nodes of an Rnet R
carries the shortest path between them and its distance.  Construction is
bottom-up per Lemma 2: finest Rnets run Dijkstra restricted to their own
edges; an upper-level Rnet runs Dijkstra over the *border graph* of its
children (children's border nodes linked by children's shortcuts), so a
level-i shortcut is represented as a composition of level-(i+1) shortcuts —
exactly the paper's ``S(n1, n3) = (S(n1, nd), S(nd, n3))`` example.

Why restricted distances stay exact at query time: every maximal within-R
segment of a *global* shortest path connects two border nodes of R and is,
by sub-path optimality, also the shortest within-R path between them
(the argument behind Lemma 3).  Hence Dijkstra over physical edges plus
shortcuts returns true network distances; the test suite checks this
equivalence exhaustively.

Lemma 4: a shortcut subsumed by a two-hop composition within the same Rnet
can be discarded; :func:`reduce_shortcuts` implements that storage
optimisation (ablation benches measure its effect).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.graph.network import RoadNetwork, edge_key
from repro.graph.shortest_path import dijkstra
from repro.core.rnet import Rnet, RnetHierarchy

#: Relative tolerance for distance comparisons (pure float arithmetic).
_REL_TOL = 1e-9


@dataclass(frozen=True)
class Shortcut:
    """A directed shortcut within one Rnet.

    ``via`` is the sequence of intermediate stops in the graph the shortcut
    was computed on: physical nodes for finest Rnets, child border nodes for
    upper levels (the recursive representation of Lemma 2).
    """

    source: int
    target: int
    rnet_id: int
    distance: float
    via: Tuple[int, ...] = ()


class ShortcutIndex:
    """All shortcuts of a hierarchy, indexed by Rnet and by (node, Rnet).

    The index keeps the *complete* border-to-border set per Rnet: upper
    levels and maintenance need exact all-pairs distances.  The Lemma-4
    reduced view (what the Route Overlay actually stores per node) is
    derived lazily per Rnet and invalidated on refresh.
    """

    def __init__(self, *, reduce: bool = True) -> None:
        self.reduce = reduce
        self._by_rnet: Dict[int, Dict[Tuple[int, int], Shortcut]] = {}
        self._reduced_cache: Dict[int, List[Shortcut]] = {}

    # ------------------------------------------------------------------
    # Population
    # ------------------------------------------------------------------
    def put(self, shortcut: Shortcut) -> None:
        """Insert or replace a shortcut."""
        rnet_map = self._by_rnet.setdefault(shortcut.rnet_id, {})
        rnet_map[(shortcut.source, shortcut.target)] = shortcut
        self._reduced_cache.pop(shortcut.rnet_id, None)

    def replace_rnet(self, rnet_id: int, shortcuts: Iterable[Shortcut]) -> None:
        """Replace the whole shortcut set of one Rnet."""
        self._by_rnet[rnet_id] = {
            (s.source, s.target): s for s in shortcuts
        }
        self._reduced_cache.pop(rnet_id, None)

    def drop_rnet(self, rnet_id: int) -> None:
        """Forget an Rnet's shortcuts entirely."""
        self._by_rnet.pop(rnet_id, None)
        self._reduced_cache.pop(rnet_id, None)

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def of_rnet(self, rnet_id: int) -> List[Shortcut]:
        """The complete shortcut set of one Rnet."""
        return list(self._by_rnet.get(rnet_id, {}).values())

    def stored_of_rnet(self, rnet_id: int) -> List[Shortcut]:
        """The set the Route Overlay stores: Lemma-4 reduced if enabled."""
        if not self.reduce:
            return self.of_rnet(rnet_id)
        cached = self._reduced_cache.get(rnet_id)
        if cached is None:
            cached = reduce_shortcuts(self.of_rnet(rnet_id))
            self._reduced_cache[rnet_id] = cached
        return cached

    def from_node(self, node: int, rnet_id: int) -> List[Shortcut]:
        """Stored shortcuts leaving ``node`` within one Rnet."""
        return [s for s in self.stored_of_rnet(rnet_id) if s.source == node]

    def lookup(self, source: int, target: int, rnet_id: int) -> Optional[Shortcut]:
        """The complete-set shortcut (source -> target), if present."""
        return self._by_rnet.get(rnet_id, {}).get((source, target))

    def distances_of_rnet(self, rnet_id: int) -> Dict[Tuple[int, int], float]:
        """Pair -> distance map of the complete set (maintenance diffs)."""
        return {
            pair: s.distance
            for pair, s in self._by_rnet.get(rnet_id, {}).items()
        }

    def total(self, *, stored: bool = False) -> int:
        """Number of (directed) shortcuts, complete or as-stored."""
        if stored:
            return sum(
                len(self.stored_of_rnet(rid)) for rid in self._by_rnet
            )
        return sum(len(m) for m in self._by_rnet.values())

    def size_bytes(self, *, stored: bool = True) -> int:
        """Serialized size of the shortcut records (as stored by default)."""
        from repro.storage.codecs import shortcut_size

        if stored:
            return sum(
                shortcut_size(len(s.via))
                for rid in self._by_rnet
                for s in self.stored_of_rnet(rid)
            )
        return sum(
            shortcut_size(len(s.via))
            for m in self._by_rnet.values()
            for s in m.values()
        )


def build_shortcuts(
    network: RoadNetwork,
    hierarchy: RnetHierarchy,
    *,
    reduce: bool = True,
) -> ShortcutIndex:
    """Compute every Rnet's shortcuts bottom-up (Lemma 2).

    ``reduce`` enables the Lemma-4 transitive reduction on the *stored*
    view (the paper's storage optimisation); the index itself always keeps
    the complete sets, which upper-level construction and maintenance need.
    The root Rnet has no border nodes and therefore no shortcuts.
    """
    index = ShortcutIndex(reduce=reduce)
    rnets = sorted(hierarchy.rnets(), key=lambda r: -r.level)  # deepest first
    for rnet in rnets:
        if rnet.is_root:
            continue
        shortcuts = compute_rnet_shortcuts(network, hierarchy, index, rnet)
        index.replace_rnet(rnet.rnet_id, shortcuts)
    return index


def compute_rnet_shortcuts(
    network: RoadNetwork,
    hierarchy: RnetHierarchy,
    index: ShortcutIndex,
    rnet: Rnet,
) -> List[Shortcut]:
    """All border-to-border shortcuts of one Rnet.

    Finest Rnets search their physical edges; internal Rnets search the
    border graph of their children, whose shortcuts must already be in
    ``index`` (build order is deepest level first).
    """
    if not rnet.border:
        return []
    if rnet.is_leaf:
        adjacency = _leaf_adjacency(network, rnet)
    else:
        adjacency = _border_graph_adjacency(hierarchy, index, rnet)
    shortcuts: List[Shortcut] = []
    borders = sorted(rnet.border)
    for source in borders:
        targets = set(borders) - {source}
        if not targets:
            continue
        dist, pred = dijkstra(adjacency, source, targets=targets)
        for target in targets:
            if target not in dist:
                continue  # not reachable within this Rnet
            via = _via_sequence(pred, source, target)
            shortcuts.append(
                Shortcut(source, target, rnet.rnet_id, dist[target], via)
            )
    return shortcuts


def _leaf_adjacency(network: RoadNetwork, rnet: Rnet):
    """Adjacency restricted to a finest Rnet's own edges."""
    edges = rnet.edges

    def adjacency(node: int):
        for neighbour, distance in network.neighbours(node):
            if edge_key(node, neighbour) in edges:
                yield neighbour, distance

    return adjacency


def _border_graph_adjacency(
    hierarchy: RnetHierarchy, index: ShortcutIndex, rnet: Rnet
):
    """Adjacency over child border nodes linked by child shortcuts."""
    out: Dict[int, List[Tuple[int, float]]] = {}
    for child_id in rnet.children:
        for shortcut in index.of_rnet(child_id):
            out.setdefault(shortcut.source, []).append(
                (shortcut.target, shortcut.distance)
            )

    def adjacency(node: int):
        return out.get(node, ())

    return adjacency


def _via_sequence(pred: Dict[int, int], source: int, target: int) -> Tuple[int, ...]:
    """Intermediate stops between source and target (exclusive)."""
    path = [target]
    while path[-1] != source:
        path.append(pred[path[-1]])
    path.reverse()
    return tuple(path[1:-1])


def reduce_shortcuts(shortcuts: List[Shortcut]) -> List[Shortcut]:
    """Lemma 4: drop shortcuts equal to a two-hop composition in-Rnet.

    A shortcut ``S(b, b'')`` is discarded when some border node ``b'`` of
    the same Rnet satisfies ``|S(b, b')| + |S(b', b'')| = |S(b, b'')|``:
    a search reaching ``b`` still reaches ``b''`` transitively at the same
    distance.  Reachability and distances over the remaining set are
    preserved (checked property-based in the tests).
    """
    by_pair: Dict[Tuple[int, int], Shortcut] = {
        (s.source, s.target): s for s in shortcuts
    }
    by_source: Dict[int, List[Shortcut]] = {}
    for s in shortcuts:
        by_source.setdefault(s.source, []).append(s)

    kept: List[Shortcut] = []
    for s in shortcuts:
        subsumed = False
        for first_hop in by_source.get(s.source, ()):
            if first_hop.target in (s.source, s.target):
                continue
            second = by_pair.get((first_hop.target, s.target))
            if second is None:
                continue
            combined = first_hop.distance + second.distance
            if math.isclose(combined, s.distance, rel_tol=_REL_TOL) or (
                combined < s.distance
            ):
                subsumed = True
                break
        if not subsumed:
            kept.append(s)
    return kept
