"""Association Directory (Section 3.4, Figure 7).

The Association Directory maps objects onto the network: a B+-tree keyed by
node IDs *and* Rnet IDs.  A node key yields the objects on the node's
incident edges with their offsets δ(o, n); an Rnet key yields the Rnet's
object abstract.  "Nodes and Rnets that do not have objects are not kept in
the B+-tree" — absence means *no object*, which is what lets ChoosePath
prune object-free Rnets with a single failed lookup.

Key encoding: node and Rnet ids share one integer key space by tagging the
low bit — ``node_id * 2`` for nodes, ``rnet_id * 2 + 1`` for Rnets (the
paper simply posits unique IDs; one tagged space keeps the single-B+-tree
design of Figure 7).

Several directories (different content providers / object types) can
coexist on the same network: construct one per object set with distinct
``name``s, optionally sharing one pager.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.graph.network import RoadNetwork
from repro.core.object_abstract import AbstractFactory, ObjectAbstract, exact_abstract
from repro.core.rnet import Rnet, RnetHierarchy
from repro.objects.model import ObjectSet, SpatialObject
from repro.queries.types import Predicate
from repro.storage.bptree import BPlusTree
from repro.storage.codecs import attrs_size, object_record_size
from repro.storage.pager import PageManager


class DirectoryError(Exception):
    """Raised on invalid object operations."""


def _node_key(node_id: int) -> int:
    return node_id * 2


def _rnet_key(rnet_id: int) -> int:
    return rnet_id * 2 + 1


class AssociationDirectory:
    """Disk-resident object directory for one object set on one network."""

    def __init__(
        self,
        pager: PageManager,
        network: RoadNetwork,
        hierarchy: RnetHierarchy,
        objects: Optional[ObjectSet] = None,
        *,
        abstract_factory: AbstractFactory = exact_abstract,
        name: str = "assoc-dir",
    ) -> None:
        self._pager = pager
        self.network = network
        self.hierarchy = hierarchy
        self.name = name
        self._abstract_factory = abstract_factory
        self._tree = BPlusTree(pager, name=name)
        self._objects = ObjectSet()
        if objects is not None:
            for obj in objects:
                self.insert(obj)
        pager.flush()

    # ------------------------------------------------------------------
    # Lookup (charged I/O) — the SearchObject primitive of the algorithms
    # ------------------------------------------------------------------
    def node_objects(self, node: int) -> List[Tuple[SpatialObject, float]]:
        """Objects associated with a node as (object, δ(o, node)) pairs."""
        entries = self._tree.get(_node_key(node))
        return list(entries) if entries else []

    def rnet_abstract(self, rnet_id: int) -> Optional[ObjectAbstract]:
        """The Rnet's abstract, or None when the Rnet holds no object."""
        return self._tree.get(_rnet_key(rnet_id))

    def rnet_may_contain(self, rnet_id: int, predicate: Predicate) -> bool:
        """SearchObject(AD, R): can R contain an object of interest?"""
        abstract = self.rnet_abstract(rnet_id)
        if abstract is None:
            return False
        return abstract.may_contain(predicate)

    # ------------------------------------------------------------------
    # Object updates (Section 5.1) — Route Overlay is never touched
    # ------------------------------------------------------------------
    def insert(self, obj: SpatialObject) -> None:
        """Associate an object with its edge's endpoints and Rnet chain."""
        u, v = obj.edge
        if not self.network.has_edge(u, v):
            raise DirectoryError(f"object {obj.object_id}: no edge {obj.edge}")
        distance = self.network.edge_distance(u, v)
        if obj.delta > distance + 1e-9:
            raise DirectoryError(
                f"object {obj.object_id}: offset beyond edge length"
            )
        self._objects.add(obj)
        self._attach_to_node(u, obj, obj.offset_from(u, distance))
        self._attach_to_node(v, obj, obj.offset_from(v, distance))
        leaf = self.hierarchy.leaf_of_edge(u, v)
        for rnet in self.hierarchy.ancestors(leaf.rnet_id):
            abstract = self._tree.get(_rnet_key(rnet.rnet_id))
            if abstract is None:
                abstract = self._abstract_factory()
            abstract.add(obj)
            self._tree.insert(
                _rnet_key(rnet.rnet_id), abstract, size=abstract.size_bytes
            )

    def delete(self, object_id: int) -> SpatialObject:
        """Remove an object from nodes and from the abstracts of its Rnets."""
        obj = self._objects.remove(object_id)
        u, v = obj.edge
        self._detach_from_node(u, object_id)
        self._detach_from_node(v, object_id)
        leaf = self.hierarchy.leaf_of_edge(u, v)
        for rnet in self.hierarchy.ancestors(leaf.rnet_id):
            key = _rnet_key(rnet.rnet_id)
            abstract = self._tree.get(key)
            if abstract is None:
                continue
            if not abstract.remove(obj):
                abstract = self._rebuild_abstract(rnet)
            if abstract.count == 0:
                self._tree.delete(key)
            else:
                self._tree.insert(key, abstract, size=abstract.size_bytes)
        return obj

    def update_attrs(self, object_id: int, attrs: Dict[str, str]) -> SpatialObject:
        """Change an object's attributes (abstracts are updated)."""
        old = self.delete(object_id)
        updated = SpatialObject(object_id, old.edge, old.delta, dict(attrs))
        self.insert(updated)
        return updated

    def relocate(self, object_id: int, edge: Tuple[int, int], delta: float) -> SpatialObject:
        """Move an object to a new position (delete + insert)."""
        old = self.delete(object_id)
        moved = SpatialObject(object_id, edge, delta, dict(old.attrs))
        self.insert(moved)
        return moved

    def rescale_edge(self, u: int, v: int, factor: float) -> int:
        """Scale offsets of objects on edge (u, v) after a distance change.

        Edge distances are metric values (length, time, toll); an object
        keeps its *relative* position along the segment, so offsets scale
        by ``new_distance / old_distance``.  Abstracts are unaffected.
        Returns the number of objects rescaled.
        """
        if factor <= 0:
            raise DirectoryError("rescale factor must be positive")
        hosted = self._objects.on_edge(u, v)
        if not hosted:
            return 0
        distance = self.network.edge_distance(u, v)
        replacements: Dict[int, SpatialObject] = {}
        for obj in hosted:
            scaled = SpatialObject(
                obj.object_id, obj.edge, obj.delta * factor, dict(obj.attrs)
            )
            self._objects.remove(obj.object_id)
            self._objects.add(scaled)
            replacements[obj.object_id] = scaled
        for node in (u, v):
            key = _node_key(node)
            entries = self._tree.get(key) or []
            rewritten = []
            for obj, delta in entries:
                fresh = replacements.get(obj.object_id)
                if fresh is None:
                    rewritten.append((obj, delta))
                else:
                    rewritten.append((fresh, fresh.offset_from(node, distance)))
            self._tree.insert(key, rewritten, size=self._entries_size(rewritten))
        return len(replacements)

    # ------------------------------------------------------------------
    # Bulk export / teardown
    # ------------------------------------------------------------------
    def peek_node_objects(self, node: int) -> List[Tuple[SpatialObject, float]]:
        """A node's (object, δ) entries, uncharged.

        The single-key counterpart of :meth:`export_entries`: bypasses the
        buffer and counts no I/O, for maintenance-time snapshot patching
        (:meth:`repro.core.frozen.FrozenRoad.apply_object_delta`).  Queries
        must use :meth:`node_objects` and pay the descent.
        """
        entries = self._tree.peek(_node_key(node))
        return list(entries) if entries else []

    def peek_rnet_abstract(self, rnet_id: int) -> Optional[ObjectAbstract]:
        """An Rnet's abstract (or None), uncharged — see
        :meth:`peek_node_objects`."""
        return self._tree.peek(_rnet_key(rnet_id))

    def export_entries(
        self,
    ) -> Tuple[
        Dict[int, List[Tuple[SpatialObject, float]]], Dict[int, ObjectAbstract]
    ]:
        """One charged leaf walk exporting the whole directory.

        Returns ``(node_entries, abstracts)``: per-node (object, δ) lists in
        stored order and per-Rnet object abstracts.  Used by
        :meth:`repro.core.framework.ROAD.freeze` to snapshot the directory.
        """
        node_entries: Dict[int, List[Tuple[SpatialObject, float]]] = {}
        abstracts: Dict[int, ObjectAbstract] = {}
        for key, value in self._tree.items():
            if key % 2 == 0:
                node_entries[key // 2] = list(value)
            else:
                abstracts[key // 2] = value
        return node_entries, abstracts

    def peek_entries(
        self,
    ) -> Tuple[
        Dict[int, List[Tuple[SpatialObject, float]]], Dict[int, ObjectAbstract]
    ]:
        """Uncharged :meth:`export_entries` — same payload, no I/O.

        The bulk member of the ``peek_*`` family: snapshot recompiles
        (:meth:`repro.core.frozen.FrozenRoad._recompile`) re-export the
        directory mid-maintenance, and charging that walk would leak
        maintenance overhead into the query-time I/O figures.
        """
        node_entries: Dict[int, List[Tuple[SpatialObject, float]]] = {}
        abstracts: Dict[int, ObjectAbstract] = {}
        for key, value in self._tree.peek_items():
            if key % 2 == 0:
                node_entries[key // 2] = list(value)
            else:
                abstracts[key // 2] = value
        return node_entries, abstracts

    def free_pages(self) -> int:
        """Release every page of the directory's B+-tree.

        Called by :meth:`repro.core.framework.ROAD.detach_objects`; the
        directory must not be used afterwards.  Returns pages freed.
        """
        return self._tree.destroy()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def objects(self) -> ObjectSet:
        """The authoritative object collection (no I/O charged)."""
        return self._objects

    @property
    def object_count(self) -> int:
        """Number of associated objects."""
        return len(self._objects)

    @property
    def page_count(self) -> int:
        """Pages allocated to the directory."""
        return self._tree.page_count

    @property
    def size_bytes(self) -> int:
        """On-disk footprint."""
        return self._tree.size_bytes

    def get_object(self, object_id: int) -> SpatialObject:
        """Object by id (no I/O charged; for result materialisation)."""
        return self._objects.get(object_id)

    # ------------------------------------------------------------------
    # Internal
    # ------------------------------------------------------------------
    def _attach_to_node(self, node: int, obj: SpatialObject, delta: float) -> None:
        key = _node_key(node)
        entries = self._tree.get(key) or []
        entries.append((obj, delta))
        self._tree.insert(key, entries, size=self._entries_size(entries))

    def _detach_from_node(self, node: int, object_id: int) -> None:
        key = _node_key(node)
        entries = self._tree.get(key) or []
        entries = [(o, d) for o, d in entries if o.object_id != object_id]
        if entries:
            self._tree.insert(key, entries, size=self._entries_size(entries))
        else:
            self._tree.delete(key)

    @staticmethod
    def _entries_size(entries: List[Tuple[SpatialObject, float]]) -> int:
        return sum(
            object_record_size(attrs_size(obj.attrs)) for obj, _ in entries
        )

    def _rebuild_abstract(self, rnet: Rnet) -> ObjectAbstract:
        """Recount an Rnet's abstract from the authoritative object list.

        Needed for fixed-size abstracts (Bloom, signature) that cannot
        delete members.
        """
        abstract = self._abstract_factory()
        for obj in self._objects:
            leaf = self.hierarchy.leaf_of_edge(*obj.edge)
            if any(a.rnet_id == rnet.rnet_id for a in self.hierarchy.ancestors(leaf.rnet_id)):
                abstract.add(obj)
        return abstract
