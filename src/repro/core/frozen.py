"""Compiled in-memory fast path: the :class:`FrozenRoad`.

The charged path (:mod:`repro.core.search` over
:class:`~repro.core.route_overlay.RouteOverlay`) pays a simulated disk
stack on every pop — a B+-tree descent plus record-page reads per
``shortcut_tree`` load — which is the right cost model for reproducing the
paper's I/O figures but the wrong hot path for serving throughput.
``freeze()`` compiles the Route Overlay and any number of Association
Directories into CSR-style parallel arrays so that kNNSearch / RangeSearch
run with **zero pager traffic** and no per-pop object allocation:

* every node's shortcut tree is flattened into a preorder entry array in
  the exact order the charged stack walk visits it (roots and children
  reversed, matching ``stack.pop()``), with a ``next`` pointer per entry
  that skips its subtree — so the "bypass Rnet R via shortcuts" decision
  becomes a single jump;
* shortcut targets/weights, leaf-level physical edges, non-border local
  edges and per-node object associations live in flat parallel arrays
  addressed by spans (CSR);
* each Rnet's object abstract is snapshotted (deep-copied) at freeze time;
  a query predicate is compiled once into a per-Rnet "may contain" bitmask
  and a per-object-slot match mask, both memoised per predicate and shared
  across every query on this snapshot (the batch layer's predicate cache).

A serving node attaching several content providers compiles **all of
them into one snapshot**: ``freeze(directories=["a", "b", ...])``
(default: every attached directory) builds the shortcut/edge entry
arrays — the part of the snapshot that scales with the network — exactly
once, while each directory contributes only its object spans, abstract
slots and cached predicate masks.  ``execute(query, directory=...)``
routes to the right span set, and one :meth:`FrozenRoad.apply` call
keeps *every* compiled directory current from a single
:class:`~repro.core.maintenance.MaintenanceReport`.

Because the compiled traversal replays the charged expansion push-for-push
(same push order, same shared sequence counter, same tie-breaking), a
``FrozenRoad`` returns *byte-identical* results to the charged path on the
same snapshot — the equivalence suite asserts exactly that.

A ``FrozenRoad`` starts as a point-in-time snapshot, but it does not have
to be thrown away on maintenance: :meth:`FrozenRoad.apply` consumes the
:class:`~repro.core.maintenance.MaintenanceReport` of a live update and
**delta-patches** the compiled arrays — rewriting only the CSR spans of
the dirty Route Overlay entries (shortcut targets/weights, edge weights)
and the object spans / abstract slots touched by object churn.  When the
report shows a structural change (border promotion/demotion, edge
addition/removal) or a span whose new contents cannot fit in place, the
patcher falls back to a full in-place recompile — so an ``apply`` always
leaves the snapshot byte-identical to a fresh ``freeze()``, at a cost
that scales with the perturbation in the common case.

The physical representation of the compiled arrays is pluggable (see
:mod:`repro.core.frozen_backends`): ``backend="list"`` keeps pre-boxed
Python lists (fastest pure-Python queries), ``"compact"`` stores the same
layout in stdlib typed buffers at ~4x less resident memory, and
``"numpy"`` adds zero-copy vectorised span relaxation on top of the
compact buffers.  All three serve byte-identical answers and support the
patch lifecycle; pick per freeze, per engine, or via ``REPRO_BACKEND``.
"""

from __future__ import annotations

import copy
import heapq
import os
import sys
import warnings
import weakref
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.core.aggregate import aggregate_knn_generic
from repro.core.multi_source import (
    Expand,
    ExpandFlat,
    bucket_entries,
    multi_source_objects,
    normalize_breaks,
    od_entries,
    od_matrix_generic,
)
from repro.core.frozen_backends import (
    BoolMask,
    FloatVector,
    IntVector,
    ListBackend,
    resolve_backend,
)
from repro.core.shm_arrays import ShmVector
from repro.core.search import SearchStats, _Frontier
from repro.core.shortcut_tree import ShortcutTree, ShortcutTreeEntry
from repro.objects.model import SpatialObject
from repro.queries.types import (
    ANY,
    AggregateKNNQuery,
    KNNQuery,
    ODMatrixEntry,
    ODMatrixQuery,
    Predicate,
    RangeQuery,
    ResultEntry,
    RouteKNNQuery,
    ServiceAreaEntry,
    ServiceAreaQuery,
)
from repro.serving.dispatch import (
    DEFAULT_DIRECTORY,
    BatchContext,
    QueryExecutor,
    UnknownDirectoryError,
    register_handler,
)

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from repro.core.framework import ROAD
    from repro.core.maintenance import MaintenanceReport
    from repro.core.object_abstract import ObjectAbstract

#: One directory's ``export_entries()``/``peek_entries()`` payload.
_DirectoryExport = Tuple[
    Dict[int, List[Tuple[SpatialObject, float]]], Dict[int, "ObjectAbstract"]
]
#: ``_plan_tree_patch``'s write plan: (node index, per-entry shortcut
#: (target, weight) lists, per-entry edge lists, local-edge list).
_TreePatch = Tuple[
    int,
    List[List[Tuple[int, float]]],
    List[List[Tuple[int, float]]],
    List[Tuple[int, float]],
]

#: Heap items carry one signed code instead of a (kind, id) pair: nodes are
#: their dense index (>= 0), objects are ``~object_id`` (< 0).  The heap
#: orders by (distance, seq) exactly like ``search._Frontier`` — seq is
#: unique, so the code is never compared.
_INF = float("inf")

#: Distinct predicates whose compiled masks are retained per (directory,
#: mask-kind) cache.  A long-lived server seeing high-cardinality
#: predicates (per-user filters) would otherwise grow the mask caches
#: without bound; eviction is LRU (hits re-insert the key, so the oldest
#: dict entry is always the coldest) — an evicted predicate recompiles in
#: O(rnets + objects) on its next use, and each eviction counts into the
#: per-directory ``mask_evictions`` surfaced by ``memory_stats()``.
#: Override per snapshot via ``freeze(mask_budget=...)``.
MAX_CACHED_PREDICATES = 128

#: Smallest span the numpy backend relaxes through vectorised slice
#: arithmetic; shorter spans (the typical road-network degree) take the
#: scalar path — numpy slicing overhead only amortises past this width.
VEC_MIN_SPAN = 8


class FrozenRoadError(Exception):
    """Raised on queries against nodes missing from the frozen snapshot."""


def _resolve_mask_budget(mask_budget: Optional[int]) -> int:
    """Default and validate a mask-cache budget.

    Shared by ``__init__`` and ``from_parts`` so every construction path
    — freeze, snapshot load, worker attach — enforces the same floor: a
    budget below 1 would make the LRU eviction loop pop from an empty
    cache on the first cached predicate.
    """
    budget = MAX_CACHED_PREDICATES if mask_budget is None else mask_budget
    if budget < 1:
        raise ValueError(f"mask_budget must be >= 1, got {budget}")
    return budget


def _flatten_tree_entries(
    roots: List[ShortcutTreeEntry],
) -> Tuple[List[ShortcutTreeEntry], List[int]]:
    """Flatten a shortcut tree the way the charged stack walk visits it.

    Returns ``(entries, nexts)``: the entries in preorder with roots and
    children reversed (matching ``stack.pop()``), and per entry the
    *relative* index just past its subtree (the subtree-skip pointer).
    This is the single source of the compiled layout contract — both the
    full compile and the delta-patch planner consume it, so they can never
    drift apart.
    """
    entries: List[ShortcutTreeEntry] = []
    nexts: List[int] = []

    def emit(entry: ShortcutTreeEntry) -> None:
        i = len(entries)
        entries.append(entry)
        nexts.append(0)
        # The charged walk pops a stack, so children run in reverse.
        for child in reversed(entry.children):
            emit(child)
        nexts[i] = len(entries)

    for root in reversed(roots):
        emit(root)
    return entries, nexts


class _DirectoryState:
    """One compiled Association Directory inside a snapshot.

    The shortcut/edge entry arrays live on the snapshot and are shared by
    every directory; a directory contributes only its object spans
    (CSR over the snapshot's node order), its per-Rnet-slot abstract
    snapshots, and its per-predicate mask caches — the parts that differ
    between providers serving the same network.
    """

    __slots__ = (
        "name",
        "obj_start",
        "obj_id",
        "obj_delta",
        "obj_ref",
        "abstracts",
        "rnet_masks",
        "obj_masks",
        "mask_evictions",
        "views",
        "np_views",
    )

    def __init__(self, name: str) -> None:
        self.name = name
        self.obj_start: IntVector = []
        self.obj_id: IntVector = []
        self.obj_delta: FloatVector = []
        self.obj_ref: List[SpatialObject] = []
        #: Deep-copied abstract per compiled Rnet slot (None = no objects).
        self.abstracts: List[Optional["ObjectAbstract"]] = []
        self.rnet_masks: Dict[Predicate, BoolMask] = {}
        self.obj_masks: Dict[Predicate, bytearray] = {}
        #: Masks dropped by the per-directory LRU budget since compile.
        self.mask_evictions = 0
        #: Cached (obj_start, obj_id, obj_delta) query views; dropped with
        #: the snapshot's shared views before any patch.
        self.views: Optional[Tuple[Any, Any, Any]] = None
        self.np_views: Optional[Tuple[Any, Any]] = None


class FrozenRoad(QueryExecutor):
    """A read-only, in-memory compilation of one ROAD + its directories.

    Construct via :meth:`FrozenRoad.from_road` or
    :meth:`repro.core.framework.ROAD.freeze`.  Queries mirror the facade:
    :meth:`knn`, :meth:`range`, :meth:`aggregate_knn`,
    :meth:`iter_nearest_objects`, :meth:`execute`, and the batch entry
    point :meth:`execute_many`; every query takes ``directory=`` to pick
    one of the compiled directories (None = :attr:`default_directory`).
    After live maintenance, :meth:`apply` delta-patches the snapshot —
    all compiled directories at once — from the update's
    MaintenanceReport.
    """

    dispatch_engine = "frozen"

    def __init__(
        self,
        trees: Dict[int, "ShortcutTree"],
        node_entries: Optional[Dict[int, List[Tuple[SpatialObject, float]]]] = None,
        abstracts: Optional[Dict[int, "ObjectAbstract"]] = None,
        *,
        directory_name: str = DEFAULT_DIRECTORY,
        directories: Optional[Dict[str, _DirectoryExport]] = None,
        default_directory: Optional[str] = None,
        backend: Optional[Union[str, ListBackend]] = None,
        mask_budget: Optional[int] = None,
    ) -> None:
        """Compile ``trees`` plus one or more exported directories.

        ``directories`` maps directory name to an ``export_entries()``
        pair ``(node_entries, abstracts)``; insertion order becomes the
        compiled order.  The legacy single-directory form —
        positional ``node_entries``/``abstracts`` under ``directory_name``
        — is kept for callers that assemble exports by hand.
        """
        if directories is None:
            if node_entries is None or abstracts is None:
                raise ValueError(
                    "pass directories={name: (node_entries, abstracts)} "
                    "or the legacy (node_entries, abstracts) pair"
                )
            directories = {directory_name: (node_entries, abstracts)}
        if not directories:
            raise ValueError("directories must compile at least one directory")
        if default_directory is None:
            default_directory = (
                DEFAULT_DIRECTORY
                if DEFAULT_DIRECTORY in directories
                else next(iter(directories))
            )
        if default_directory not in directories:
            raise UnknownDirectoryError(
                self, default_directory, directories
            )
        self._default_directory = default_directory
        #: The array backend this snapshot compiles into — a name from
        #: :data:`repro.core.frozen_backends.BACKENDS`, an instance, or
        #: None for the REPRO_BACKEND/default selection.  Recompiles keep
        #: the same backend for the snapshot's whole lifetime.
        self._backend = resolve_backend(backend)
        #: Cached-predicate budget per (directory, mask-kind) cache; the
        #: LRU eviction counter lives on each directory state.
        self._mask_budget = _resolve_mask_budget(mask_budget)
        #: Path of the snapshot file this instance was loaded from (set by
        #: :func:`repro.core.serialize.load_snapshot`); surfaced by
        #: :meth:`memory_stats`.
        self._snapshot_path: Optional[str] = None
        #: Weak reference to the live ROAD this snapshot was compiled from
        #: (set by :meth:`from_road`); :meth:`apply` patches against it.
        #: Weak so a snapshot never pins the O(network) charged structures
        #: — a server that drops the ROAD reclaims them, and a later
        #: no-road ``apply`` raises :class:`FrozenRoadError` instead.
        self._source: Optional["weakref.ReferenceType[ROAD]"] = None
        self._compile(trees, directories)

    def _compile(
        self,
        trees: Dict[int, "ShortcutTree"],
        directories: Dict[str, _DirectoryExport],
    ) -> None:
        """(Re)build every compiled array from a fresh export."""
        # --- node id space -------------------------------------------------
        self.node_ids: List[int] = sorted(trees)
        self._index: Dict[int, int] = {
            node: i for i, node in enumerate(self.node_ids)
        }
        n = len(self.node_ids)
        # --- Rnet id space (slots shared by every directory) ---------------
        self._rnet_index: Dict[int, int] = {}
        # --- compiled shortcut-tree entries (CSR) --------------------------
        # build with plain lists, then freeze into typed arrays
        e_start: List[int] = [0] * (n + 1)
        e_rnet: List[int] = []
        e_next: List[int] = []
        sc_span: List[int] = [0]
        sc_target: List[int] = []
        sc_weight: List[float] = []
        ed_span: List[int] = [0]
        ed_target: List[int] = []
        ed_weight: List[float] = []
        local_start: List[int] = [0] * (n + 1)
        local_target: List[int] = []
        local_weight: List[float] = []

        index = self._index

        def rnet_slot(rnet_id: int) -> int:
            slot = self._rnet_index.get(rnet_id)
            if slot is None:
                slot = len(self._rnet_index)
                self._rnet_index[rnet_id] = slot
            return slot

        for idx, node in enumerate(self.node_ids):
            base = len(e_rnet)
            e_start[idx] = base
            tree = trees[node]
            if tree.roots:
                flat, nexts = _flatten_tree_entries(tree.roots)
                for entry, nxt in zip(flat, nexts):
                    e_rnet.append(rnet_slot(entry.rnet_id))
                    e_next.append(base + nxt)
                    for shortcut in entry.shortcuts:
                        sc_target.append(index[shortcut.target])
                        sc_weight.append(shortcut.distance)
                    for neighbour, weight in entry.edges:
                        ed_target.append(index[neighbour])
                        ed_weight.append(weight)
                    sc_span.append(len(sc_target))
                    ed_span.append(len(ed_target))
            else:
                for neighbour, weight in tree.local_edges:
                    local_target.append(index[neighbour])
                    local_weight.append(weight)
            local_start[idx + 1] = len(local_target)
        e_start[n] = len(e_rnet)
        # every entry's spans end where the next entry's begin (emission
        # order == entry index order), so one starts-array with a sentinel
        # addresses both
        assert len(sc_span) == len(e_rnet) + 1
        assert len(ed_span) == len(e_rnet) + 1

        # The arrays are staged as plain lists, then materialised through
        # the selected backend: "list" keeps the pre-boxed lists (hot-loop
        # indexing returns existing objects), "compact"/"numpy" pack the
        # same layout into stdlib typed buffers.  All backends keep the
        # arrays mutable so :meth:`apply` can rewrite dirty spans in place
        # with slice assignments.
        B = self._backend
        self._entry_start = B.int_array(e_start)
        self._entry_rnet = B.int_array(e_rnet)
        self._entry_next = B.int_array(e_next)
        self._sc_start = B.int_array(sc_span)
        self._sc_target = B.int_array(sc_target)
        self._sc_weight = B.float_array(sc_weight)
        self._ed_start = B.int_array(ed_span)
        self._ed_target = B.int_array(ed_target)
        self._ed_weight = B.float_array(ed_weight)
        self._local_start = B.int_array(local_start)
        self._local_target = B.int_array(local_target)
        self._local_weight = B.float_array(local_weight)

        # Rnet ids in slot order, for the per-directory abstract snapshots.
        slot_rnets = sorted(self._rnet_index, key=self._rnet_index.get)

        # --- per-directory state: object spans + abstracts + masks ---------
        # Every directory shares the entry/shortcut/edge arrays compiled
        # above (the O(network·levels) bulk of the snapshot) and adds only
        # its own object CSR, abstract slots and predicate-mask caches.
        self._dirs: Dict[str, _DirectoryState] = {}
        for name, (node_entries, abstracts) in directories.items():
            state = _DirectoryState(name)
            obj_start: List[int] = [0] * (n + 1)
            obj_id: List[int] = []
            obj_delta: List[float] = []
            obj_ref: List[SpatialObject] = []
            for idx, node in enumerate(self.node_ids):
                for obj, delta in node_entries.get(node, ()):
                    obj_id.append(obj.object_id)
                    obj_delta.append(delta)
                    obj_ref.append(obj)
                obj_start[idx + 1] = len(obj_id)
            state.obj_start = B.int_array(obj_start)
            state.obj_id = B.int_array(obj_id)
            state.obj_delta = B.float_array(obj_delta)
            #: Object references stay a Python list in every backend — the
            #: query path needs the objects themselves for mask compiles.
            state.obj_ref = obj_ref
            state.abstracts = [
                copy.deepcopy(abstracts[rnet_id])
                if abstracts.get(rnet_id) is not None
                else None
                for rnet_id in slot_rnets
            ]
            self._dirs[name] = state

        # Cached array views for the query loops (memoryviews over the
        # compact buffers; the lists themselves for the list backend) and
        # zero-copy numpy views (numpy backend only).  Both are built
        # lazily per snapshot and dropped before any patch — a live
        # buffer export would block the resizing object splices.
        self._views: Optional[Tuple[Any, ...]] = None
        self._np_views: Optional[Tuple[Any, ...]] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_road(
        cls,
        road: "ROAD",
        *,
        directory: Optional[str] = None,
        directories: Optional[Sequence[str]] = None,
        default: Optional[str] = None,
        backend: Optional[Union[str, ListBackend]] = None,
        mask_budget: Optional[int] = None,
    ) -> "FrozenRoad":
        """Compile a built :class:`~repro.core.framework.ROAD`.

        Reads the Route Overlay's stored trees (uncharged bulk export)
        once, plus each selected Association Directory's node entries and
        Rnet abstracts (one charged leaf walk per directory — freezing is
        a build-time operation).  ``directories`` selects which attached
        directories to compile (default: **all** of them, sharing the
        entry arrays); ``directory`` is the single-directory shorthand.
        ``default`` picks the directory ``directory=None`` queries route
        to (default: ``"objects"`` when compiled, else the first name).
        ``backend`` selects the compiled array representation (see
        :mod:`repro.core.frozen_backends`).
        """
        if directory is not None and directories is not None:
            raise ValueError("pass directory= or directories=, not both")
        if directory is not None:
            names: List[str] = [directory]
        elif directories is not None:
            names = list(directories)
            if not names:
                raise ValueError(
                    "directories must name at least one attached directory"
                )
        else:
            names = list(road.directory_names)
            if not names:
                raise UnknownDirectoryError(road, DEFAULT_DIRECTORY, names)
        exports: Dict[str, _DirectoryExport] = {}
        for name in names:
            if name in exports:
                raise ValueError(f"directory {name!r} listed twice")
            # road.directory raises UnknownDirectoryError on unknown names.
            exports[name] = road.directory(name).export_entries()
        trees = dict(road.overlay.iter_trees())
        frozen = cls(
            trees,
            directories=exports,
            default_directory=default,
            backend=backend,
            mask_budget=mask_budget,
        )
        frozen._source = weakref.ref(road)
        return frozen

    @classmethod
    def from_parts(
        cls,
        *,
        backend: Union[str, ListBackend],
        arrays: Dict[str, Any],
        node_ids: Sequence[int],
        rnet_slots: Sequence[int],
        directories: Dict[
            str, Tuple[List[SpatialObject], List[Optional["ObjectAbstract"]]]
        ],
        default_directory: str,
        mask_budget: Optional[int] = None,
        snapshot_path: Optional[str] = None,
    ) -> "FrozenRoad":
        """Assemble a snapshot from already-materialised arrays — no compile.

        The constructor behind both cold-start paths: a snapshot file
        loaded by :func:`repro.core.serialize.load_snapshot` and a worker
        process attaching a primary's shared-memory segments
        (:meth:`from_manifest`).  ``arrays`` is keyed exactly like
        :meth:`_arrays` (directory-prefixed object arrays); ``rnet_slots``
        lists Rnet ids in compiled slot order; each directory contributes
        its ``(obj_ref, abstracts-in-slot-order)`` pair.  The instance has
        no source ROAD — :meth:`apply` needs one passed explicitly — and
        empty mask caches (predicates recompile lazily, as after a fresh
        freeze).
        """
        frozen = cls.__new__(cls)
        frozen._backend = resolve_backend(backend)
        frozen._mask_budget = _resolve_mask_budget(mask_budget)
        frozen._snapshot_path = snapshot_path
        frozen._source = None
        frozen.node_ids = list(node_ids)
        frozen._index = {node: i for i, node in enumerate(frozen.node_ids)}
        frozen._rnet_index = {
            rnet_id: slot for slot, rnet_id in enumerate(rnet_slots)
        }
        frozen._entry_start = arrays["entry_start"]
        frozen._entry_rnet = arrays["entry_rnet"]
        frozen._entry_next = arrays["entry_next"]
        frozen._sc_start = arrays["sc_start"]
        frozen._sc_target = arrays["sc_target"]
        frozen._sc_weight = arrays["sc_weight"]
        frozen._ed_start = arrays["ed_start"]
        frozen._ed_target = arrays["ed_target"]
        frozen._ed_weight = arrays["ed_weight"]
        frozen._local_start = arrays["local_start"]
        frozen._local_target = arrays["local_target"]
        frozen._local_weight = arrays["local_weight"]
        if not directories:
            raise ValueError("directories must compile at least one directory")
        frozen._dirs = {}
        prefixed = len(directories) > 1
        for name, (obj_ref, abstracts) in directories.items():
            prefix = f"{name}:" if prefixed else ""
            state = _DirectoryState(name)
            state.obj_start = arrays[f"{prefix}obj_start"]
            state.obj_id = arrays[f"{prefix}obj_id"]
            state.obj_delta = arrays[f"{prefix}obj_delta"]
            state.obj_ref = list(obj_ref)
            state.abstracts = list(abstracts)
            frozen._dirs[name] = state
        if default_directory not in frozen._dirs:
            raise UnknownDirectoryError(
                frozen, default_directory, frozen._dirs
            )
        frozen._default_directory = default_directory
        frozen._views = None
        frozen._np_views = None
        return frozen

    def export_parts(self) -> Dict[str, Any]:
        """The snapshot's assembly state, keyed like :meth:`from_parts`.

        Everything a cold process needs to reconstruct this snapshot
        without recompiling: the compiled arrays (by their
        directory-prefixed names), node/Rnet id spaces in slot order, the
        default directory, the mask-cache budget, and each directory's
        ``(obj_ref, abstracts)`` pair.  The arrays are the live backend
        objects, not copies — consumers serialise or re-home them
        (:func:`repro.core.serialize.save_snapshot`, :meth:`shm_manifest`)
        rather than mutate.
        """
        slot_order = sorted(
            self._rnet_index, key=lambda rnet: self._rnet_index[rnet]
        )
        return {
            "arrays": self._arrays(),
            "node_ids": list(self.node_ids),
            "rnet_slots": slot_order,
            "default_directory": self._default_directory,
            "mask_budget": self._mask_budget,
            "directories": {
                name: (list(state.obj_ref), list(state.abstracts))
                for name, state in self._dirs.items()
            },
        }

    def shm_manifest(self) -> Dict[str, Any]:
        """A picklable handle another process turns into this snapshot.

        Only meaningful for ``backend="shm"`` snapshots: the manifest
        carries each compiled array's segment name + typecode (attached
        zero-copy on the other side) plus the Python-side state the
        segments cannot carry — node/Rnet id spaces, object references
        and abstract snapshots per directory.  Feed to
        :meth:`from_manifest` in the worker.
        """
        parts = self.export_parts()
        segments: Dict[str, Tuple[str, str]] = {}
        for key, arr in parts.pop("arrays").items():
            if not isinstance(arr, ShmVector):
                raise FrozenRoadError(
                    "shm_manifest() needs a backend='shm' snapshot; "
                    f"array {key!r} of this {self.backend!r} snapshot is "
                    "not shared"
                )
            segments[key] = (arr.segment_name, arr.typecode)
        parts["segments"] = segments
        return parts

    @classmethod
    def from_manifest(cls, manifest: Dict[str, Any]) -> "FrozenRoad":
        """Attach a primary's shared snapshot in this process (zero-copy).

        The inverse of :meth:`shm_manifest`: every compiled array is an
        attach to the primary's named segment — the primary's patch
        writes are visible here immediately — while object references and
        abstracts are this process's own copies (the process pool's sync
        protocol refreshes them on object churn).  The attachment is
        read-only in practice: resizing splices are refused off-owner,
        and the pool never routes ``apply`` to workers.  Call
        :meth:`close` to drop the attachments; the primary alone unlinks.
        """
        arrays: Dict[str, Any] = {
            key: ShmVector.attach(segment, typecode)
            for key, (segment, typecode) in manifest["segments"].items()
        }
        return cls.from_parts(
            backend="shm",
            arrays=arrays,
            node_ids=manifest["node_ids"],
            rnet_slots=manifest["rnet_slots"],
            directories=manifest["directories"],
            default_directory=manifest["default_directory"],
            mask_budget=manifest["mask_budget"],
        )

    def close(self) -> None:
        """Release backend resources this snapshot holds; idempotent.

        Shared-memory snapshots drop their segment mappings (the owning
        primary also unlinks them — workers merely detach); mmap-loaded
        snapshots close the mapped file.  Heap backends have nothing to
        release.  The snapshot must not serve queries afterwards.
        """
        self._drop_views()
        for state in self._dirs.values():
            for mask in state.rnet_masks.values():
                release_mask = getattr(mask, "close", None)
                if release_mask is not None:
                    release_mask()
            state.rnet_masks.clear()
            state.obj_masks.clear()
        for arr in self._arrays().values():
            release = getattr(arr, "close", None)
            if release is not None:
                release()
        backend_close = getattr(self._backend, "close", None)
        if backend_close is not None:
            backend_close()

    def refresh_views(self) -> None:
        """Drop cached array views; the next query rebuilds them fresh.

        The process-pool sync hook for workers attached to a primary's
        shared segments: after the primary patches (and possibly
        resizes) the shared arrays, cached memoryviews can be stale —
        the shm vectors re-derive their payload views lazily once the
        stale caches are gone.
        """
        self._drop_views()

    def sync_directories(
        self,
        directories: Dict[
            str, Tuple[List[SpatialObject], List[Optional["ObjectAbstract"]]]
        ],
    ) -> None:
        """Adopt a primary's post-churn directory state (pool sync).

        The shared segments already carry the primary's patched object
        spans; what they cannot carry is the Python-side state — the
        object references queries return and the abstract snapshots that
        drive Rnet pruning.  Replaces both per directory, invalidates
        the compiled predicate masks (they summarise the old abstracts),
        and drops cached array views so the next query re-reads the
        (possibly resized) shared arrays.  Directories this snapshot
        never compiled are ignored, mirroring :meth:`apply_object_delta`.
        """
        for name, (obj_ref, abstracts) in directories.items():
            state = self._dirs.get(name)
            if state is None:
                continue
            state.obj_ref = list(obj_ref)
            state.abstracts = list(abstracts)
            for mask in state.rnet_masks.values():
                release_mask = getattr(mask, "close", None)
                if release_mask is not None:
                    release_mask()
            state.rnet_masks.clear()
            state.obj_masks.clear()
        self._drop_views()

    @property
    def backend(self) -> str:
        """Name of the array backend this snapshot is compiled into."""
        return self._backend.name

    # ------------------------------------------------------------------
    # Incremental maintenance: delta-patch from MaintenanceReports
    # ------------------------------------------------------------------
    def apply(
        self, report: "MaintenanceReport", road: Optional["ROAD"] = None
    ) -> str:
        """Patch the snapshot after one live update; returns the outcome.

        ``report`` is the :class:`~repro.core.maintenance.MaintenanceReport`
        of a maintenance call on the live ``road`` (defaults to the ROAD
        this snapshot was frozen from).  Dirty Route Overlay entries have
        their shortcut/edge spans rewritten in place — once, however many
        directories are compiled; the object spans of **every** compiled
        directory affected by the update are refreshed from the live
        directories.  Object churn goes through
        :meth:`apply_object_delta`.  When the report is structural
        (border promotions/demotions, edge addition/removal) or a new span
        cannot fit in place, the whole snapshot is recompiled — still in
        place, so existing references keep serving.

        Returns ``"patched"`` or ``"recompiled"``; either way the snapshot
        is byte-identical to a fresh ``road.freeze()`` afterwards.

        Concurrency caveat: patching mutates the arrays a running
        traversal indexes, so finish (or drop) any in-flight
        :meth:`iter_nearest_objects` iterator before calling ``apply`` —
        a paused iterator resumed across a patch may mix pre- and
        post-update state or raise.  Completed queries and future queries
        are unaffected; a serving loop applies updates between batches.
        """
        self._require_patchable()
        if report.kind in ("insert_object", "delete_object", "update_object"):
            # Object deltas manage the source requirement and view caches
            # themselves: churn in a directory this snapshot never
            # compiled is a no-op that needs neither a live road nor a
            # view rebuild.
            return self.apply_object_delta(report, road)
        road = self._require_source(road)
        self._drop_views()
        if report.structural:
            self._recompile(road)
            return "recompiled"
        patches: List[_TreePatch] = []
        for node in sorted(report.dirty_nodes):
            idx = self._index.get(node)
            if idx is None:
                self._recompile(road)
                return "recompiled"
            # Read back (uncharged) the tree refresh_nodes just stored —
            # the overlay already rebuilt it during the live update.
            tree = road.overlay.stored_tree(node)
            patch = self._plan_tree_patch(idx, tree)
            if patch is None:  # span growth/shrink or reshaped tree
                self._recompile(road)
                return "recompiled"
            patches.append(patch)
        if report.edge is not None:
            # All-or-nothing: every compiled directory must still be
            # attached before any span is rewritten — a raise after the
            # tree patches landed would leave the snapshot half-patched
            # (new shortcut weights, stale object deltas) yet serving.
            for name in self._dirs:
                road.directory(name)
        for patch in patches:
            self._write_tree_patch(patch)
        if report.edge is not None:
            # Objects hosted on the edge were rescaled by the framework —
            # in every attached directory; refresh their (object, δ)
            # spans at both endpoints, per compiled directory.
            endpoints = [n for n in report.edge if n in self._index]
            for state in self._dirs.values():
                self._rebuild_node_objects(road, endpoints, state)
        return "patched"

    def apply_object_delta(
        self, report: "MaintenanceReport", road: Optional["ROAD"] = None
    ) -> str:
        """Patch the snapshot after one object insertion or deletion.

        Rewrites the object spans of the host edge's endpoints and the
        abstract slots (plus compiled per-predicate masks) of the touched
        Rnet chain; the shortcut-tree arrays are untouched, mirroring the
        Section 5.1 property that object churn never reaches the Route
        Overlay.  The report's ``directory`` names the churned provider —
        only its compiled state is rewritten; churn in a directory this
        snapshot never compiled is a no-op.  A legacy report without a
        directory refreshes every compiled directory from live state.
        """
        self._require_patchable()
        obj = report.obj
        if obj is None:
            raise FrozenRoadError(
                f"{report.kind} report carries no object to patch from"
            )
        directory = getattr(report, "directory", None)
        if directory is None:
            states = list(self._dirs.values())
        else:
            state = self._dirs.get(directory)
            if state is None:
                # Churn in a directory outside this snapshot: the compiled
                # spans already match a fresh freeze of the compiled set —
                # a true no-op, so neither a live source ROAD (a dropped
                # road is a supported serving state) nor the cached query
                # views are touched.  An explicitly passed road still
                # becomes the source for future applies.
                if road is not None:
                    self._source = weakref.ref(road)
                return "patched"
            states = [state]
        road = self._require_source(road)
        for state in states:
            # All-or-nothing, as in :meth:`apply`: resolve every live
            # directory before the first span is touched.
            road.directory(state.name)
        self._drop_views()
        if any(node not in self._index for node in obj.edge):
            self._recompile(road)
            return "recompiled"
        for state in states:
            self._rebuild_node_objects(road, list(obj.edge), state)
            self._refresh_abstracts(road, report.dirty_rnets, state)
        return "patched"

    def _require_patchable(self) -> None:
        """Reject maintenance on read-only (mmap snapshot view) backends."""
        if not self._backend.patchable:
            raise FrozenRoadError(
                "this snapshot is a read-only view of "
                f"{self._snapshot_path or 'a snapshot file'}; "
                "load_snapshot(path, backend='compact') (or any live "
                "backend) materialises a patchable copy"
            )

    def _require_source(self, road: Optional["ROAD"]) -> "ROAD":
        if road is None:
            road = self._source() if self._source is not None else None
        if road is None:
            raise FrozenRoadError(
                "no live source ROAD: freeze via ROAD.freeze()/from_road "
                "(and keep the road alive) or pass it to apply()"
            )
        # An explicitly passed road becomes the source for future applies,
        # whatever the outcome — source tracking must not depend on
        # whether this particular update patched or recompiled.
        self._source = weakref.ref(road)
        return road

    def _recompile(self, road: "ROAD") -> None:
        """Full fallback: rebuild every array from a fresh export, in place.

        Re-exports exactly the directories this snapshot compiled (all of
        them must still be attached to ``road``), keeping the compiled
        order, the default directory, and the backend.
        """
        # Uncharged export (peek_entries): the recompile runs inside a
        # maintenance apply, which must not disturb the LRU buffer or
        # the I/O counters (RA001).
        exports = {
            name: road.directory(name).peek_entries() for name in self._dirs
        }
        trees = dict(road.overlay.iter_trees())
        self._compile(trees, exports)
        self._source = weakref.ref(road)

    def _plan_tree_patch(
        self, idx: int, tree: ShortcutTree
    ) -> Optional[_TreePatch]:
        """Flatten one node's fresh tree and check it fits its old spans.

        Returns a write-plan ``(idx, sc_values, ed_values, local_values)``
        when the fresh tree has the same shape as the compiled one — same
        entry count, Rnet sequence, subtree-skip pointers, and span sizes —
        so only targets and weights need rewriting.  Returns None when the
        shape changed (the caller falls back to a recompile).  Uses the
        same :func:`_flatten_tree_entries` as :meth:`_compile`, so planner
        and compiler read one layout contract.
        """
        index = self._index
        e0, e1 = self._entry_start[idx], self._entry_start[idx + 1]
        local_values: List[Tuple[int, float]] = []
        flat: List[ShortcutTreeEntry] = []
        nexts: List[int] = []
        if tree.roots:
            flat, nexts = _flatten_tree_entries(tree.roots)
        else:
            try:
                local_values = [(index[n], w) for n, w in tree.local_edges]
            except KeyError:  # neighbour outside the compiled node space
                return None

        # --- shape check against the compiled spans ------------------------
        if len(flat) != e1 - e0:
            return None
        l0, l1 = self._local_start[idx], self._local_start[idx + 1]
        if len(local_values) != l1 - l0:
            return None
        sc_values: List[List[Tuple[int, float]]] = []
        ed_values: List[List[Tuple[int, float]]] = []
        for i, (entry, nxt) in enumerate(zip(flat, nexts)):
            slot = self._rnet_index.get(entry.rnet_id)
            if slot is None or self._entry_rnet[e0 + i] != slot:
                return None
            if self._entry_next[e0 + i] != e0 + nxt:
                return None
            try:
                sc = [(index[s.target], s.distance) for s in entry.shortcuts]
                ed = [(index[n], w) for n, w in entry.edges]
            except KeyError:  # target outside the compiled node space
                return None
            if len(sc) != self._sc_start[e0 + i + 1] - self._sc_start[e0 + i]:
                return None
            if len(ed) != self._ed_start[e0 + i + 1] - self._ed_start[e0 + i]:
                return None
            sc_values.append(sc)
            ed_values.append(ed)
        return idx, sc_values, ed_values, local_values

    def _write_tree_patch(self, patch: _TreePatch) -> None:
        """Rewrite the targets/weights of one node's spans in place.

        Span rewrites are slice assignments, which every backend honours
        on its native array type (lists, stdlib typed arrays, and the
        numpy-over-stdlib layout alike) — the planner already guaranteed
        each new span has exactly the compiled size.
        """
        idx, sc_values, ed_values, local_values = patch
        B = self._backend
        e0 = self._entry_start[idx]
        sc_start, sc_target, sc_weight = (
            self._sc_start, self._sc_target, self._sc_weight
        )
        ed_start, ed_target, ed_weight = (
            self._ed_start, self._ed_target, self._ed_weight
        )
        for i, values in enumerate(sc_values):
            if values:
                a, b = sc_start[e0 + i], sc_start[e0 + i + 1]
                sc_target[a:b] = B.int_values([t for t, _ in values])
                sc_weight[a:b] = B.float_values([w for _, w in values])
        for i, values in enumerate(ed_values):
            if values:
                a, b = ed_start[e0 + i], ed_start[e0 + i + 1]
                ed_target[a:b] = B.int_values([t for t, _ in values])
                ed_weight[a:b] = B.float_values([w for _, w in values])
        if local_values:
            a, b = self._local_start[idx], self._local_start[idx + 1]
            self._local_target[a:b] = B.int_values(
                [t for t, _ in local_values]
            )
            self._local_weight[a:b] = B.float_values(
                [w for _, w in local_values]
            )

    def _rebuild_node_objects(
        self, road: "ROAD", nodes: Sequence[int], state: _DirectoryState
    ) -> None:
        """Replace one directory's object spans of ``nodes`` from live state.

        Handles growth, shrink and reordering by splicing the directory's
        object arrays (and every cached per-predicate object mask) and
        shifting the following span starts.  A size-changing splice costs
        O(object slots + node count) — a single C-level memmove plus one
        integer-add pass over the span starts, tiny constants next to a
        full recompile's tree rebuild — while the shortcut-tree arrays
        (the O(network·levels) bulk of the snapshot, shared by every
        directory) are never touched.
        """
        assoc = road.directory(state.name)
        B = self._backend
        obj_start = state.obj_start
        for node in sorted(set(nodes)):
            idx = self._index[node]
            a, b = obj_start[idx], obj_start[idx + 1]
            entries = assoc.peek_node_objects(node)
            state.obj_id[a:b] = B.int_values(
                [o.object_id for o, _ in entries]
            )
            state.obj_delta[a:b] = B.float_values(
                [delta for _, delta in entries]
            )
            state.obj_ref[a:b] = [o for o, _ in entries]
            for predicate, mask in state.obj_masks.items():
                mask[a:b] = bytes(
                    1 if predicate.matches(o) else 0 for o, _ in entries
                )
            shift = len(entries) - (b - a)
            if shift:
                for i in range(idx + 1, len(obj_start)):
                    obj_start[i] += shift

    def _refresh_abstracts(
        self, road: "ROAD", rnet_ids: Iterable[int], state: _DirectoryState
    ) -> None:
        """Re-snapshot one directory's ``rnet_ids`` abstracts + mask slots."""
        assoc = road.directory(state.name)
        for rnet_id in sorted(rnet_ids):
            slot = self._rnet_index.get(rnet_id)
            if slot is None:  # never referenced by any compiled entry
                continue
            abstract = assoc.peek_rnet_abstract(rnet_id)
            snapshot = copy.deepcopy(abstract) if abstract is not None else None
            state.abstracts[slot] = snapshot
            for predicate, mask in state.rnet_masks.items():
                mask[slot] = (
                    snapshot is not None and snapshot.may_contain(predicate)
                )

    # ------------------------------------------------------------------
    # Numpy view lifecycle (numpy backend only)
    # ------------------------------------------------------------------
    def _drop_views(self) -> None:
        """Release all cached array views before mutating the arrays.

        Memoryviews and ``np.frombuffer`` views export the stdlib
        buffers; a live export would make the size-changing object
        splices in :meth:`_rebuild_node_objects` raise ``BufferError``.
        Dropping the caches releases the exports (views rebuild lazily on
        the next query).
        """
        self._views = None
        self._np_views = None
        for state in self._dirs.values():
            state.views = None
            state.np_views = None

    def _array_views(self) -> Tuple[Any, ...]:
        """The shared-array views the query loops index, built per snapshot.

        List backend: the arrays themselves.  Compact/numpy: memoryviews
        over the typed buffers — measurably cheaper to index than the
        arrays, and constructing them once here keeps them out of the
        per-query (and per-pop, for the incremental iterator) hot paths.
        Order matches the unpacking in :meth:`_search` / :meth:`_expand`;
        the per-directory object views come from :meth:`_object_views`.
        """
        views = self._views
        if views is None:
            vw = self._backend.view
            views = (
                vw(self._entry_start),
                vw(self._entry_rnet),
                vw(self._entry_next),
                vw(self._sc_start),
                vw(self._sc_target),
                vw(self._sc_weight),
                vw(self._ed_start),
                vw(self._ed_target),
                vw(self._ed_weight),
                vw(self._local_start),
                vw(self._local_target),
                vw(self._local_weight),
            )
            self._views = views
        return views

    def _object_views(self, state: _DirectoryState) -> Tuple[Any, Any, Any]:
        """One directory's (obj_start, obj_id, obj_delta) query views."""
        views = state.views
        if views is None:
            vw = self._backend.view
            views = (
                vw(state.obj_start),
                vw(state.obj_id),
                vw(state.obj_delta),
            )
            state.views = views
        return views

    def _numpy_views(self) -> Tuple[Any, ...]:
        """Zero-copy views over the shared weight buffers, built lazily."""
        views = self._np_views
        if views is None:
            B = self._backend
            views = (
                B.frombuffer(self._sc_target, kind="i"),
                B.frombuffer(self._sc_weight, kind="f"),
                B.frombuffer(self._ed_target, kind="i"),
                B.frombuffer(self._ed_weight, kind="f"),
                B.frombuffer(self._local_target, kind="i"),
                B.frombuffer(self._local_weight, kind="f"),
            )
            self._np_views = views
        return views

    def _object_numpy_views(self, state: _DirectoryState) -> Tuple[Any, Any]:
        """One directory's zero-copy (obj_id, obj_delta) numpy views."""
        views = state.np_views
        if views is None:
            B = self._backend
            views = (
                B.frombuffer(state.obj_id, kind="i"),
                B.frombuffer(state.obj_delta, kind="f"),
            )
            state.np_views = views
        return views

    # ------------------------------------------------------------------
    # Directory resolution
    # ------------------------------------------------------------------
    def _state(self, directory: Optional[str] = None) -> _DirectoryState:
        """The compiled state a query's ``directory=`` routes to.

        ``None`` means :attr:`default_directory` — the *configured*
        default, never "the first compiled".  Unknown names raise the
        serving layer's :class:`UnknownDirectoryError`.
        """
        if directory is None:
            directory = self._default_directory
        state = self._dirs.get(directory)
        if state is None:
            raise UnknownDirectoryError(self, directory, self._dirs)
        return state

    # Single-directory back-compat aliases: the default directory's state.
    @property
    def directory_name(self) -> str:
        """Deprecated spelling of :attr:`default_directory`."""
        return self._default_directory

    @property
    def _rnet_masks(self) -> Dict[Predicate, Sequence[bool]]:
        return self._state().rnet_masks

    @property
    def _obj_masks(self) -> Dict[Predicate, bytearray]:
        return self._state().obj_masks

    @property
    def _obj_ref(self) -> List[SpatialObject]:
        return self._state().obj_ref

    def object_refs(
        self, directory: Optional[str] = None
    ) -> List[SpatialObject]:
        """The snapshotted object references of one compiled directory."""
        return list(self._state(directory).obj_ref)

    # ------------------------------------------------------------------
    # Predicate compilation (the shared cache of the batch layer)
    # ------------------------------------------------------------------
    def _rnet_mask(
        self, state: _DirectoryState, predicate: Predicate
    ) -> Sequence[bool]:
        """Per-Rnet "may contain an object of interest" bitmask.

        List backend: a list of bools; compact/numpy: a bytearray; shm: a
        shared-memory byte vector — the query loop only needs truthy
        indexing, and the patch paths only need item assignment, which
        all of them honour.  Cached per (directory, predicate): two
        directories never share a mask, however equal their predicates.
        The *cached* object is the backend's mask (so patch writes
        persist); the hot loop indexes ``mask_view`` of it (identity
        everywhere but shm, where it is the payload memoryview).
        """
        mask = state.rnet_masks.get(predicate)
        if mask is None:
            mask = self._backend.bool_mask(
                abstract is not None and abstract.may_contain(predicate)
                for abstract in state.abstracts
            )
            self._cache_put(state, state.rnet_masks, predicate, mask)
        else:
            # LRU refresh: a re-seen predicate moves to the young end.
            state.rnet_masks[predicate] = state.rnet_masks.pop(predicate)
        return self._backend.mask_view(mask)

    def _object_mask(
        self, state: _DirectoryState, predicate: Predicate
    ) -> Optional[bytearray]:
        """Per-object-slot predicate match mask (None = unconstrained)."""
        if predicate.is_unconstrained:
            return None
        mask = state.obj_masks.get(predicate)
        if mask is None:
            mask = bytearray(len(state.obj_ref))
            for j, obj in enumerate(state.obj_ref):
                mask[j] = predicate.matches(obj)
            self._cache_put(state, state.obj_masks, predicate, mask)
        else:
            state.obj_masks[predicate] = state.obj_masks.pop(predicate)
        return mask

    def _cache_put(
        self,
        state: _DirectoryState,
        cache: Dict[Predicate, Any],
        key: Predicate,
        value: Any,
    ) -> None:
        """Insert into one directory's bounded mask cache, LRU-evicting.

        Both mask caches (per-Rnet and per-object-slot) are insertion-
        ordered dicts whose hit paths re-insert the key, so the first
        entry is always the least recently used.  Evictions count into
        ``state.mask_evictions`` (surfaced by :meth:`memory_stats` /
        ``RoadService.stats()``); an evicted shared-memory mask releases
        its segment when the last in-flight reader drops its view (the
        GC finalizer in :mod:`repro.core.shm_arrays`).
        """
        while len(cache) >= self._mask_budget:
            cache.pop(next(iter(cache)))
            state.mask_evictions += 1
        cache[key] = value

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def knn(
        self,
        node: int,
        k: int,
        predicate: Predicate = ANY,
        stats: Optional[SearchStats] = None,
        *,
        directory: Optional[str] = None,
    ) -> List[ResultEntry]:
        """kNNSearch (Figure 9) against the compiled arrays."""
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        return self._search(
            node, predicate, k=k, radius=None, stats=stats,
            directory=directory,
        )

    def range(
        self,
        node: int,
        radius: float,
        predicate: Predicate = ANY,
        stats: Optional[SearchStats] = None,
        *,
        directory: Optional[str] = None,
    ) -> List[ResultEntry]:
        """RangeSearch (Section 4) against the compiled arrays."""
        if radius < 0:
            raise ValueError(f"radius must be >= 0, got {radius}")
        return self._search(
            node, predicate, k=None, radius=radius, stats=stats,
            directory=directory,
        )

    def aggregate_knn(
        self,
        nodes: Sequence[int],
        k: int,
        agg: str = "sum",
        predicate: Predicate = ANY,
        stats: Optional[SearchStats] = None,
        *,
        directory: Optional[str] = None,
    ) -> List[ResultEntry]:
        """Aggregate kNN on the compiled arrays (zero pager traffic).

        Same lockstep-expansion algorithm as the charged
        :func:`repro.core.aggregate.aggregate_knn`, fed by this snapshot's
        :meth:`iter_nearest_objects`; identical answers by construction.
        """
        return aggregate_knn_generic(
            lambda node: self.iter_nearest_objects(
                node, predicate, stats, directory=directory
            ),
            list(nodes),
            k,
            agg,
        )

    def od_matrix(
        self,
        sources: Sequence[int],
        targets: Sequence[int],
        stats: Optional[SearchStats] = None,
        *,
        directory: Optional[str] = None,
    ) -> List[ODMatrixEntry]:
        """Many-to-many network distances over the compiled flat adjacency.

        One lane-tagged multi-source Dijkstra
        (:func:`repro.core.multi_source.od_matrix_generic`) relaxes the
        contiguous edge spans for all S sources from a single shared
        heap; cells are returned row-major with ``inf`` for unreachable
        pairs.  ``directory`` only routes admission — the matrix itself
        is a pure network product.
        """
        self._state(directory)
        src = [self._code(node) for node in sources]
        if not src:
            raise ValueError("need at least one source node")
        tgt = [self._code(node) for node in targets]
        rows = od_matrix_generic(
            src, tgt, self._flat_expand(), stats=stats, node_ids=self.node_ids
        )
        return od_entries(list(sources), list(targets), rows)

    def service_area(
        self,
        node: int,
        breaks: Sequence[float],
        predicate: Predicate = ANY,
        stats: Optional[SearchStats] = None,
        *,
        directory: Optional[str] = None,
    ) -> List[ServiceAreaEntry]:
        """Multi-break isochrone against the compiled arrays.

        A RangeSearch sweep cut at ``max(breaks)``, with every answer
        tagged by the first break covering it.  Rides the shared
        multi-source kernel (single seed), so the per-predicate masks
        serve the whole sweep.
        """
        state = self._state(directory)
        cut = normalize_breaks(breaks)
        source = self._code(node)
        may = self._rnet_mask(state, predicate)
        omask = self._object_mask(state, predicate)
        counters = [0, 0, 0, 0, 0, 0]
        rnet_slots: Set[int] = set()
        entries = multi_source_objects(
            [source],
            self._frontier_expand(state, may, omask, counters, rnet_slots),
            radius=cut[-1],
            stats=stats,
            node_ids=self.node_ids,
        )
        if stats is not None:
            self._flush_stats(stats, counters)
            self._flush_rnet_slots(stats, rnet_slots)
        return bucket_entries(entries, cut)

    def route_knn(
        self,
        path: Sequence[int],
        k: int,
        predicate: Predicate = ANY,
        stats: Optional[SearchStats] = None,
        *,
        directory: Optional[str] = None,
    ) -> List[ResultEntry]:
        """In-route kNN: the k best objects by detour from ``path``.

        Every path node seeds one shared frontier at distance 0 (the
        batched multi-source form of kNNSearch), so an answer's distance
        is the smallest detour from any point of the route; the k-cutoff
        drains ties and resolves them canonically by (distance, id).
        """
        state = self._state(directory)
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        seeds = [self._code(n) for n in path]
        if not seeds:
            raise ValueError("need at least one path node")
        may = self._rnet_mask(state, predicate)
        omask = self._object_mask(state, predicate)
        counters = [0, 0, 0, 0, 0, 0]
        rnet_slots: Set[int] = set()
        result = multi_source_objects(
            seeds,
            self._frontier_expand(state, may, omask, counters, rnet_slots),
            k=k,
            stats=stats,
            node_ids=self.node_ids,
        )
        if stats is not None:
            self._flush_stats(stats, counters)
            self._flush_rnet_slots(stats, rnet_slots)
        return result

    # ``execute`` / ``execute_many`` are inherited from QueryExecutor and
    # served by the ``engine="frozen"`` handlers at the bottom of this
    # module.  Predicate state (Rnet masks, object match masks) is
    # memoised on the snapshot itself, so a workload with few distinct
    # predicates compiles each predicate once regardless of batching.

    @property
    def directory_names(self) -> List[str]:
        """The directories this snapshot compiled, in compiled order.

        Authoritative for the serving layer: ``check_directory`` /
        ``execute(directory=...)`` accept exactly these names.
        """
        return list(self._dirs)

    @property
    def default_directory(self) -> str:
        """The directory ``directory=None`` queries route to.

        The *configured* default (``freeze(default=...)``; falling back
        to ``"objects"`` when compiled, else the first compiled name) —
        not simply whichever directory happened to compile first.
        """
        return self._default_directory

    def iter_nearest_objects(
        self,
        node: int,
        predicate: Predicate = ANY,
        stats: Optional[SearchStats] = None,
        *,
        directory: Optional[str] = None,
    ) -> Iterator[Tuple[float, int]]:
        """Lazily yield (distance, object_id) in non-descending distance."""
        state = self._state(directory)
        try:
            source = self._index[node]
        except KeyError:
            raise FrozenRoadError(f"node {node} not in frozen index") from None
        may = self._rnet_mask(state, predicate)
        omask = self._object_mask(state, predicate)
        heap: List[Tuple[float, int, int]] = [(0.0, 0, source)]
        seq = 1
        visited = bytearray(len(self.node_ids))
        seen_objects: set = set()
        counters = [0, 0, 0, 0, 0, 0]
        flushed = [0, 0, 0, 0, 0, 0]
        rnet_slots: Set[int] = set()
        pending_nodes: List[int] = []
        slot_ids = self._rnet_ids_by_slot() if stats is not None else {}

        def flush() -> None:
            # Stats update incrementally, like the charged iterator: a
            # consumer that stops pulling (aggregate lockstep, early break)
            # still sees the work done so far.
            if stats is not None:
                self._flush_stats(
                    stats, [c - f for c, f in zip(counters, flushed)]
                )
                flushed[:] = counters
                node_ids = self.node_ids
                stats.visited_nodes.update(
                    node_ids[code] for code in pending_nodes
                )
                pending_nodes.clear()
                while rnet_slots:
                    stats.visited_rnets.add(slot_ids[rnet_slots.pop()])

        try:
            while heap:
                distance, _, code = heapq.heappop(heap)
                if code < 0:  # an object: ~object_id
                    oid = ~code
                    if oid in seen_objects:
                        continue
                    seen_objects.add(oid)
                    counters[1] += 1
                    flush()
                    yield distance, oid
                    continue
                if visited[code]:
                    continue
                visited[code] = 1
                counters[0] += 1
                if stats is not None:
                    pending_nodes.append(code)
                seq = self._expand(
                    heap, seq, code, distance, may, omask, seen_objects,
                    counters, state, rnet_slots,
                )
        finally:
            if stats is not None:
                # The frontier boundary joins the footprint when the
                # consumer stops pulling (charged twin: the
                # ``_Frontier.pending_nodes`` union on generator close).
                pending_nodes.extend(c for _, _, c in heap if c >= 0)
            flush()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Nodes in the compiled index."""
        return len(self.node_ids)

    @property
    def num_objects(self) -> int:
        """Object association slots over every compiled directory
        (objects appear once per host-edge endpoint)."""
        return sum(len(state.obj_ref) for state in self._dirs.values())

    def _arrays(self) -> Dict[str, Sequence]:
        """The compiled CSR arrays by name (introspection/accounting).

        Shared arrays keep their plain names; a multi-directory snapshot
        prefixes each directory's object arrays with its name (a
        single-directory snapshot keeps the historical flat keys).
        """
        arrays: Dict[str, Sequence] = {
            "entry_start": self._entry_start,
            "entry_rnet": self._entry_rnet,
            "entry_next": self._entry_next,
            "sc_start": self._sc_start,
            "sc_target": self._sc_target,
            "sc_weight": self._sc_weight,
            "ed_start": self._ed_start,
            "ed_target": self._ed_target,
            "ed_weight": self._ed_weight,
            "local_start": self._local_start,
            "local_target": self._local_target,
            "local_weight": self._local_weight,
        }
        for name, state in self._dirs.items():
            prefix = self._dir_prefix(name)
            arrays[f"{prefix}obj_start"] = state.obj_start
            arrays[f"{prefix}obj_id"] = state.obj_id
            arrays[f"{prefix}obj_delta"] = state.obj_delta
        return arrays

    def _dir_prefix(self, name: str) -> str:
        """Key prefix of one directory's object arrays in :meth:`_arrays`.

        The single place the naming convention lives — a single-directory
        snapshot keeps the historical flat keys, a multi-directory one
        prefixes each directory's arrays with its name.
        """
        return "" if len(self._dirs) == 1 else f"{name}:"

    @property
    def nbytes(self) -> int:
        """Payload-size estimate of the compiled arrays (8 B/element,
        excluding the object references).  Backend-independent; see
        :meth:`memory_stats` for the resident footprint per backend."""
        return sum(8 * len(a) for a in self._arrays().values())

    def memory_stats(self) -> Dict[str, object]:
        """Resident footprint of the compiled arrays under this backend.

        ``total_bytes`` is what the arrays actually hold on the heap —
        container plus boxed elements for the list backend, the inline
        typed buffers for compact/numpy — next to ``payload_bytes``, the
        backend-independent 8 B/element ideal (== :attr:`nbytes`).  The
        per-predicate mask caches are reported separately; the
        ``object_refs`` list (shared ``SpatialObject`` instances, one
        pointer per association slot) is counted as pointers only.
        ``directories`` breaks the footprint down per compiled directory
        (its object arrays, reference pointers and mask caches) — the
        remainder of ``total_bytes`` is the entry arrays every directory
        shares.
        """
        per_array = {
            name: self._backend.resident_bytes(arr)
            for name, arr in self._arrays().items()
        }
        mask_bytes = 0
        mask_entries = 0
        mask_evictions = 0
        per_directory: Dict[str, Dict[str, int]] = {}
        for name, state in self._dirs.items():
            prefix = self._dir_prefix(name)
            dir_mask_bytes = sum(
                self._backend.resident_bytes(mask)
                for mask in state.rnet_masks.values()
            ) + sum(sys.getsizeof(mask) for mask in state.obj_masks.values())
            mask_bytes += dir_mask_bytes
            mask_entries += len(state.rnet_masks) + len(state.obj_masks)
            mask_evictions += state.mask_evictions
            per_directory[name] = {
                "object_array_bytes": sum(
                    per_array[f"{prefix}{key}"]
                    for key in ("obj_start", "obj_id", "obj_delta")
                ),
                "object_refs": len(state.obj_ref),
                "object_ref_bytes": sys.getsizeof(state.obj_ref),
                "mask_cache_bytes": dir_mask_bytes,
                "mask_cache_entries": (
                    len(state.rnet_masks) + len(state.obj_masks)
                ),
                "mask_evictions": state.mask_evictions,
            }
        stats: Dict[str, object] = {
            "backend": self.backend,
            "arrays": per_array,
            "total_bytes": sum(per_array.values()),
            "payload_bytes": self.nbytes,
            "elements": sum(len(a) for a in self._arrays().values()),
            "object_refs": self.num_objects,
            "object_ref_bytes": sum(
                sys.getsizeof(state.obj_ref) for state in self._dirs.values()
            ),
            "mask_cache_bytes": mask_bytes,
            "mask_cache_entries": mask_entries,
            "mask_budget": self._mask_budget,
            "mask_evictions": mask_evictions,
            "directories": per_directory,
        }
        shm_segments: Dict[str, Dict[str, object]] = {}
        shm_bytes = 0
        # Mask caches never appear here: they are process-local bytearrays
        # on every backend, shm included (see ShmBackend's docstring).
        shared: List[Tuple[str, Any]] = [
            (name, arr)
            for name, arr in self._arrays().items()
            if isinstance(arr, ShmVector)
        ]
        for name, vector in shared:
            shm_segments[name] = {
                "segment": vector.segment_name,
                "bytes": vector.segment_bytes,
            }
            shm_bytes += vector.segment_bytes
        if shm_segments:
            stats["shm_segments"] = shm_segments
            stats["shm_bytes"] = shm_bytes
        if self._snapshot_path is not None:
            stats["snapshot_path"] = self._snapshot_path
            try:
                stats["snapshot_file_bytes"] = os.path.getsize(
                    self._snapshot_path
                )
            except OSError:
                stats["snapshot_file_bytes"] = 0
        return stats

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FrozenRoad(nodes={self.num_nodes}, "
            f"entries={len(self._entry_rnet)}, objects={self.num_objects}, "
            f"directories={list(self._dirs)}, "
            f"backend={self.backend}, bytes={self.nbytes})"
        )

    # ------------------------------------------------------------------
    # Internal: the compiled expansion
    # ------------------------------------------------------------------
    def _search(
        self,
        node: int,
        predicate: Predicate,
        *,
        k: Optional[int],
        radius: Optional[float],
        stats: Optional[SearchStats],
        directory: Optional[str] = None,
    ) -> List[ResultEntry]:
        state = self._state(directory)
        try:
            source = self._index[node]
        except KeyError:
            raise FrozenRoadError(f"node {node} not in frozen index") from None
        may = self._rnet_mask(state, predicate)
        omask = self._object_mask(state, predicate)
        if self._backend.vectorised:
            return self._search_vec(
                source, may, omask, state, k=k, radius=radius, stats=stats
            )
        # Bind every array view to a local once per query: the loop below
        # is the hot path, and attribute loads per pop would dominate it.
        # The backend picks the view the loop indexes — the list itself
        # for "list", a cached memoryview over the typed buffer for
        # "compact" (cheaper per access than the array).
        pop = heapq.heappop
        push = heapq.heappush
        obj_start, obj_id, obj_delta = self._object_views(state)
        (
            entry_start, entry_rnet, entry_next,
            sc_start, sc_target, sc_weight,
            ed_start, ed_target, ed_weight,
            local_start, local_target, local_weight,
        ) = self._array_views()

        heap: List[Tuple[float, int, int]] = [(0.0, 0, source)]
        seq = 1
        visited = bytearray(len(self.node_ids))
        seen_objects: set = set()
        result: List[ResultEntry] = []
        append = result.append
        limit = k if k is not None else -1
        bound = radius if radius is not None else _INF
        # scalar counters, flushed into SearchStats at the end:
        # nodes/objects popped, edges relaxed, shortcuts taken,
        # rnets bypassed/descended
        c_np = c_op = c_er = c_st = c_rb = c_rd = 0
        track = stats is not None
        rnet_seen: Set[int] = set()
        while heap:
            distance, _, code = pop(heap)
            if distance > bound:
                break  # everything else is farther: the bounded space is done
            if code < 0:  # an object: ~object_id
                oid = ~code
                if oid in seen_objects:
                    continue
                seen_objects.add(oid)
                c_op += 1
                append(ResultEntry(oid, distance))
                if c_op == limit:
                    break
                continue
            if visited[code]:
                continue
            visited[code] = 1
            c_np += 1
            # SearchObject(AD, node): matching objects in stored order, as
            # the charged `_collect_node_objects` does.
            for j in range(obj_start[code], obj_start[code + 1]):
                oid = obj_id[j]
                if oid in seen_objects:
                    continue
                if omask is None or omask[j]:
                    push(heap, (distance + obj_delta[j], seq, ~oid))
                    seq += 1
            # ChoosePath (Fig 10), flattened: preorder walk + subtree skip.
            i = entry_start[code]
            end = entry_start[code + 1]
            if i == end:
                # Non-border node: one leaf of physical edges (Fig 6, n_q).
                # A push to an already-settled node would only be discarded
                # on pop, so it is skipped (counters still record the
                # relaxation, keeping SearchStats identical to the charged
                # path; surviving entries keep their relative seq order, so
                # results are unchanged too).
                for j in range(local_start[code], local_start[code + 1]):
                    c_er += 1
                    target = local_target[j]
                    if not visited[target]:
                        push(heap, (distance + local_weight[j], seq, target))
                        seq += 1
                continue
            while i < end:
                if track:
                    rnet_seen.add(entry_rnet[i])
                if may[entry_rnet[i]]:
                    nxt = entry_next[i]
                    if nxt == i + 1:
                        # Finest Rnet with objects of interest: its edges.
                        for j in range(ed_start[i], ed_start[i + 1]):
                            c_er += 1
                            target = ed_target[j]
                            if not visited[target]:
                                push(heap, (distance + ed_weight[j], seq, target))
                                seq += 1
                    else:
                        c_rd += 1
                    i += 1
                else:
                    # Bypass: jump straight to the Rnet's other borders.
                    c_rb += 1
                    for j in range(sc_start[i], sc_start[i + 1]):
                        c_st += 1
                        target = sc_target[j]
                        if not visited[target]:
                            push(heap, (distance + sc_weight[j], seq, target))
                            seq += 1
                    i = entry_next[i]
        if stats is not None:
            self._flush_stats(stats, (c_np, c_op, c_er, c_st, c_rb, c_rd))
            self._flush_footprint(stats, visited, rnet_seen, heap)
        return result

    def _search_vec(
        self,
        source: int,
        may: Sequence[bool],
        omask: Optional[bytearray],
        state: _DirectoryState,
        *,
        k: Optional[int],
        radius: Optional[float],
        stats: Optional[SearchStats],
    ) -> List[ResultEntry]:
        """The numpy backend's expansion: vectorised span relaxation.

        Identical decisions (and byte-identical results/stats) to the
        scalar loop in :meth:`_search`: spans at least
        :data:`VEC_MIN_SPAN` wide are relaxed with one vectorised
        ``distance + weights[a:b]`` add and a bulk ``.tolist()`` back to
        Python floats — IEEE-identical to the scalar additions — before
        the per-candidate visited filter and heap push; narrower spans
        (the typical road-network degree) take the scalar memoryview
        path, where numpy slicing overhead would dominate.
        """
        obj_id_v, obj_delta_v = self._object_numpy_views(state)
        (
            sc_target_v, sc_weight_v,
            ed_target_v, ed_weight_v, local_target_v, local_weight_v,
        ) = self._numpy_views()
        pop = heapq.heappop
        push = heapq.heappush
        obj_start, obj_id, obj_delta = self._object_views(state)
        (
            entry_start, entry_rnet, entry_next,
            sc_start, sc_target, sc_weight,
            ed_start, ed_target, ed_weight,
            local_start, local_target, local_weight,
        ) = self._array_views()

        heap: List[Tuple[float, int, int]] = [(0.0, 0, source)]
        seq = 1
        visited = bytearray(len(self.node_ids))
        seen_objects: set = set()
        result: List[ResultEntry] = []
        append = result.append
        limit = k if k is not None else -1
        bound = radius if radius is not None else _INF
        c_np = c_op = c_er = c_st = c_rb = c_rd = 0
        track = stats is not None
        rnet_seen: Set[int] = set()
        while heap:
            distance, _, code = pop(heap)
            if distance > bound:
                break
            if code < 0:  # an object: ~object_id
                oid = ~code
                if oid in seen_objects:
                    continue
                seen_objects.add(oid)
                c_op += 1
                append(ResultEntry(oid, distance))
                if c_op == limit:
                    break
                continue
            if visited[code]:
                continue
            visited[code] = 1
            c_np += 1
            a, b = obj_start[code], obj_start[code + 1]
            if b - a >= VEC_MIN_SPAN:
                oids = obj_id_v[a:b].tolist()
                odists = (distance + obj_delta_v[a:b]).tolist()
                for j in range(b - a):
                    oid = oids[j]
                    if oid in seen_objects:
                        continue
                    if omask is None or omask[a + j]:
                        push(heap, (odists[j], seq, ~oid))
                        seq += 1
            else:
                for j in range(a, b):
                    oid = obj_id[j]
                    if oid in seen_objects:
                        continue
                    if omask is None or omask[j]:
                        push(heap, (distance + obj_delta[j], seq, ~oid))
                        seq += 1
            i = entry_start[code]
            end = entry_start[code + 1]
            if i == end:
                a, b = local_start[code], local_start[code + 1]
                if b - a >= VEC_MIN_SPAN:
                    targets = local_target_v[a:b].tolist()
                    dists = (distance + local_weight_v[a:b]).tolist()
                    for j in range(b - a):
                        c_er += 1
                        target = targets[j]
                        if not visited[target]:
                            push(heap, (dists[j], seq, target))
                            seq += 1
                else:
                    for j in range(a, b):
                        c_er += 1
                        target = local_target[j]
                        if not visited[target]:
                            push(heap, (distance + local_weight[j], seq, target))
                            seq += 1
                continue
            while i < end:
                if track:
                    rnet_seen.add(entry_rnet[i])
                if may[entry_rnet[i]]:
                    nxt = entry_next[i]
                    if nxt == i + 1:
                        a, b = ed_start[i], ed_start[i + 1]
                        if b - a >= VEC_MIN_SPAN:
                            targets = ed_target_v[a:b].tolist()
                            dists = (distance + ed_weight_v[a:b]).tolist()
                            for j in range(b - a):
                                c_er += 1
                                target = targets[j]
                                if not visited[target]:
                                    push(heap, (dists[j], seq, target))
                                    seq += 1
                        else:
                            for j in range(a, b):
                                c_er += 1
                                target = ed_target[j]
                                if not visited[target]:
                                    push(
                                        heap,
                                        (distance + ed_weight[j], seq, target),
                                    )
                                    seq += 1
                    else:
                        c_rd += 1
                    i += 1
                else:
                    c_rb += 1
                    a, b = sc_start[i], sc_start[i + 1]
                    if b - a >= VEC_MIN_SPAN:
                        targets = sc_target_v[a:b].tolist()
                        dists = (distance + sc_weight_v[a:b]).tolist()
                        for j in range(b - a):
                            c_st += 1
                            target = targets[j]
                            if not visited[target]:
                                push(heap, (dists[j], seq, target))
                                seq += 1
                    else:
                        for j in range(a, b):
                            c_st += 1
                            target = sc_target[j]
                            if not visited[target]:
                                push(
                                    heap,
                                    (distance + sc_weight[j], seq, target),
                                )
                                seq += 1
                    i = entry_next[i]
        if stats is not None:
            self._flush_stats(stats, (c_np, c_op, c_er, c_st, c_rb, c_rd))
            self._flush_footprint(stats, visited, rnet_seen, heap)
        return result

    def _expand(
        self,
        heap: List[Tuple[float, int, int]],
        seq: int,
        item: int,
        distance: float,
        may: List[bool],
        omask: Optional[bytearray],
        seen_objects: set,
        counters: List[int],
        state: _DirectoryState,
        rnet_slots: Set[int],
    ) -> int:
        """SearchObject + ChoosePath for one popped node; returns next seq.

        The incremental iterator's expansion step — identical decisions to
        the inlined loop in :meth:`_search`.  Runs the scalar path on
        every backend (the aggregate lockstep pulls one node at a time, so
        there is no batch to vectorise); the array views come from the
        per-snapshot cache, so a pop costs no view construction.
        """
        push = heapq.heappush
        obj_start, obj_id, obj_delta = self._object_views(state)
        (
            entry_start, entry_rnet, entry_next,
            sc_start, sc_target, sc_weight,
            ed_start, ed_target, ed_weight,
            local_start, local_target, local_weight,
        ) = self._array_views()
        for j in range(obj_start[item], obj_start[item + 1]):
            oid = obj_id[j]
            if oid in seen_objects:
                continue
            if omask is None or omask[j]:
                push(heap, (distance + obj_delta[j], seq, ~oid))
                seq += 1
        i = entry_start[item]
        end = entry_start[item + 1]
        if i == end:
            # Non-border node: a single leaf of physical edges (Fig 6, n_q).
            for j in range(local_start[item], local_start[item + 1]):
                push(heap, (distance + local_weight[j], seq, local_target[j]))
                seq += 1
                counters[2] += 1
            return seq
        while i < end:
            rnet_slots.add(entry_rnet[i])
            if may[entry_rnet[i]]:
                nxt = entry_next[i]
                if nxt == i + 1:
                    # Finest Rnet with objects of interest: traverse edges.
                    for j in range(ed_start[i], ed_start[i + 1]):
                        push(heap, (distance + ed_weight[j], seq, ed_target[j]))
                        seq += 1
                        counters[2] += 1
                else:
                    counters[5] += 1
                i += 1
            else:
                # Bypass: jump straight to the Rnet's other border nodes.
                counters[4] += 1
                for j in range(sc_start[i], sc_start[i + 1]):
                    push(heap, (distance + sc_weight[j], seq, sc_target[j]))
                    seq += 1
                    counters[3] += 1
                i = entry_next[i]
        return seq

    def _code(self, node: int) -> int:
        """One node id's dense code; unknown ids raise like the queries."""
        try:
            return self._index[node]
        except KeyError:
            raise FrozenRoadError(f"node {node} not in frozen index") from None

    def _frontier_expand(
        self,
        state: _DirectoryState,
        may: Sequence[bool],
        omask: Optional[bytearray],
        counters: List[int],
        rnet_slots: Set[int],
    ) -> Expand:
        """The multi-source kernel's expansion step over the CSR spans.

        The frontier twin of :meth:`_expand`: identical decisions in
        identical order (objects first, then the entry walk), pushing
        through the shared :class:`~repro.core.search._Frontier` instead
        of the raw heap — which is what keeps the multi-source sweeps
        push-for-push identical to the charged engine.  ``counters``
        accumulates edge/shortcut/Rnet work (indexes 2..5 of
        :meth:`_flush_stats`); the kernel itself counts the pops.
        """
        obj_start, obj_id, obj_delta = self._object_views(state)
        (
            entry_start, entry_rnet, entry_next,
            sc_start, sc_target, sc_weight,
            ed_start, ed_target, ed_weight,
            local_start, local_target, local_weight,
        ) = self._array_views()

        def expand(
            frontier: "_Frontier", item: int, distance: float,
            seen_objects: Set[int],
        ) -> None:
            push_node = frontier.push_node
            push_object = frontier.push_object
            for j in range(obj_start[item], obj_start[item + 1]):
                oid = obj_id[j]
                if oid in seen_objects:
                    continue
                if omask is None or omask[j]:
                    push_object(oid, distance + obj_delta[j])
            i = entry_start[item]
            end = entry_start[item + 1]
            if i == end:
                for j in range(local_start[item], local_start[item + 1]):
                    push_node(local_target[j], distance + local_weight[j])
                    counters[2] += 1
                return
            while i < end:
                rnet_slots.add(entry_rnet[i])
                if may[entry_rnet[i]]:
                    if entry_next[i] == i + 1:
                        for j in range(ed_start[i], ed_start[i + 1]):
                            push_node(ed_target[j], distance + ed_weight[j])
                            counters[2] += 1
                    else:
                        counters[5] += 1
                    i += 1
                else:
                    counters[4] += 1
                    for j in range(sc_start[i], sc_start[i + 1]):
                        push_node(sc_target[j], distance + sc_weight[j])
                        counters[3] += 1
                    i = entry_next[i]

        return expand

    def _flat_expand(self) -> ExpandFlat:
        """The OD sweep's step: a node's full physical adjacency.

        A non-border node relaxes its local span; a border node's leaf
        edges sit contiguous across its entry spans (``_compile`` emits
        them in entry order and patches preserve the layout), so the
        whole adjacency is one ``range(ed_start[i0], ed_start[i1])``.
        Same edge multiset as the charged ``overlay.neighbours`` — and
        Dijkstra's settled distances are relaxation-order independent,
        so the OD rows agree across engines byte-for-byte.
        """
        (
            entry_start, _entry_rnet, _entry_next,
            _sc_start, _sc_target, _sc_weight,
            ed_start, ed_target, ed_weight,
            local_start, local_target, local_weight,
        ) = self._array_views()

        def expand_flat(
            item: int, distance: float, push: Callable[[int, float], None]
        ) -> None:
            i0 = entry_start[item]
            i1 = entry_start[item + 1]
            if i0 == i1:
                for j in range(local_start[item], local_start[item + 1]):
                    push(local_target[j], distance + local_weight[j])
            else:
                for j in range(ed_start[i0], ed_start[i1]):
                    push(ed_target[j], distance + ed_weight[j])

        return expand_flat

    @staticmethod
    def _flush_stats(stats: SearchStats, counters: Sequence[int]) -> None:
        stats.nodes_popped += counters[0]
        stats.objects_popped += counters[1]
        stats.edges_relaxed += counters[2]
        stats.shortcuts_taken += counters[3]
        stats.rnets_bypassed += counters[4]
        stats.rnets_descended += counters[5]

    def _rnet_ids_by_slot(self) -> Dict[int, int]:
        """Slot -> Rnet id: the inverse of ``_rnet_index``.

        Built per stats-carrying query (slots are few); the dense codes
        in ``entry_rnet`` mean nothing outside one snapshot, so the
        footprint must speak real Rnet ids like the charged engine.
        """
        return {slot: rnet_id for rnet_id, slot in self._rnet_index.items()}

    def _flush_rnet_slots(
        self, stats: SearchStats, rnet_slots: Set[int]
    ) -> None:
        """Translate one sweep's examined entry slots into the footprint."""
        if rnet_slots:
            slot_ids = self._rnet_ids_by_slot()
            stats.visited_rnets.update(
                slot_ids[slot] for slot in rnet_slots
            )

    def _flush_footprint(
        self,
        stats: SearchStats,
        visited: bytearray,
        rnet_slots: Set[int],
        heap: Sequence[Tuple[float, int, int]] = (),
    ) -> None:
        """Record one sweep's examined nodes + examined Rnets, translated.

        ``visited`` is the pop-time bytearray (codes are set only when a
        node settles, matching the charged pop-time recording) and
        ``heap`` the unpopped remnant — together the *examined* set: the
        frontier boundary is part of the footprint because a patch on an
        exactly-tied boundary node can reach into the answer (charged
        twin: ``_Frontier.pending_nodes``).  Both are scanned once after
        the sweep so the hot loop pays nothing extra.
        """
        node_ids = self.node_ids
        stats.visited_nodes.update(
            node_ids[code] for code, seen in enumerate(visited) if seen
        )
        stats.visited_nodes.update(
            node_ids[code] for _, _, code in heap if code >= 0
        )
        self._flush_rnet_slots(stats, rnet_slots)


def freeze_road(
    road: "ROAD",
    *,
    directory: str = "objects",
    backend: Optional[Union[str, ListBackend]] = None,
) -> FrozenRoad:
    """Deprecated alias for :meth:`ROAD.freeze` / :meth:`FrozenRoad.from_road`.

    .. deprecated:: 1.1
       Use ``road.freeze(...)`` directly, or serve through
       :class:`repro.serving.RoadService` with
       ``ServiceConfig(mode="frozen")``.
    """
    warnings.warn(
        "road-repro deprecated: freeze_road() — use ROAD.freeze() or "
        "repro.serving.RoadService (ServiceConfig(mode='frozen'))",
        DeprecationWarning,
        stacklevel=2,
    )
    return FrozenRoad.from_road(road, directory=directory, backend=backend)


# ----------------------------------------------------------------------
# Frozen-path query handlers (the "frozen" dispatch key).
# ----------------------------------------------------------------------
@register_handler(KNNQuery, engine="frozen")
def _frozen_knn(
    snapshot: FrozenRoad, query: KNNQuery, ctx: BatchContext
) -> List[ResultEntry]:
    return snapshot.knn(
        query.node, query.k, query.predicate, stats=ctx.stats,
        directory=ctx.directory,
    )


@register_handler(RangeQuery, engine="frozen")
def _frozen_range(
    snapshot: FrozenRoad, query: RangeQuery, ctx: BatchContext
) -> List[ResultEntry]:
    return snapshot.range(
        query.node, query.radius, query.predicate, stats=ctx.stats,
        directory=ctx.directory,
    )


@register_handler(AggregateKNNQuery, engine="frozen")
def _frozen_aggregate(
    snapshot: FrozenRoad, query: AggregateKNNQuery, ctx: BatchContext
) -> List[ResultEntry]:
    return snapshot.aggregate_knn(
        query.nodes, query.k, query.agg, query.predicate, stats=ctx.stats,
        directory=ctx.directory,
    )


@register_handler(ODMatrixQuery, engine="frozen")
def _frozen_od_matrix(
    snapshot: FrozenRoad, query: ODMatrixQuery, ctx: BatchContext
) -> List[ODMatrixEntry]:
    return snapshot.od_matrix(
        query.sources, query.targets, stats=ctx.stats, directory=ctx.directory,
    )


@register_handler(ServiceAreaQuery, engine="frozen")
def _frozen_service_area(
    snapshot: FrozenRoad, query: ServiceAreaQuery, ctx: BatchContext
) -> List[ServiceAreaEntry]:
    return snapshot.service_area(
        query.node, query.breaks, query.predicate, stats=ctx.stats,
        directory=ctx.directory,
    )


@register_handler(RouteKNNQuery, engine="frozen")
def _frozen_route_knn(
    snapshot: FrozenRoad, query: RouteKNNQuery, ctx: BatchContext
) -> List[ResultEntry]:
    return snapshot.route_knn(
        query.path, query.k, query.predicate, stats=ctx.stats,
        directory=ctx.directory,
    )
