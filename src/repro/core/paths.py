"""Path materialisation: turning shortcut hops back into road segments.

A shortcut "bears the shortest path SP(b, b')" (Definition 3) represented
recursively: an upper-level shortcut's via-sequence consists of child
border nodes, each consecutive pair connected by a child-level shortcut
(Lemma 2's ``S(n1, n3) = (S(n1, nd), S(nd, n3))``).  "To determine a
detailed shortest path for this shortcut, S(n1, nd) and S(nd, n3) can be
explored at nodes n1 and nd" — :func:`expand_shortcut` is that exploration,
recursing level by level until physical nodes.

:class:`PathTracer` hooks into the search algorithms to record, for every
settled node, the move (edge or shortcut) that reached it, so an answer
object's full driving route can be reconstructed after the query.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.rnet import RnetHierarchy
from repro.core.shortcuts import Shortcut, ShortcutIndex


class PathError(Exception):
    """Raised when a recorded path cannot be materialised."""


@dataclass
class PathTracer:
    """Search-side recording of winning moves.

    ``node_move[n]`` is ``(predecessor, shortcut-or-None)`` for the move
    that settled node ``n`` (None shortcut = a physical edge);
    ``object_entry[oid]`` is ``(entry node, offset)`` for the association
    through which the object was settled.
    """

    node_move: Dict[int, Tuple[int, Optional[Shortcut]]] = field(
        default_factory=dict
    )
    object_entry: Dict[int, Tuple[int, float]] = field(default_factory=dict)

    def record_node(
        self, node: int, predecessor: int, shortcut: Optional[Shortcut]
    ) -> None:
        """Remember the move that settled ``node`` (first settle wins)."""
        self.node_move.setdefault(node, (predecessor, shortcut))

    def record_object(self, object_id: int, node: int, delta: float) -> None:
        """Remember which node association settled ``object_id``."""
        self.object_entry.setdefault(object_id, (node, delta))


def expand_shortcut(
    hierarchy: RnetHierarchy, index: ShortcutIndex, shortcut: Shortcut
) -> List[int]:
    """Physical node sequence realised by a shortcut (endpoints inclusive)."""
    rnet = hierarchy.rnet(shortcut.rnet_id)
    hops = [shortcut.source, *shortcut.via, shortcut.target]
    if rnet.is_leaf:
        return hops  # via-nodes of finest Rnets are physical nodes
    out = [shortcut.source]
    for a, b in zip(hops, hops[1:]):
        # Several sibling Rnets can hold a shortcut between the same border
        # pair; the border-graph search used the cheapest, so expand that.
        candidates = [
            found
            for child_id in rnet.children
            if (found := index.lookup(a, b, child_id)) is not None
        ]
        if not candidates:
            raise PathError(
                f"no child shortcut ({a} -> {b}) under Rnet {rnet.rnet_id}"
            )
        child_shortcut = min(candidates, key=lambda s: s.distance)
        out.extend(expand_shortcut(hierarchy, index, child_shortcut)[1:])
    return out


def node_path(
    tracer: PathTracer,
    hierarchy: RnetHierarchy,
    index: ShortcutIndex,
    source: int,
    target: int,
) -> List[int]:
    """Physical node sequence from the query node to a settled node."""
    if target == source:
        return [source]
    hops: List[Tuple[int, int, Optional[Shortcut]]] = []
    current = target
    seen = {current}
    while current != source:
        move = tracer.node_move.get(current)
        if move is None:
            raise PathError(f"node {target} was not settled from {source}")
        predecessor, shortcut = move
        hops.append((predecessor, current, shortcut))
        current = predecessor
        if current in seen:
            raise PathError("predecessor cycle in trace")
        seen.add(current)
    hops.reverse()
    path = [source]
    for _predecessor, node, shortcut in hops:
        if shortcut is None:
            path.append(node)  # one physical edge
        else:
            path.extend(expand_shortcut(hierarchy, index, shortcut)[1:])
    return path


def object_path(
    tracer: PathTracer,
    hierarchy: RnetHierarchy,
    index: ShortcutIndex,
    source: int,
    object_id: int,
) -> Tuple[List[int], float]:
    """(node path to the object's entry node, remaining offset δ).

    The final approach covers ``δ`` along the object's host edge from the
    path's last node.
    """
    entry = tracer.object_entry.get(object_id)
    if entry is None:
        raise PathError(f"object {object_id} was not settled in this search")
    node, delta = entry
    return node_path(tracer, hierarchy, index, source, node), delta
