"""Object abstracts (Definition 2).

The object abstract ``O(R)`` of an Rnet summarises the objects residing on
its edges so a search can decide, at a border node, whether the Rnet can be
bypassed.  Correctness only needs *no false negatives*: if an object of
interest is inside, the abstract must say "maybe".

Section 3.4 lists implementation choices — "aggregated attribute values
[20], bloom filter [1], signature [5] can be used to represent an object
abstract with fewer storage overheads".  All are provided behind one
interface:

* :class:`ExactAbstract` — per-(attribute, value) counters; exact pruning
  for the equality-conjunction predicates of :mod:`repro.queries`.
* :class:`CountingAbstract` — object count only; prunes empty Rnets but
  never prunes on attributes (maximally compact).
* :class:`BloomAbstract` — Bloom filter over attribute tokens + count.
* :class:`SignatureAbstract` — superimposed-coding signature + count.

Bloom filters and signatures cannot delete; their ``remove`` returns False
to request a rebuild from the authoritative object list (the Association
Directory owns that).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.objects.bloom import BloomFilter
from repro.objects.model import SpatialObject
from repro.objects.signature import Signature, SignatureScheme
from repro.queries.types import Predicate
from repro.storage.codecs import INT_SIZE, str_size

#: Factory signature: builds one empty abstract.
AbstractFactory = Callable[[], "ObjectAbstract"]


class ObjectAbstract:
    """Interface: a summary of the objects inside one Rnet."""

    def add(self, obj: SpatialObject) -> None:
        """Account for a newly associated object."""
        raise NotImplementedError

    def remove(self, obj: SpatialObject) -> bool:
        """Remove an object; return False if a rebuild is required."""
        raise NotImplementedError

    def may_contain(self, predicate: Predicate) -> bool:
        """False only if *no* object satisfying ``predicate`` can be inside."""
        raise NotImplementedError

    @property
    def count(self) -> int:
        """Number of objects summarised."""
        raise NotImplementedError

    @property
    def size_bytes(self) -> int:
        """Serialized size used for page-occupancy accounting."""
        raise NotImplementedError


class CountingAbstract(ObjectAbstract):
    """Just an object count: prunes object-free Rnets, ignores attributes."""

    def __init__(self) -> None:
        self._count = 0

    def add(self, obj: SpatialObject) -> None:
        self._count += 1

    def remove(self, obj: SpatialObject) -> bool:
        if self._count <= 0:
            return False
        self._count -= 1
        return True

    def may_contain(self, predicate: Predicate) -> bool:
        return self._count > 0

    @property
    def count(self) -> int:
        return self._count

    @property
    def size_bytes(self) -> int:
        return INT_SIZE


class ExactAbstract(ObjectAbstract):
    """Aggregated attribute-value counters [20].

    Prunes an Rnet when some required (key, value) pair has no object —
    exact for single-attribute predicates, conservative (no false
    negatives) for multi-attribute conjunctions.
    """

    def __init__(self) -> None:
        self._count = 0
        self._attr_counts: Dict[str, Dict[str, int]] = {}

    def add(self, obj: SpatialObject) -> None:
        self._count += 1
        for key, value in obj.attrs.items():
            per_key = self._attr_counts.setdefault(key, {})
            per_key[value] = per_key.get(value, 0) + 1

    def remove(self, obj: SpatialObject) -> bool:
        if self._count <= 0:
            return False
        self._count -= 1
        for key, value in obj.attrs.items():
            per_key = self._attr_counts.get(key)
            if per_key is None or per_key.get(value, 0) <= 0:
                return False
            per_key[value] -= 1
            if per_key[value] == 0:
                del per_key[value]
                if not per_key:
                    del self._attr_counts[key]
        return True

    def may_contain(self, predicate: Predicate) -> bool:
        if self._count == 0:
            return False
        for key, value in predicate.required:
            if self._attr_counts.get(key, {}).get(value, 0) == 0:
                return False
        return True

    @property
    def count(self) -> int:
        return self._count

    @property
    def size_bytes(self) -> int:
        size = INT_SIZE
        for key, values in self._attr_counts.items():
            size += str_size(key)
            for value in values:
                size += str_size(value) + INT_SIZE
        return size


class BloomAbstract(ObjectAbstract):
    """Bloom filter over attribute tokens [1]; fixed-size, no deletes."""

    def __init__(self, num_bits: int = 256, num_hashes: int = 3) -> None:
        self._bloom = BloomFilter(num_bits=num_bits, num_hashes=num_hashes)
        self._count = 0

    def add(self, obj: SpatialObject) -> None:
        self._count += 1
        for key, value in obj.attrs.items():
            self._bloom.add(f"{key}={value}")

    def remove(self, obj: SpatialObject) -> bool:
        return False  # Bloom filters cannot delete: caller must rebuild

    def may_contain(self, predicate: Predicate) -> bool:
        if self._count == 0:
            return False
        return all(
            f"{key}={value}" in self._bloom
            for key, value in predicate.required
        )

    @property
    def count(self) -> int:
        return self._count

    @property
    def size_bytes(self) -> int:
        return INT_SIZE + self._bloom.size_bytes


class SignatureAbstract(ObjectAbstract):
    """Superimposed-coding signature [5]; fixed-size, no deletes."""

    def __init__(self, scheme: Optional[SignatureScheme] = None) -> None:
        self._signature = Signature(scheme or SignatureScheme())

    def add(self, obj: SpatialObject) -> None:
        self._signature.add_object(obj.attrs)

    def remove(self, obj: SpatialObject) -> bool:
        return False  # signatures cannot delete: caller must rebuild

    def may_contain(self, predicate: Predicate) -> bool:
        return self._signature.may_contain(predicate.as_dict())

    @property
    def count(self) -> int:
        return self._signature.count

    @property
    def size_bytes(self) -> int:
        return INT_SIZE + self._signature.size_bytes


def exact_abstract() -> ObjectAbstract:
    """Default factory: :class:`ExactAbstract`."""
    return ExactAbstract()


def counting_abstract() -> ObjectAbstract:
    """Factory: :class:`CountingAbstract`."""
    return CountingAbstract()


def bloom_abstract(num_bits: int = 256) -> AbstractFactory:
    """Factory-of-factories: Bloom abstracts of a given width."""

    def make() -> ObjectAbstract:
        return BloomAbstract(num_bits=num_bits)

    return make


def signature_abstract(scheme: Optional[SignatureScheme] = None) -> AbstractFactory:
    """Factory-of-factories: signature abstracts sharing one scheme."""
    shared = scheme or SignatureScheme()

    def make() -> ObjectAbstract:
        return SignatureAbstract(shared)

    return make
