"""ROAD core: Rnet hierarchy, shortcuts, Route Overlay, Association Directory."""

from repro.core.aggregate import AGGREGATES, aggregate_knn, aggregate_knn_generic
from repro.core.association_directory import AssociationDirectory, DirectoryError
from repro.core.framework import ROAD, BuildReport, DEFAULT_DIRECTORY, RoutedResult
from repro.core.frozen import FrozenRoad, FrozenRoadError, freeze_road
from repro.core.paths import PathError, PathTracer, expand_shortcut, node_path, object_path
from repro.core.serialize import SerializeError, load_road, save_road
from repro.core.maintenance import (
    MaintenanceError,
    MaintenanceReport,
    add_edge,
    change_edge_distance,
    remove_edge,
)
from repro.core.object_abstract import (
    BloomAbstract,
    CountingAbstract,
    ExactAbstract,
    ObjectAbstract,
    SignatureAbstract,
    bloom_abstract,
    counting_abstract,
    exact_abstract,
    signature_abstract,
)
from repro.core.rnet import HierarchyError, Rnet, RnetHierarchy
from repro.core.route_overlay import RouteOverlay, RouteOverlayError
from repro.core.search import (
    AbstractCache,
    SearchStats,
    choose_path,
    iter_nearest_objects,
    knn_search,
    range_search,
)
from repro.core.shortcut_tree import (
    ShortcutTree,
    ShortcutTreeEntry,
    build_shortcut_tree,
)
from repro.core.shortcuts import (
    Shortcut,
    ShortcutIndex,
    build_shortcuts,
    compute_rnet_shortcuts,
    reduce_shortcuts,
)

__all__ = [
    "AGGREGATES",
    "AbstractCache",
    "AssociationDirectory",
    "BloomAbstract",
    "BuildReport",
    "CountingAbstract",
    "DEFAULT_DIRECTORY",
    "DirectoryError",
    "ExactAbstract",
    "FrozenRoad",
    "FrozenRoadError",
    "HierarchyError",
    "MaintenanceError",
    "MaintenanceReport",
    "ObjectAbstract",
    "ROAD",
    "Rnet",
    "RnetHierarchy",
    "PathError",
    "PathTracer",
    "RouteOverlay",
    "RouteOverlayError",
    "RoutedResult",
    "SerializeError",
    "SearchStats",
    "Shortcut",
    "ShortcutIndex",
    "ShortcutTree",
    "ShortcutTreeEntry",
    "SignatureAbstract",
    "add_edge",
    "aggregate_knn",
    "bloom_abstract",
    "build_shortcut_tree",
    "build_shortcuts",
    "change_edge_distance",
    "choose_path",
    "compute_rnet_shortcuts",
    "counting_abstract",
    "exact_abstract",
    "freeze_road",
    "expand_shortcut",
    "iter_nearest_objects",
    "knn_search",
    "load_road",
    "node_path",
    "object_path",
    "range_search",
    "reduce_shortcuts",
    "remove_edge",
    "save_road",
]
