"""Rnets and the Rnet hierarchy.

Definition 1: an Rnet ``R = (N_R, E_R, B_R)`` is a search subspace — a set
of edges, the nodes they touch, and the *border nodes*: nodes that also have
incident edges outside ``E_R`` ("the entrance and exit of an Rnet").

Section 3.3 structures the whole network as a hierarchy: the level-0 Rnet is
the network itself; each Rnet is partitioned (Definition 4) into ``p`` child
Rnets per level.  :class:`RnetHierarchy` materialises that structure from a
:class:`~repro.partition.hierarchy.PartitionNode` tree and maintains it
under network changes (Section 5.2.2: border promotion/demotion).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set

from repro.graph.network import EdgeKey, RoadNetwork, edge_key
from repro.partition.hierarchy import PartitionNode


class HierarchyError(Exception):
    """Raised when hierarchy invariants are violated."""


@dataclass
class Rnet:
    """One regional sub-network (Definition 1)."""

    rnet_id: int
    level: int
    edges: Set[EdgeKey]
    nodes: Set[int]
    border: Set[int]
    parent: Optional[int] = None
    children: List[int] = field(default_factory=list)

    @property
    def is_leaf(self) -> bool:
        """True for finest Rnets (no children)."""
        return not self.children

    @property
    def is_root(self) -> bool:
        """True for the level-0 Rnet (the whole network)."""
        return self.parent is None


class RnetHierarchy:
    """The Rnet hierarchy over a road network.

    Parameters
    ----------
    network:
        The underlying road network; the hierarchy keeps a reference (not a
        copy) and must be told about structural changes through its
        mutation methods.
    partition_tree:
        Edge-set tree from :mod:`repro.partition`; node/border sets are
        derived here per Definitions 1 and 4.
    """

    def __init__(self, network: RoadNetwork, partition_tree: PartitionNode) -> None:
        self.network = network
        self._rnets: Dict[int, Rnet] = {}
        self._leaf_of_edge: Dict[EdgeKey, int] = {}
        self._levels: Dict[int, List[int]] = {}
        self._build(partition_tree)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build(self, tree: PartitionNode) -> None:
        for part in tree.descendants():
            edges = set(part.edges)
            nodes = _incident(edges)
            rnet = Rnet(part.part_id, part.level, edges, nodes, set())
            self._rnets[rnet.rnet_id] = rnet
            self._levels.setdefault(part.level, []).append(rnet.rnet_id)
            for child in part.children:
                rnet.children.append(child.part_id)
            if part.is_leaf:
                for edge in edges:
                    self._leaf_of_edge[edge] = rnet.rnet_id
        for rnet in self._rnets.values():
            for child_id in rnet.children:
                self._rnets[child_id].parent = rnet.rnet_id
        self._root_id = tree.part_id
        for rnet in self._rnets.values():
            rnet.border = self._compute_border(rnet)

    def _compute_border(self, rnet: Rnet) -> Set[int]:
        """B_R: nodes of R with at least one incident edge outside E_R."""
        border: Set[int] = set()
        for node in rnet.nodes:
            degree_in = 0
            for neighbour, _ in self.network.neighbours(node):
                if edge_key(node, neighbour) in rnet.edges:
                    degree_in += 1
            if degree_in < self.network.degree(node):
                border.add(node)
        return border

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    @property
    def root(self) -> Rnet:
        """The level-0 Rnet (whole network, no border nodes)."""
        return self._rnets[self._root_id]

    @property
    def num_levels(self) -> int:
        """Deepest level ``l`` (root is level 0)."""
        return max(self._levels)

    def rnet(self, rnet_id: int) -> Rnet:
        """Rnet by id."""
        try:
            return self._rnets[rnet_id]
        except KeyError:
            raise HierarchyError(f"no Rnet {rnet_id}") from None

    def rnets(self) -> Iterator[Rnet]:
        """All Rnets, root first (ids are in creation order)."""
        return iter(self._rnets.values())

    def at_level(self, level: int) -> List[Rnet]:
        """All Rnets at a given level."""
        return [self._rnets[i] for i in self._levels.get(level, [])]

    def leaves(self) -> List[Rnet]:
        """All finest Rnets."""
        return [r for r in self._rnets.values() if r.is_leaf]

    def leaf_of_edge(self, u: int, v: int) -> Rnet:
        """The finest Rnet enclosing edge (u, v)."""
        key = edge_key(u, v)
        try:
            return self._rnets[self._leaf_of_edge[key]]
        except KeyError:
            raise HierarchyError(f"edge {key} not in any leaf Rnet") from None

    def ancestors(self, rnet_id: int) -> List[Rnet]:
        """Chain from the Rnet itself up to (and including) the root."""
        chain = [self.rnet(rnet_id)]
        while chain[-1].parent is not None:
            chain.append(self._rnets[chain[-1].parent])
        return chain

    def rnets_containing(self, node: int) -> List[Rnet]:
        """All Rnets whose node set contains ``node``, top-down."""
        found = []
        stack = [self.root]
        while stack:
            rnet = stack.pop()
            if node in rnet.nodes:
                found.append(rnet)
                stack.extend(self._rnets[c] for c in rnet.children)
        found.sort(key=lambda r: r.level)
        return found

    def border_roots(self, node: int) -> List[Rnet]:
        """Shortcut-tree roots for ``node`` (Section 3.4).

        The children of the deepest Rnet that contains ``node`` as an
        *interior* node: the highest-level Rnets for which the node is a
        border node.  Empty for non-border nodes (their tree is a single
        leaf of physical edges).
        """
        current = self.root
        while True:
            holders = [
                self._rnets[c]
                for c in current.children
                if node in self._rnets[c].nodes
            ]
            if not holders:
                return []  # `current` is a leaf: node is interior everywhere
            if len(holders) == 1 and node not in holders[0].border:
                current = holders[0]
                continue
            return sorted(holders, key=lambda r: r.rnet_id)

    def home_leaf(self, node: int) -> Rnet:
        """The unique finest Rnet of a non-border (interior) node."""
        current = self.root
        while current.children:
            holders = [
                self._rnets[c]
                for c in current.children
                if node in self._rnets[c].nodes
            ]
            if len(holders) != 1:
                raise HierarchyError(f"node {node} is a border node")
            current = holders[0]
        return current

    def is_border(self, node: int, rnet_id: int) -> bool:
        """True if ``node`` is a border node of the given Rnet."""
        return node in self.rnet(rnet_id).border

    # ------------------------------------------------------------------
    # Mutation (Section 5.2.2 support; shortcuts are refreshed separately)
    # ------------------------------------------------------------------
    def add_edge(self, u: int, v: int, leaf_rnet_id: Optional[int] = None) -> Rnet:
        """Register a new network edge with the hierarchy.

        The edge joins the leaf Rnet ``leaf_rnet_id`` (default: a leaf Rnet
        already containing one endpoint — Case 1/2 of Section 5.2.2); node
        and border sets along the ancestor chain are updated, including
        border promotion of an endpoint that lies in a different Rnet.

        Returns the leaf Rnet the edge joined.
        """
        key = edge_key(u, v)
        if key in self._leaf_of_edge:
            raise HierarchyError(f"edge {key} already registered")
        if not self.network.has_edge(u, v):
            raise HierarchyError(f"edge {key} missing from the network")
        if leaf_rnet_id is None:
            leaf = self._default_leaf_for(u, v)
        else:
            leaf = self.rnet(leaf_rnet_id)
            if not leaf.is_leaf:
                raise HierarchyError(f"Rnet {leaf_rnet_id} is not a leaf")
        self._leaf_of_edge[key] = leaf.rnet_id
        for rnet in self.ancestors(leaf.rnet_id):
            rnet.edges.add(key)
            rnet.nodes.add(u)
            rnet.nodes.add(v)
        self._refresh_borders_around(u, v)
        return leaf

    def remove_edge(self, u: int, v: int) -> Rnet:
        """Unregister an edge (already removed from the network).

        Nodes left with no incident edge in an Rnet are dropped from its
        node set; border sets are refreshed (border demotion, Fig 12(b)).
        Returns the leaf Rnet the edge belonged to.
        """
        key = edge_key(u, v)
        if key not in self._leaf_of_edge:
            raise HierarchyError(f"edge {key} not registered")
        if self.network.has_edge(u, v):
            raise HierarchyError(f"edge {key} still present in the network")
        leaf = self._rnets[self._leaf_of_edge.pop(key)]
        for rnet in self.ancestors(leaf.rnet_id):
            rnet.edges.discard(key)
            for node in (u, v):
                if not any(
                    edge_key(node, nbr) in rnet.edges
                    for nbr, _ in self.network.neighbours(node)
                ):
                    rnet.nodes.discard(node)
                    rnet.border.discard(node)
        self._refresh_borders_around(u, v)
        return leaf

    def _default_leaf_for(self, u: int, v: int) -> Rnet:
        """Pick the leaf Rnet a new edge joins: prefer one containing u."""
        for node in (u, v):
            for rnet in reversed(self.rnets_containing(node)):
                if rnet.is_leaf:
                    return rnet
        raise HierarchyError(
            f"neither endpoint of ({u}, {v}) is known to the hierarchy"
        )

    def _refresh_borders_around(self, u: int, v: int) -> None:
        """Recompute border membership of u and v in every Rnet holding them."""
        for node in (u, v):
            for rnet in self.rnets_containing(node):
                degree_in = sum(
                    1
                    for nbr, _ in self.network.neighbours(node)
                    if edge_key(node, nbr) in rnet.edges
                )
                if 0 < degree_in < self.network.degree(node):
                    rnet.border.add(node)
                else:
                    rnet.border.discard(node)

    # ------------------------------------------------------------------
    # Validation (used heavily in tests)
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check Definitions 1 and 4 across the whole hierarchy."""
        root = self.root
        network_edges = {edge_key(u, v) for u, v, _ in self.network.edges()}
        if root.edges != network_edges:
            raise HierarchyError("root Rnet does not cover the network")
        if root.border:
            raise HierarchyError("root Rnet must have no border nodes")
        for rnet in self._rnets.values():
            if rnet.nodes != _incident(rnet.edges):
                raise HierarchyError(f"Rnet {rnet.rnet_id}: node set mismatch")
            expected_border = self._compute_border(rnet)
            if rnet.border != expected_border:
                raise HierarchyError(
                    f"Rnet {rnet.rnet_id}: border {sorted(rnet.border)} != "
                    f"expected {sorted(expected_border)}"
                )
            if rnet.children:
                child_edges: Set[EdgeKey] = set()
                total = 0
                for child_id in rnet.children:
                    child = self._rnets[child_id]
                    if child.parent != rnet.rnet_id:
                        raise HierarchyError("parent/child link broken")
                    if child.level != rnet.level + 1:
                        raise HierarchyError("child level must be parent + 1")
                    child_edges |= child.edges
                    total += len(child.edges)
                if child_edges != rnet.edges or total != len(rnet.edges):
                    raise HierarchyError(
                        f"Rnet {rnet.rnet_id}: children do not partition edges"
                    )
                # Definition 4 condition 3: a child's border nodes are shared
                # with the parent's border or with sibling node sets.
                for child_id in rnet.children:
                    child = self._rnets[child_id]
                    siblings: Set[int] = set()
                    for other_id in rnet.children:
                        if other_id != child_id:
                            siblings |= self._rnets[other_id].nodes
                    allowed = rnet.border | siblings
                    if not child.border <= allowed:
                        raise HierarchyError(
                            f"Rnet {child_id}: border escapes parent/siblings"
                        )

    def stats(self) -> Dict[str, float]:
        """Hierarchy shape summary for reports."""
        leaves = self.leaves()
        borders = [len(r.border) for r in self._rnets.values() if not r.is_root]
        return {
            "rnets": len(self._rnets),
            "levels": self.num_levels,
            "leaves": len(leaves),
            "avg_leaf_edges": (
                sum(len(r.edges) for r in leaves) / len(leaves) if leaves else 0.0
            ),
            "avg_border": sum(borders) / len(borders) if borders else 0.0,
            "max_border": max(borders) if borders else 0,
        }


def _incident(edges: Set[EdgeKey]) -> Set[int]:
    nodes: Set[int] = set()
    for u, v in edges:
        nodes.add(u)
        nodes.add(v)
    return nodes
