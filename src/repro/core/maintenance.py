"""ROAD framework maintenance (Section 5).

Object changes touch only the Association Directory (Section 5.1) and are
implemented there.  This module handles *network* changes on the Route
Overlay side (Section 5.2):

* **Edge-distance change** — the filtering-and-refreshing scheme: identify
  the shortcuts of the enclosing finest Rnet that can be affected (filter),
  recompute only when needed (refresh), and propagate to the parent level
  only if some shortcut actually changed (Lemma 2's dependency).  Because
  a shortcut never leaves its Rnet (the constructive form of Definition 3
  built by Lemma 2), only the ancestor chain of the changed edge's leaf
  Rnet can be affected — the contrapositive of Lemma 3.
* **Edge addition/deletion** — modelled as distance changes plus border
  promotion/demotion (Section 5.2.2), updating the hierarchy's node and
  border sets and rebuilding the affected shortcut trees.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.graph.network import EdgeKey, RoadNetwork, edge_key
from repro.graph.shortest_path import dijkstra_distances
from repro.core.rnet import Rnet, RnetHierarchy
from repro.core.route_overlay import RouteOverlay
from repro.core.shortcuts import (
    ShortcutIndex,
    compute_rnet_shortcuts,
    _leaf_adjacency,
)
from repro.objects.model import SpatialObject

_REL_TOL = 1e-9


class MaintenanceError(Exception):
    """Raised on invalid network updates."""


@dataclass
class MaintenanceReport:
    """What one update did — the quantities Figures 15/16 measure.

    Besides the counters, a report carries the *identities* of everything
    the update touched: the Route Overlay entries rebuilt
    (``dirty_nodes``), the Rnets whose shortcut sets changed
    (``dirty_rnets``), and — for object churn — the object and the Rnet
    chain whose abstracts changed.  Those identities are what lets a
    compiled snapshot (:meth:`repro.core.frozen.FrozenRoad.apply`) patch
    only the affected CSR spans instead of recompiling the whole network.
    """

    #: What happened: ``edge_distance`` / ``add_edge`` / ``remove_edge``
    #: for network maintenance, ``insert_object`` / ``delete_object`` /
    #: ``update_object`` for directory maintenance (Section 5.1).
    kind: str = "edge_distance"
    filtered_rnets: int = 0      # Rnets whose shortcuts were filter-checked
    refreshed_rnets: int = 0     # Rnets whose shortcut sets were recomputed
    changed_rnets: int = 0       # Rnets whose shortcut distances changed
    refreshed_tree_nodes: int = 0  # Route Overlay entries rebuilt
    levels_touched: int = 0      # hierarchy levels the update propagated to
    promoted_borders: List[int] = field(default_factory=list)
    demoted_borders: List[int] = field(default_factory=list)
    #: The edge the update concerns (canonical key), when it has one.
    edge: Optional[EdgeKey] = None
    #: Identities of the Route Overlay entries rebuilt by this update.
    dirty_nodes: Set[int] = field(default_factory=set)
    #: Identities of the Rnets whose shortcut sets (network updates) or
    #: object abstracts (object updates) changed.
    dirty_rnets: Set[int] = field(default_factory=set)
    #: The object inserted/removed, for object-churn reports.
    obj: Optional[SpatialObject] = None
    #: The Association Directory the object churn happened in (None for
    #: network maintenance, which touches every attached directory alike).
    #: Lets a multi-directory snapshot patch only the churned provider's
    #: object spans and abstract slots.
    directory: Optional[str] = None

    @property
    def structural(self) -> bool:
        """True when the update changed border sets or network structure.

        Structural updates invalidate the shape of compiled shortcut-tree
        spans, so a snapshot patcher must fall back to a full recompile.
        """
        return (
            self.kind in ("add_edge", "remove_edge")
            or bool(self.promoted_borders)
            or bool(self.demoted_borders)
        )


def change_edge_distance(
    network: RoadNetwork,
    hierarchy: RnetHierarchy,
    shortcuts: ShortcutIndex,
    overlay: RouteOverlay,
    u: int,
    v: int,
    new_distance: float,
) -> MaintenanceReport:
    """Apply an edge-distance change with filtering-and-refreshing."""
    if new_distance <= 0:
        raise MaintenanceError("edge distance must stay positive")
    report = MaintenanceReport(kind="edge_distance", edge=edge_key(u, v))
    old_distance = network.update_edge(u, v, new_distance)
    leaf = hierarchy.leaf_of_edge(u, v)
    if math.isclose(old_distance, new_distance, rel_tol=_REL_TOL):
        # The physical edge record still changed representation-wise.
        overlay.refresh_nodes([u, v])
        report.refreshed_tree_nodes = 2
        report.dirty_nodes = {u, v}
        return report

    dirty_nodes: Set[int] = {u, v}
    chain = hierarchy.ancestors(leaf.rnet_id)
    child_changed = True
    for rnet in chain:
        if rnet.is_root:
            break
        report.levels_touched += 1
        if rnet.is_leaf:
            report.filtered_rnets += 1
            affected = _filter_leaf_shortcuts(
                network, shortcuts, rnet, u, v, old_distance, new_distance
            )
            if not affected:
                child_changed = False
                break
            changed = _refresh_rnet(network, hierarchy, shortcuts, rnet)
            report.refreshed_rnets += 1
        else:
            if not child_changed:
                break  # Lemma 2: parents depend only on child shortcuts
            changed = _refresh_rnet(network, hierarchy, shortcuts, rnet)
            report.refreshed_rnets += 1
        if changed:
            report.changed_rnets += 1
            report.dirty_rnets.add(rnet.rnet_id)
            dirty_nodes |= rnet.border
        child_changed = changed
        if not changed:
            break

    overlay.refresh_nodes(dirty_nodes)
    report.refreshed_tree_nodes = len(dirty_nodes)
    report.dirty_nodes = dirty_nodes
    return report


def add_edge(
    network: RoadNetwork,
    hierarchy: RnetHierarchy,
    shortcuts: ShortcutIndex,
    overlay: RouteOverlay,
    u: int,
    v: int,
    distance: float,
    *,
    coords: Optional[Dict[int, Tuple[float, float]]] = None,
) -> MaintenanceReport:
    """Add a road segment (Section 5.2.2, 'Addition of a new edge').

    Unknown endpoints are created as new nodes (``coords`` supplies their
    positions).  The edge joins a leaf Rnet containing one endpoint; an
    endpoint from a different Rnet is promoted to border node and receives
    fresh shortcuts.
    """
    report = MaintenanceReport(kind="add_edge", edge=edge_key(u, v))
    for node in (u, v):
        if not network.has_node(node):
            if coords is None or node not in coords:
                raise MaintenanceError(
                    f"new node {node} needs coordinates"
                )
            x, y = coords[node]
            network.add_node(node, x, y)
    border_before = _border_snapshot(hierarchy, {u, v})
    network.add_edge(u, v, distance)
    hierarchy.add_edge(u, v)
    report.promoted_borders = _promotions(hierarchy, border_before, {u, v})

    # A cross-Rnet edge changes border sets in *both* endpoints' Rnet
    # chains (the promoted node needs shortcuts inside its own Rnets too),
    # so every Rnet containing u or v is refreshed, deepest level first.
    dirty = _refresh_around_nodes(network, hierarchy, shortcuts, {u, v}, report)
    dirty |= {u, v}
    # Promotion changes the shortcut trees of every border of the Rnets the
    # promoted node now borders.
    for node in report.promoted_borders:
        for rnet in hierarchy.rnets_containing(node):
            if node in rnet.border:
                dirty |= rnet.border
    overlay.refresh_nodes(dirty)
    report.refreshed_tree_nodes = len(dirty)
    report.dirty_nodes = dirty
    return report


def remove_edge(
    network: RoadNetwork,
    hierarchy: RnetHierarchy,
    shortcuts: ShortcutIndex,
    overlay: RouteOverlay,
    u: int,
    v: int,
) -> MaintenanceReport:
    """Delete a road segment (Section 5.2.2, 'Deletion of an existing edge').

    Border nodes whose external edges disappear are demoted (Fig 12(b):
    ``n_g`` after deleting ``(n_f, n_g)``).
    """
    report = MaintenanceReport(kind="remove_edge", edge=edge_key(u, v))
    border_before = _border_snapshot(hierarchy, {u, v})
    network.remove_edge(u, v)
    hierarchy.remove_edge(u, v)
    report.demoted_borders = _demotions(hierarchy, border_before, {u, v})

    dirty = _refresh_around_nodes(network, hierarchy, shortcuts, {u, v}, report)
    dirty |= {u, v}
    for node in report.demoted_borders:
        for rnet in hierarchy.rnets_containing(node):
            dirty |= rnet.border
            dirty.add(node)
    overlay.refresh_nodes(n for n in dirty if network.has_node(n))
    report.refreshed_tree_nodes = len(dirty)
    report.dirty_nodes = {n for n in dirty if network.has_node(n)}
    return report


# ---------------------------------------------------------------------------
# Internals
# ---------------------------------------------------------------------------

def _filter_leaf_shortcuts(
    network: RoadNetwork,
    shortcuts: ShortcutIndex,
    rnet: Rnet,
    u: int,
    v: int,
    old_distance: float,
    new_distance: float,
) -> List[Tuple[int, int]]:
    """The 'filtering' step: shortcut pairs that may be invalidated.

    Increase: a shortcut is affected iff its stored distance equals a path
    through (u, v) *at the old weight*.  Decrease: iff the new weight opens
    a path shorter than the stored distance.  Distances from u and v to the
    Rnet's borders are found by two in-Rnet Dijkstras (Fig 12(a)).
    """
    increase = new_distance > old_distance
    # For the increase test the detour distances must be measured with the
    # old weight; override the single changed edge.
    base = _leaf_adjacency(network, rnet)
    override = old_distance if increase else new_distance

    def adjacency(node: int) -> Iterator[Tuple[int, float]]:
        for neighbour, distance in base(node):
            if edge_key(node, neighbour) == edge_key(u, v):
                yield neighbour, override
            else:
                yield neighbour, distance

    from_u = dijkstra_distances(adjacency, u, targets=set(rnet.border))
    from_v = dijkstra_distances(adjacency, v, targets=set(rnet.border))
    edge_term = old_distance if increase else new_distance

    affected: List[Tuple[int, int]] = []
    for shortcut in shortcuts.of_rnet(rnet.rnet_id):
        b, b2 = shortcut.source, shortcut.target
        candidates = []
        if b in from_u and b2 in from_v:
            candidates.append(from_u[b] + edge_term + from_v[b2])
        if b in from_v and b2 in from_u:
            candidates.append(from_v[b] + edge_term + from_u[b2])
        if not candidates:
            continue
        through = min(candidates)
        if increase:
            if through <= shortcut.distance * (1 + _REL_TOL):
                affected.append((b, b2))
        else:
            if through < shortcut.distance * (1 - _REL_TOL):
                affected.append((b, b2))
    return affected


def _refresh_rnet(
    network: RoadNetwork,
    hierarchy: RnetHierarchy,
    shortcuts: ShortcutIndex,
    rnet: Rnet,
) -> bool:
    """The 'refreshing' step: recompute one Rnet's shortcut set.

    Returns True if any pair's distance changed (or pairs appeared or
    disappeared), which is the propagation condition for the parent level.
    """
    before = shortcuts.distances_of_rnet(rnet.rnet_id)
    fresh = compute_rnet_shortcuts(network, hierarchy, shortcuts, rnet)
    shortcuts.replace_rnet(rnet.rnet_id, fresh)
    after = shortcuts.distances_of_rnet(rnet.rnet_id)
    if before.keys() != after.keys():
        return True
    return any(
        not math.isclose(before[pair], after[pair], rel_tol=_REL_TOL)
        for pair in before
    )


def _refresh_around_nodes(
    network: RoadNetwork,
    hierarchy: RnetHierarchy,
    shortcuts: ShortcutIndex,
    nodes: Set[int],
    report: MaintenanceReport,
) -> Set[int]:
    """Refresh every Rnet containing one of ``nodes``; return dirty nodes.

    Structure changes can alter border sets in the Rnet chains of both
    endpoints, so all their Rnets are recomputed, deepest level first
    (parent border graphs depend on child shortcuts, Lemma 2).
    """
    affected: Dict[int, Rnet] = {}
    for node in nodes:
        for rnet in hierarchy.rnets_containing(node):
            if not rnet.is_root:
                affected[rnet.rnet_id] = rnet
    dirty: Set[int] = set()
    levels = set()
    for rnet in sorted(affected.values(), key=lambda r: -r.level):
        changed = _refresh_rnet(network, hierarchy, shortcuts, rnet)
        report.refreshed_rnets += 1
        levels.add(rnet.level)
        if changed:
            report.changed_rnets += 1
            report.dirty_rnets.add(rnet.rnet_id)
            dirty |= rnet.border
    report.levels_touched += len(levels)
    return dirty


def _border_snapshot(
    hierarchy: RnetHierarchy, nodes: Set[int]
) -> Dict[int, Set[int]]:
    """rnet_id -> border-membership of the watched nodes, before a change."""
    snapshot: Dict[int, Set[int]] = {}
    for node in nodes:
        for rnet in hierarchy.rnets_containing(node):
            snapshot.setdefault(rnet.rnet_id, set())
            if node in rnet.border:
                snapshot[rnet.rnet_id].add(node)
    return snapshot


def _promotions(
    hierarchy: RnetHierarchy, before: Dict[int, Set[int]], nodes: Set[int]
) -> List[int]:
    """Nodes that newly became border nodes of some Rnet."""
    promoted: Set[int] = set()
    for node in nodes:
        for rnet in hierarchy.rnets_containing(node):
            was = node in before.get(rnet.rnet_id, set())
            if not was and node in rnet.border:
                promoted.add(node)
    return sorted(promoted)


def _demotions(
    hierarchy: RnetHierarchy, before: Dict[int, Set[int]], nodes: Set[int]
) -> List[int]:
    """Nodes that stopped being border nodes of some Rnet."""
    demoted: Set[int] = set()
    for node in nodes:
        for rnet in hierarchy.rnets_containing(node):
            was = node in before.get(rnet.rnet_id, set())
            if was and node not in rnet.border:
                demoted.add(node)
    return sorted(demoted)
