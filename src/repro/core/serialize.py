"""Index persistence: save a built ROAD framework to bytes and reload it.

Partitioning and shortcut computation dominate build time (Figure 19's
index-time curve); persisting them lets a deployment reopen an index in
seconds.  The on-disk format reuses the record codecs of
:mod:`repro.storage.codecs`, so the same layouts that drive page-occupancy
accounting also round-trip through real bytes.

Format (little-endian, section order fixed)::

    magic "ROADIDX1" | metric | reduce-flag
    nodes   : count, then (id, x, y) records
    edges   : count, then (u, v, distance) triples
    rnets   : count, then (id, level, child-ids, edge-pair list)
    shortcuts: count, then (source, target, rnet, distance, via list)
    directories: count, then name + object records (with host edges)

Attached directories are saved with their objects; abstracts are rebuilt on
load (they are derived data), using the factory given to :func:`load_road`.
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import BinaryIO, Dict, List, Union

from repro.core.framework import ROAD, BuildReport
from repro.core.object_abstract import AbstractFactory, exact_abstract
from repro.core.rnet import RnetHierarchy
from repro.core.route_overlay import RouteOverlay
from repro.core.shortcuts import Shortcut, ShortcutIndex
from repro.graph.network import RoadNetwork
from repro.objects.model import ObjectSet, SpatialObject
from repro.partition.hierarchy import PartitionNode
from repro.storage import codecs
from repro.storage.pager import PageManager

MAGIC = b"ROADIDX1"
_U32 = struct.Struct("<I")

PathLike = Union[str, Path]


class SerializeError(Exception):
    """Raised on malformed index files."""


# ---------------------------------------------------------------------------
# Saving
# ---------------------------------------------------------------------------

def save_road(road: ROAD, path: PathLike) -> int:
    """Write a built framework to ``path``; returns bytes written."""
    with open(path, "wb") as handle:
        return _write(road, handle)


def _write(road: ROAD, out: BinaryIO) -> int:
    written = out.write(MAGIC)
    written += out.write(codecs.encode_str(road.network.metric))
    written += out.write(bytes([1 if road.shortcuts.reduce else 0]))

    network = road.network
    written += out.write(_U32.pack(network.num_nodes))
    for node in sorted(network.node_ids()):
        x, y = network.coords(node)
        written += out.write(codecs.encode_node_record(node, x, y))

    edges = sorted(network.edges())
    written += out.write(_U32.pack(len(edges)))
    for u, v, distance in edges:
        written += out.write(codecs.encode_int(u))
        written += out.write(codecs.encode_int(v))
        written += out.write(codecs.encode_float(distance))

    rnets = sorted(road.hierarchy.rnets(), key=lambda r: r.rnet_id)
    written += out.write(_U32.pack(len(rnets)))
    for rnet in rnets:
        written += out.write(codecs.encode_int(rnet.rnet_id))
        written += out.write(codecs.encode_int(rnet.level))
        written += out.write(codecs.encode_int_list(sorted(rnet.children)))
        flat: List[int] = []
        for u, v in sorted(rnet.edges) if rnet.is_leaf else []:
            flat.extend((u, v))
        written += out.write(codecs.encode_int_list(flat))

    shortcuts = [
        shortcut
        for rnet in rnets
        for shortcut in road.shortcuts.of_rnet(rnet.rnet_id)
    ]
    written += out.write(_U32.pack(len(shortcuts)))
    for shortcut in shortcuts:
        written += out.write(codecs.encode_int(shortcut.source))
        written += out.write(
            codecs.encode_shortcut(
                shortcut.target,
                shortcut.distance,
                shortcut.rnet_id,
                list(shortcut.via),
            )
        )

    names = road.directory_names
    written += out.write(_U32.pack(len(names)))
    for name in names:
        directory = road.directory(name)
        written += out.write(codecs.encode_str(name))
        written += out.write(_U32.pack(directory.object_count))
        for obj in directory.objects:
            written += out.write(
                codecs.encode_object_record(
                    obj.object_id, obj.edge[0], obj.delta, obj.attrs
                )
            )
            written += out.write(codecs.encode_int(obj.edge[1]))
    return written


# ---------------------------------------------------------------------------
# Loading
# ---------------------------------------------------------------------------

def load_road(
    path: PathLike,
    *,
    buffer_pages: int = 50,
    abstract_factory: AbstractFactory = exact_abstract,
) -> ROAD:
    """Reload a framework saved by :func:`save_road`.

    The Route Overlay pages and directory abstracts are rebuilt (cheap);
    the persisted partitioning and shortcut sets are reused as-is.
    """
    data = Path(path).read_bytes()
    if data[: len(MAGIC)] != MAGIC:
        raise SerializeError(f"{path}: not a ROAD index file")
    offset = len(MAGIC)
    metric, offset = codecs.decode_str(data, offset)
    reduce_flag = bool(data[offset])
    offset += 1

    network = RoadNetwork(metric=metric)
    (count,) = _U32.unpack_from(data, offset)
    offset += _U32.size
    for _ in range(count):
        (node, x, y), offset = codecs.decode_node_record(data, offset)
        network.add_node(node, x, y)
    (count,) = _U32.unpack_from(data, offset)
    offset += _U32.size
    for _ in range(count):
        u, offset = codecs.decode_int(data, offset)
        v, offset = codecs.decode_int(data, offset)
        distance, offset = codecs.decode_float(data, offset)
        network.add_edge(u, v, distance)

    (count,) = _U32.unpack_from(data, offset)
    offset += _U32.size
    records = []
    for _ in range(count):
        rnet_id, offset = codecs.decode_int(data, offset)
        level, offset = codecs.decode_int(data, offset)
        children, offset = codecs.decode_int_list(data, offset)
        flat, offset = codecs.decode_int_list(data, offset)
        edges = frozenset(
            (flat[i], flat[i + 1]) for i in range(0, len(flat), 2)
        )
        records.append((rnet_id, level, children, edges))
    tree = _rebuild_tree(records)
    hierarchy = RnetHierarchy(network, tree)

    shortcuts = ShortcutIndex(reduce=reduce_flag)
    (count,) = _U32.unpack_from(data, offset)
    offset += _U32.size
    for _ in range(count):
        source, offset = codecs.decode_int(data, offset)
        (target, rnet_id, distance, via), offset = codecs.decode_shortcut(
            data, offset
        )
        shortcuts.put(Shortcut(source, target, rnet_id, distance, tuple(via)))

    pager = PageManager(buffer_pages=buffer_pages, name="road")
    overlay = RouteOverlay(pager, network, hierarchy, shortcuts)
    road = ROAD(network, hierarchy, shortcuts, overlay, pager, BuildReport())

    (count,) = _U32.unpack_from(data, offset)
    offset += _U32.size
    for _ in range(count):
        name, offset = codecs.decode_str(data, offset)
        (obj_count,) = _U32.unpack_from(data, offset)
        offset += _U32.size
        objects = ObjectSet()
        for _ in range(obj_count):
            (oid, u, delta, attrs), offset = codecs.decode_object_record(
                data, offset
            )
            v, offset = codecs.decode_int(data, offset)
            objects.add(SpatialObject(oid, (u, v), delta, attrs))
        road.attach_objects(
            objects, name=name, abstract_factory=abstract_factory
        )
    return road


def _rebuild_tree(records) -> PartitionNode:
    """Reassemble the PartitionNode tree from flat Rnet records.

    Leaf records carry their edge sets; internal edge sets are the unions
    of their children (Definition 4), rebuilt bottom-up.
    """
    by_id: Dict[int, PartitionNode] = {}
    children_of: Dict[int, List[int]] = {}
    child_ids = set()
    for rnet_id, level, children, edges in records:
        by_id[rnet_id] = PartitionNode(rnet_id, level, edges)
        children_of[rnet_id] = children
        child_ids.update(children)
    roots = [rid for rid, _, _, _ in records if rid not in child_ids]
    if len(roots) != 1:
        raise SerializeError(f"expected one root Rnet, found {len(roots)}")

    def attach(rnet_id: int) -> frozenset:
        node = by_id[rnet_id]
        if not children_of[rnet_id]:
            return node.edges
        union = set()
        for child_id in children_of[rnet_id]:
            node.children.append(by_id[child_id])
            union |= attach(child_id)
        node.edges = frozenset(union)
        return node.edges

    attach(roots[0])
    return by_id[roots[0]]
