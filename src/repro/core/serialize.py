"""Index persistence: save a built ROAD framework to bytes and reload it.

Partitioning and shortcut computation dominate build time (Figure 19's
index-time curve); persisting them lets a deployment reopen an index in
seconds.  The on-disk format reuses the record codecs of
:mod:`repro.storage.codecs`, so the same layouts that drive page-occupancy
accounting also round-trip through real bytes.

Format (little-endian, section order fixed)::

    magic "ROADIDX1" | metric | reduce-flag
    nodes   : count, then (id, x, y) records
    edges   : count, then (u, v, distance) triples
    rnets   : count, then (id, level, child-ids, edge-pair list)
    shortcuts: count, then (source, target, rnet, distance, via list)
    directories: count, then name + object records (with host edges)

Attached directories are saved with their objects; abstracts are rebuilt on
load (they are derived data), using the factory given to :func:`load_road`.

A second, independent format persists **compiled frozen snapshots**
(:func:`save_snapshot` / :func:`load_snapshot`): the CSR array buffers of a
:class:`~repro.core.frozen.FrozenRoad` written sectioned and checksummed,
so a cold serving worker can ``mmap`` the file and answer queries with
**zero recompilation** — no ROAD rebuild, no charged directory export, no
pager traffic.  Layout (little-endian)::

    magic "ROADSNP1" | u64 payload-length | sha256(payload)
    payload:  u64 meta-length | pickled meta | pad to 8 | array blob

where meta carries the id spaces, per-directory object references and
abstract snapshots, and an array table ``(key, typecode, length, offset,
nbytes)`` with 8-aligned blob offsets — every array is directly castable
in place.  The sha256 is verified before the meta pickle is touched.
"""

from __future__ import annotations

import hashlib
import mmap
import pickle
import struct
import sys
from array import array
from pathlib import Path
from typing import Any, BinaryIO, Dict, List, Optional, Tuple, Union

from repro.core.framework import ROAD, BuildReport
from repro.core.frozen import FrozenRoad
from repro.core.frozen_backends import (
    CompactBackend,
    ListBackend,
    resolve_backend,
)
from repro.core.shm_arrays import ShmVector
from repro.core.object_abstract import AbstractFactory, exact_abstract
from repro.core.rnet import RnetHierarchy
from repro.core.route_overlay import RouteOverlay
from repro.core.shortcuts import Shortcut, ShortcutIndex
from repro.graph.network import RoadNetwork
from repro.objects.model import ObjectSet, SpatialObject
from repro.partition.hierarchy import PartitionNode
from repro.storage import codecs
from repro.storage.pager import PageManager

MAGIC = b"ROADIDX1"
_U32 = struct.Struct("<I")

PathLike = Union[str, Path]


class SerializeError(Exception):
    """Raised on malformed index files."""


# ---------------------------------------------------------------------------
# Saving
# ---------------------------------------------------------------------------

def save_road(road: ROAD, path: PathLike) -> int:
    """Write a built framework to ``path``; returns bytes written."""
    with open(path, "wb") as handle:
        return _write(road, handle)


def _write(road: ROAD, out: BinaryIO) -> int:
    written = out.write(MAGIC)
    written += out.write(codecs.encode_str(road.network.metric))
    written += out.write(bytes([1 if road.shortcuts.reduce else 0]))

    network = road.network
    written += out.write(_U32.pack(network.num_nodes))
    for node in sorted(network.node_ids()):
        x, y = network.coords(node)
        written += out.write(codecs.encode_node_record(node, x, y))

    edges = sorted(network.edges())
    written += out.write(_U32.pack(len(edges)))
    for u, v, distance in edges:
        written += out.write(codecs.encode_int(u))
        written += out.write(codecs.encode_int(v))
        written += out.write(codecs.encode_float(distance))

    rnets = sorted(road.hierarchy.rnets(), key=lambda r: r.rnet_id)
    written += out.write(_U32.pack(len(rnets)))
    for rnet in rnets:
        written += out.write(codecs.encode_int(rnet.rnet_id))
        written += out.write(codecs.encode_int(rnet.level))
        written += out.write(codecs.encode_int_list(sorted(rnet.children)))
        flat: List[int] = []
        for u, v in sorted(rnet.edges) if rnet.is_leaf else []:
            flat.extend((u, v))
        written += out.write(codecs.encode_int_list(flat))

    shortcuts = [
        shortcut
        for rnet in rnets
        for shortcut in road.shortcuts.of_rnet(rnet.rnet_id)
    ]
    written += out.write(_U32.pack(len(shortcuts)))
    for shortcut in shortcuts:
        written += out.write(codecs.encode_int(shortcut.source))
        written += out.write(
            codecs.encode_shortcut(
                shortcut.target,
                shortcut.distance,
                shortcut.rnet_id,
                list(shortcut.via),
            )
        )

    names = road.directory_names
    written += out.write(_U32.pack(len(names)))
    for name in names:
        directory = road.directory(name)
        written += out.write(codecs.encode_str(name))
        written += out.write(_U32.pack(directory.object_count))
        for obj in directory.objects:
            written += out.write(
                codecs.encode_object_record(
                    obj.object_id, obj.edge[0], obj.delta, obj.attrs
                )
            )
            written += out.write(codecs.encode_int(obj.edge[1]))
    return written


# ---------------------------------------------------------------------------
# Loading
# ---------------------------------------------------------------------------

def load_road(
    path: PathLike,
    *,
    buffer_pages: int = 50,
    abstract_factory: AbstractFactory = exact_abstract,
) -> ROAD:
    """Reload a framework saved by :func:`save_road`.

    The Route Overlay pages and directory abstracts are rebuilt (cheap);
    the persisted partitioning and shortcut sets are reused as-is.
    """
    data = Path(path).read_bytes()
    if data[: len(MAGIC)] != MAGIC:
        raise SerializeError(f"{path}: not a ROAD index file")
    offset = len(MAGIC)
    metric, offset = codecs.decode_str(data, offset)
    reduce_flag = bool(data[offset])
    offset += 1

    network = RoadNetwork(metric=metric)
    (count,) = _U32.unpack_from(data, offset)
    offset += _U32.size
    for _ in range(count):
        (node, x, y), offset = codecs.decode_node_record(data, offset)
        network.add_node(node, x, y)
    (count,) = _U32.unpack_from(data, offset)
    offset += _U32.size
    for _ in range(count):
        u, offset = codecs.decode_int(data, offset)
        v, offset = codecs.decode_int(data, offset)
        distance, offset = codecs.decode_float(data, offset)
        network.add_edge(u, v, distance)

    (count,) = _U32.unpack_from(data, offset)
    offset += _U32.size
    records = []
    for _ in range(count):
        rnet_id, offset = codecs.decode_int(data, offset)
        level, offset = codecs.decode_int(data, offset)
        children, offset = codecs.decode_int_list(data, offset)
        flat, offset = codecs.decode_int_list(data, offset)
        edges = frozenset(
            (flat[i], flat[i + 1]) for i in range(0, len(flat), 2)
        )
        records.append((rnet_id, level, children, edges))
    tree = _rebuild_tree(records)
    hierarchy = RnetHierarchy(network, tree)

    shortcuts = ShortcutIndex(reduce=reduce_flag)
    (count,) = _U32.unpack_from(data, offset)
    offset += _U32.size
    for _ in range(count):
        source, offset = codecs.decode_int(data, offset)
        (target, rnet_id, distance, via), offset = codecs.decode_shortcut(
            data, offset
        )
        shortcuts.put(Shortcut(source, target, rnet_id, distance, tuple(via)))

    pager = PageManager(buffer_pages=buffer_pages, name="road")
    overlay = RouteOverlay(pager, network, hierarchy, shortcuts)
    road = ROAD(network, hierarchy, shortcuts, overlay, pager, BuildReport())

    (count,) = _U32.unpack_from(data, offset)
    offset += _U32.size
    for _ in range(count):
        name, offset = codecs.decode_str(data, offset)
        (obj_count,) = _U32.unpack_from(data, offset)
        offset += _U32.size
        objects = ObjectSet()
        for _ in range(obj_count):
            (oid, u, delta, attrs), offset = codecs.decode_object_record(
                data, offset
            )
            v, offset = codecs.decode_int(data, offset)
            objects.add(SpatialObject(oid, (u, v), delta, attrs))
        road.attach_objects(
            objects, name=name, abstract_factory=abstract_factory
        )
    return road


def _rebuild_tree(records) -> PartitionNode:
    """Reassemble the PartitionNode tree from flat Rnet records.

    Leaf records carry their edge sets; internal edge sets are the unions
    of their children (Definition 4), rebuilt bottom-up.
    """
    by_id: Dict[int, PartitionNode] = {}
    children_of: Dict[int, List[int]] = {}
    child_ids = set()
    for rnet_id, level, children, edges in records:
        by_id[rnet_id] = PartitionNode(rnet_id, level, edges)
        children_of[rnet_id] = children
        child_ids.update(children)
    roots = [rid for rid, _, _, _ in records if rid not in child_ids]
    if len(roots) != 1:
        raise SerializeError(f"expected one root Rnet, found {len(roots)}")

    def attach(rnet_id: int) -> frozenset:
        node = by_id[rnet_id]
        if not children_of[rnet_id]:
            return node.edges
        union = set()
        for child_id in children_of[rnet_id]:
            node.children.append(by_id[child_id])
            union |= attach(child_id)
        node.edges = frozenset(union)
        return node.edges

    attach(roots[0])
    return by_id[roots[0]]


# ---------------------------------------------------------------------------
# Frozen snapshots: sectioned + checksummed compiled-array files
# ---------------------------------------------------------------------------

SNAPSHOT_MAGIC = b"ROADSNP1"
SNAPSHOT_VERSION = 1
_U64 = struct.Struct("<Q")
#: magic | u64 payload-length | sha256 digest — everything before payload.
_SNAPSHOT_HEADER_BYTES = len(SNAPSHOT_MAGIC) + _U64.size + 32

#: Compiled arrays stored as float64; every other array is int64.
_SNAPSHOT_FLOAT_KEYS = frozenset(
    {"sc_weight", "ed_weight", "local_weight", "obj_delta"}
)


def _snapshot_typecode(key: str) -> str:
    """Array typecode for one :meth:`FrozenRoad._arrays` key.

    Directory-prefixed object arrays (``"poi:obj_delta"``) carry the
    same base layout as their flat single-directory forms.
    """
    base = key.rsplit(":", 1)[-1]
    return "d" if base in _SNAPSHOT_FLOAT_KEYS else "q"


def _array_payload(arr: Any, typecode: str) -> bytes:
    """One compiled array's raw little-endian payload bytes."""
    if isinstance(arr, ShmVector):
        return arr.tobytes()
    if isinstance(arr, array) and arr.typecode == typecode:
        return arr.tobytes()
    if isinstance(arr, memoryview):
        return bytes(arr)
    # list backend (or any other sequence): stage through a typed array.
    return array(typecode, arr).tobytes()


def save_snapshot(frozen: FrozenRoad, path: PathLike) -> int:
    """Write one compiled snapshot to ``path``; returns bytes written.

    Works for every backend — the buffers are serialised in the canonical
    typed-array layout, so a snapshot saved from a ``"list"`` compile and
    one saved from ``"shm"`` are byte-identical.  Predicate masks are
    derived data and are not persisted (they recompile lazily on load).
    """
    parts = frozen.export_parts()
    table: List[Tuple[str, str, int, int, int]] = []
    chunks: List[bytes] = []
    blob_len = 0
    for key, arr in parts["arrays"].items():
        typecode = _snapshot_typecode(key)
        payload = _array_payload(arr, typecode)
        pad = (-blob_len) % 8
        if pad:
            chunks.append(b"\0" * pad)
            blob_len += pad
        table.append((key, typecode, len(arr), blob_len, len(payload)))
        chunks.append(payload)
        blob_len += len(payload)
    # NOTE: deliberately backend-free — a snapshot is the canonical array
    # bytes, so saves from any backend are byte-identical and the loader
    # picks its own representation.
    meta = {
        "version": SNAPSHOT_VERSION,
        "node_ids": parts["node_ids"],
        "rnet_slots": parts["rnet_slots"],
        "default_directory": parts["default_directory"],
        "mask_budget": parts["mask_budget"],
        "arrays": table,
        "directories": parts["directories"],
    }
    meta_blob = pickle.dumps(meta, protocol=pickle.HIGHEST_PROTOCOL)
    head = _U64.pack(len(meta_blob)) + meta_blob
    head += b"\0" * ((-len(head)) % 8)
    payload_bytes = head + b"".join(chunks)
    digest = hashlib.sha256(payload_bytes).digest()
    with open(path, "wb") as out:
        written = out.write(SNAPSHOT_MAGIC)
        written += out.write(_U64.pack(len(payload_bytes)))
        written += out.write(digest)
        written += out.write(payload_bytes)
    return written


class _SnapshotFile:
    """Owns one mapped snapshot file and every buffer exported from it.

    The mmap cannot close while any exported memoryview is alive, so the
    mapping and all views derived from it (the payload/blob slices and
    the per-array casts) release together, views first.
    """

    def __init__(self, handle: BinaryIO, mapping: mmap.mmap) -> None:
        self._handle = handle
        self._mmap = mapping
        self._views: List[memoryview] = []
        self._closed = False

    def track(self, *views: memoryview) -> None:
        self._views.extend(views)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        while self._views:
            self._views.pop().release()
        self._mmap.close()
        self._handle.close()


class _SnapshotViewBackend(CompactBackend):
    """Read-only serving over an mmapped snapshot file.

    The compiled arrays ARE the file's pages — int64/float64 memoryview
    casts straight into the mapping, so cold start costs one sha256 pass
    (page-cache warm-up) and zero array copies.  Patching is refused
    (``patchable = False``): the file is shared, immutable truth; a
    deployment that needs live maintenance loads the snapshot into a
    patchable backend instead (``load_snapshot(path, backend=...)``).
    """

    name = "mmap"
    vectorised = False
    patchable = False

    def __init__(self, source: _SnapshotFile) -> None:
        self._source = source

    def view(self, arr: Any) -> Any:
        """Identity: the stored arrays are already memoryview casts."""
        return arr

    def resident_bytes(self, arr: Any) -> int:
        """File-backed bytes of one array (resident only when touched)."""
        if isinstance(arr, memoryview):
            return arr.nbytes
        return sys.getsizeof(arr)

    def close(self) -> None:
        """Release every array view and unmap the file; idempotent."""
        self._source.close()


def _map_snapshot(path: PathLike) -> Tuple[BinaryIO, mmap.mmap, memoryview]:
    """Map ``path`` read-only; the single place snapshot buffers export.

    Every downstream buffer (payload slice, blob slice, array casts) is
    derived from the returned view and must be released — via
    :class:`_SnapshotFile` — before the mapping can close.
    """
    handle = open(path, "rb")
    try:
        mapping = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
    except (ValueError, OSError):
        handle.close()
        raise
    return handle, mapping, memoryview(mapping)


def _parse_snapshot(
    path: PathLike, buf: memoryview
) -> Tuple[Dict[str, Any], memoryview]:
    """Verify ``buf`` and return ``(meta, blob-view)``.

    The sha256 over the full payload is checked *before* the meta pickle
    is deserialised — a corrupted or truncated file fails closed with
    :class:`SerializeError`, never with a pickle error (or worse, a
    silently wrong snapshot).
    """
    if len(buf) < _SNAPSHOT_HEADER_BYTES:
        raise SerializeError(f"{path}: snapshot header truncated")
    if bytes(buf[: len(SNAPSHOT_MAGIC)]) != SNAPSHOT_MAGIC:
        raise SerializeError(f"{path}: not a ROAD snapshot file")
    (payload_len,) = _U64.unpack_from(buf, len(SNAPSHOT_MAGIC))
    digest = bytes(buf[len(SNAPSHOT_MAGIC) + _U64.size : _SNAPSHOT_HEADER_BYTES])
    if _SNAPSHOT_HEADER_BYTES + payload_len != len(buf):
        raise SerializeError(
            f"{path}: snapshot payload length mismatch (header says "
            f"{payload_len}, file carries "
            f"{len(buf) - _SNAPSHOT_HEADER_BYTES})"
        )
    payload = buf[_SNAPSHOT_HEADER_BYTES:]
    try:
        if hashlib.sha256(payload).digest() != digest:
            raise SerializeError(
                f"{path}: snapshot checksum mismatch — file is corrupted"
            )
        (meta_len,) = _U64.unpack_from(payload, 0)
        meta_end = _U64.size + meta_len
        if meta_end > len(payload):
            raise SerializeError(f"{path}: snapshot meta section truncated")
        meta = pickle.loads(bytes(payload[_U64.size : meta_end]))
    finally:
        payload.release()
    if not isinstance(meta, dict) or meta.get("version") != SNAPSHOT_VERSION:
        raise SerializeError(
            f"{path}: unsupported snapshot version "
            f"{meta.get('version') if isinstance(meta, dict) else meta!r}"
        )
    blob_start = _SNAPSHOT_HEADER_BYTES + meta_end + ((-meta_end) % 8)
    return meta, buf[blob_start:]


def load_snapshot(
    path: PathLike,
    *,
    backend: Optional[Union[str, ListBackend]] = None,
    mask_budget: Optional[int] = None,
) -> FrozenRoad:
    """Reload a compiled snapshot saved by :func:`save_snapshot`.

    With ``backend=None`` (the default cold-start path) the arrays are
    memoryview casts straight into the mmapped file: queries serve with
    no recompilation and no copies, and the snapshot is read-only —
    ``apply`` raises, and ``close()`` unmaps the file.  Passing a backend
    name (or instance) instead materialises the arrays into that backend
    — e.g. ``backend="shm"`` to seed a process pool's shared segments
    from a snapshot file.
    """
    handle, mapping, buf = _map_snapshot(path)
    source = _SnapshotFile(handle, mapping)
    source.track(buf)
    keep_mapped = False
    try:
        meta, blob = _parse_snapshot(path, buf)
        source.track(blob)
        arrays: Dict[str, Any] = {}
        if backend is None:
            holder = _SnapshotViewBackend(source)
            for key, typecode, length, offset, nbytes in meta["arrays"]:
                view = blob[offset : offset + nbytes].cast(typecode)
                if len(view) != length:
                    raise SerializeError(
                        f"{path}: array {key!r} length mismatch"
                    )
                source.track(view)
                arrays[key] = view
            frozen = FrozenRoad.from_parts(
                backend=holder,
                arrays=arrays,
                node_ids=meta["node_ids"],
                rnet_slots=meta["rnet_slots"],
                directories=meta["directories"],
                default_directory=meta["default_directory"],
                mask_budget=(
                    meta["mask_budget"] if mask_budget is None else mask_budget
                ),
                snapshot_path=str(path),
            )
            keep_mapped = True
            return frozen
        chosen = resolve_backend(backend)
        for key, typecode, length, offset, nbytes in meta["arrays"]:
            staged: "array[Any]" = array(typecode)
            staged.frombytes(bytes(blob[offset : offset + nbytes]))
            if len(staged) != length:
                raise SerializeError(f"{path}: array {key!r} length mismatch")
            if typecode == "d":
                arrays[key] = chosen.float_array(staged)
            else:
                arrays[key] = chosen.int_array(staged)
        return FrozenRoad.from_parts(
            backend=chosen,
            arrays=arrays,
            node_ids=meta["node_ids"],
            rnet_slots=meta["rnet_slots"],
            directories=meta["directories"],
            default_directory=meta["default_directory"],
            mask_budget=(
                meta["mask_budget"] if mask_budget is None else mask_budget
            ),
            snapshot_path=str(path),
        )
    finally:
        if not keep_mapped:
            source.close()
