"""Per-node shortcut trees (Section 3.4, Figure 6).

Each Route Overlay entry carries a *shortcut tree* that organises, for one
node, the Rnets it borders (top level down) with the node's shortcuts per
Rnet, and — at the finest level — the node's physical edges.  A non-border
node's tree "has only one leaf node containing edges to its neighbouring
nodes".

The tree roots are the highest-level Rnets for which the node is a border
node: the children of the deepest Rnet containing the node as an interior
node (see :meth:`repro.core.rnet.RnetHierarchy.border_roots`).  Parent Rnets
sit immediately above their children, matching the N-ary layout of Fig 6.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.graph.network import RoadNetwork, edge_key
from repro.core.rnet import Rnet, RnetHierarchy
from repro.core.shortcuts import Shortcut, ShortcutIndex
from repro.storage.codecs import EDGE_RECORD_SIZE, INT_SIZE, shortcut_size


@dataclass
class ShortcutTreeEntry:
    """One Rnet the node borders: its shortcuts and children (or edges)."""

    rnet_id: int
    level: int
    shortcuts: List[Shortcut] = field(default_factory=list)
    children: List["ShortcutTreeEntry"] = field(default_factory=list)
    #: physical edges of the node inside this Rnet (finest Rnets only)
    edges: List[Tuple[int, float]] = field(default_factory=list)

    @property
    def is_leaf(self) -> bool:
        """True for finest-Rnet entries (the 'base' rows of Fig 6)."""
        return not self.children

    @property
    def nbytes(self) -> int:
        size = 2 * INT_SIZE  # rnet id + level
        size += sum(shortcut_size(len(s.via)) for s in self.shortcuts)
        size += len(self.edges) * EDGE_RECORD_SIZE
        for child in self.children:
            size += child.nbytes
        return size


@dataclass
class ShortcutTree:
    """A node's full shortcut tree.

    ``roots`` is empty for non-border nodes, whose single leaf is
    ``local_edges`` (the complete adjacency); border nodes get one root per
    highest-level bordered Rnet and ``local_edges`` stays empty.
    """

    node_id: int
    roots: List[ShortcutTreeEntry] = field(default_factory=list)
    local_edges: List[Tuple[int, float]] = field(default_factory=list)

    @property
    def is_border(self) -> bool:
        """True if the node borders at least one Rnet."""
        return bool(self.roots)

    @property
    def nbytes(self) -> int:
        size = INT_SIZE + len(self.local_edges) * EDGE_RECORD_SIZE
        for root in self.roots:
            size += root.nbytes
        return size

    def all_edges(self) -> List[Tuple[int, float]]:
        """The node's complete adjacency, whichever shape the tree has."""
        if not self.roots:
            return list(self.local_edges)
        out: List[Tuple[int, float]] = []
        stack = list(self.roots)
        while stack:
            entry = stack.pop()
            out.extend(entry.edges)
            stack.extend(entry.children)
        return out


def build_shortcut_tree(
    network: RoadNetwork,
    hierarchy: RnetHierarchy,
    shortcuts: ShortcutIndex,
    node: int,
) -> ShortcutTree:
    """Construct the shortcut tree of one node from the current indexes."""
    roots = hierarchy.border_roots(node)
    if not roots:
        return ShortcutTree(node, local_edges=list(network.neighbours(node)))
    entries = [
        _build_entry(network, hierarchy, shortcuts, rnet, node)
        for rnet in roots
    ]
    return ShortcutTree(node, roots=entries)


def _build_entry(
    network: RoadNetwork,
    hierarchy: RnetHierarchy,
    shortcuts: ShortcutIndex,
    rnet: Rnet,
    node: int,
) -> ShortcutTreeEntry:
    entry = ShortcutTreeEntry(
        rnet.rnet_id,
        rnet.level,
        shortcuts=shortcuts.from_node(node, rnet.rnet_id),
    )
    if rnet.is_leaf:
        entry.edges = [
            (neighbour, distance)
            for neighbour, distance in network.neighbours(node)
            if edge_key(node, neighbour) in rnet.edges
        ]
        return entry
    for child_id in rnet.children:
        child = hierarchy.rnet(child_id)
        if node in child.nodes:
            entry.children.append(
                _build_entry(network, hierarchy, shortcuts, child, node)
            )
    return entry
