"""The ROAD framework facade.

One object wiring everything together the way Section 3 describes: a road
network is partitioned into an Rnet hierarchy, shortcuts are computed
bottom-up, the Route Overlay indexes nodes with their shortcut trees, and
any number of Association Directories map object sets onto the same
network.  Queries (Section 4) and maintenance (Section 5) are entry points
on this facade.

Typical use::

    road = ROAD.build(network, levels=4, fanout=4)
    road.attach_objects(objects)               # the default directory
    nearest = road.knn(query_node, k=5)
    hotels = road.range(venue, 1000.0, Predicate.of(type="hotel"))
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.association_directory import AssociationDirectory
from repro.core.maintenance import (
    MaintenanceError,
    MaintenanceReport,
    add_edge as _add_edge,
    change_edge_distance as _change_edge_distance,
    remove_edge as _remove_edge,
)
from repro.core.frozen import FrozenRoad
from repro.core.multi_source import (
    Expand,
    bucket_entries,
    multi_source_objects,
    normalize_breaks,
    od_entries,
    od_matrix_generic,
)
from repro.core.object_abstract import AbstractFactory, exact_abstract
from repro.core.paths import PathTracer, object_path
from repro.core.rnet import RnetHierarchy
from repro.core.route_overlay import RouteOverlay, RouteOverlayError
from repro.core.search import (
    AbstractCache,
    SearchStats,
    _Frontier,
    _choose_path_cached,
    _collect_node_objects,
    knn_search,
    range_search,
)
from repro.core.shortcuts import ShortcutIndex, build_shortcuts
from repro.graph.network import RoadNetwork, edge_key
from repro.objects.model import ObjectSet, SpatialObject
from repro.partition.hierarchy import Bisector, PartitionNode, build_partition_tree
from repro.queries.types import (
    ANY,
    AggregateKNNQuery,
    KNNQuery,
    ODMatrixEntry,
    ODMatrixQuery,
    Predicate,
    RangeQuery,
    ResultEntry,
    RouteKNNQuery,
    ServiceAreaEntry,
    ServiceAreaQuery,
)
from repro.serving.dispatch import (
    DEFAULT_DIRECTORY,
    BatchContext,
    QueryExecutor,
    UnknownDirectoryError,
    register_handler,
)
from repro.storage.pager import PageManager


@dataclass(frozen=True)
class RoutedResult:
    """One answer object with its materialised route.

    ``path`` is the physical node sequence from the query node to the
    object's host-edge entry node; ``approach`` is the remaining distance
    to cover along the host edge.  ``entry.distance`` equals the path's
    edge-length sum plus ``approach``.
    """

    entry: ResultEntry
    path: List[int]
    approach: float


@dataclass
class BuildReport:
    """Wall-clock breakdown of an index build (Figure 13/14 metric)."""

    partition_seconds: float = 0.0
    shortcut_seconds: float = 0.0
    overlay_seconds: float = 0.0

    @property
    def total_seconds(self) -> float:
        """End-to-end construction time."""
        return self.partition_seconds + self.shortcut_seconds + self.overlay_seconds


class ROAD(QueryExecutor):
    """A built ROAD index over one road network.

    Queries run the paper's charged disk path; as a
    :class:`~repro.serving.QueryExecutor` (dispatch key ``"charged"``)
    the facade shares ``execute`` / ``execute_many`` signatures with
    every other engine.
    """

    dispatch_engine = "charged"

    def __init__(
        self,
        network: RoadNetwork,
        hierarchy: RnetHierarchy,
        shortcuts: ShortcutIndex,
        overlay: RouteOverlay,
        pager: PageManager,
        build_report: BuildReport,
    ) -> None:
        self.network = network
        self.hierarchy = hierarchy
        self.shortcuts = shortcuts
        self.overlay = overlay
        self.pager = pager
        self.build_report = build_report
        self._directories: Dict[str, AssociationDirectory] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        network: RoadNetwork,
        *,
        levels: int = 4,
        fanout: int = 4,
        bisector: Optional[Bisector] = None,
        partition_tree: Optional[PartitionNode] = None,
        reduce_shortcuts: bool = True,
        buffer_pages: int = 50,
        pager: Optional[PageManager] = None,
    ) -> "ROAD":
        """Build the framework over a network.

        Parameters mirror Table 1: ``levels`` is the Rnet hierarchy depth
        ``l`` and ``fanout`` the partition factor ``p``.  A pre-computed
        ``partition_tree`` (e.g. semantic or object-based) overrides the
        default geometric+KL partitioning.  ``reduce_shortcuts`` toggles the
        Lemma-4 storage reduction (ablation hook).
        """
        report = BuildReport()
        t0 = time.perf_counter()
        if partition_tree is None:
            partition_tree = build_partition_tree(
                network, levels=levels, fanout=fanout, bisector=bisector
            )
        hierarchy = RnetHierarchy(network, partition_tree)
        report.partition_seconds = time.perf_counter() - t0

        t1 = time.perf_counter()
        shortcuts = build_shortcuts(network, hierarchy, reduce=reduce_shortcuts)
        report.shortcut_seconds = time.perf_counter() - t1

        t2 = time.perf_counter()
        if pager is None:
            pager = PageManager(buffer_pages=buffer_pages, name="road")
        overlay = RouteOverlay(pager, network, hierarchy, shortcuts)
        report.overlay_seconds = time.perf_counter() - t2
        return cls(network, hierarchy, shortcuts, overlay, pager, report)

    # ------------------------------------------------------------------
    # Object management (content-provider side)
    # ------------------------------------------------------------------
    def attach_objects(
        self,
        objects: ObjectSet,
        *,
        name: str = DEFAULT_DIRECTORY,
        abstract_factory: AbstractFactory = exact_abstract,
    ) -> AssociationDirectory:
        """Map an object set onto the network as a new directory.

        Multiple directories — different providers, types, or formats —
        may coexist on the same Route Overlay (Section 3.4).
        """
        if name in self._directories:
            raise ValueError(f"directory {name!r} already attached")
        directory = AssociationDirectory(
            self.pager,
            self.network,
            self.hierarchy,
            objects,
            abstract_factory=abstract_factory,
            name=name,
        )
        self._directories[name] = directory
        return directory

    def detach_objects(self, name: str = DEFAULT_DIRECTORY) -> None:
        """Remove a directory and free its pages.

        The pager has no lazy reclamation, so the directory's B+-tree pages
        are released eagerly here; ``pager.page_count`` returns to its
        pre-attach value.  The directory object must not be used afterwards.
        """
        try:
            directory = self._directories.pop(name)
        except KeyError:
            raise UnknownDirectoryError(self, name, self._directories) from None
        directory.free_pages()

    def directory(self, name: str = DEFAULT_DIRECTORY) -> AssociationDirectory:
        """A previously attached directory."""
        try:
            return self._directories[name]
        except KeyError:
            raise UnknownDirectoryError(self, name, self._directories) from None

    @property
    def directory_names(self) -> List[str]:
        """Names of attached directories."""
        return list(self._directories)

    def insert_object(
        self, obj: SpatialObject, *, directory: str = DEFAULT_DIRECTORY
    ) -> MaintenanceReport:
        """Insert an object (Section 5.1; Route Overlay untouched).

        Returns a report identifying the touched node entries, the Rnet
        chain whose abstracts changed, and the directory churned — enough
        for :meth:`repro.core.frozen.FrozenRoad.apply` to patch a
        snapshot, including one compiled over several directories.
        """
        self.directory(directory).insert(obj)
        return self._object_report("insert_object", obj, directory)

    def delete_object(
        self, object_id: int, *, directory: str = DEFAULT_DIRECTORY
    ) -> MaintenanceReport:
        """Delete an object (Section 5.1).

        Returns a report whose ``obj`` field carries the removed object.
        """
        removed = self.directory(directory).delete(object_id)
        return self._object_report("delete_object", removed, directory)

    def _object_report(
        self, kind: str, obj: SpatialObject, directory: str
    ) -> MaintenanceReport:
        u, v = obj.edge
        leaf = self.hierarchy.leaf_of_edge(u, v)
        chain = {rnet.rnet_id for rnet in self.hierarchy.ancestors(leaf.rnet_id)}
        return MaintenanceReport(
            kind=kind,
            edge=edge_key(u, v),
            dirty_nodes={u, v},
            dirty_rnets=chain,
            obj=obj,
            directory=directory,
        )

    def update_object_attrs(
        self,
        object_id: int,
        attrs: Dict[str, str],
        *,
        directory: str = DEFAULT_DIRECTORY,
    ) -> MaintenanceReport:
        """Update an object's attributes (Section 5.1).

        Returns a report (kind ``update_object``, ``obj`` = the updated
        object) so a patched snapshot can refresh the object's entries and
        the Rnet chain's abstracts/masks.
        """
        updated = self.directory(directory).update_attrs(object_id, attrs)
        return self._object_report("update_object", updated, directory)

    # ------------------------------------------------------------------
    # Queries (Section 4)
    # ------------------------------------------------------------------
    def knn(
        self,
        node: int,
        k: int,
        predicate: Predicate = ANY,
        *,
        directory: str = DEFAULT_DIRECTORY,
        stats: Optional[SearchStats] = None,
    ) -> List[ResultEntry]:
        """k nearest matching objects from ``node`` by network distance."""
        return knn_search(
            self.overlay, self.directory(directory), node, k, predicate, stats
        )

    def range(
        self,
        node: int,
        radius: float,
        predicate: Predicate = ANY,
        *,
        directory: str = DEFAULT_DIRECTORY,
        stats: Optional[SearchStats] = None,
    ) -> List[ResultEntry]:
        """All matching objects within network distance ``radius``."""
        return range_search(
            self.overlay, self.directory(directory), node, radius, predicate, stats
        )

    def aggregate_knn(
        self,
        nodes: Iterable[int],
        k: int,
        agg: str = "sum",
        predicate: Predicate = ANY,
        *,
        directory: str = DEFAULT_DIRECTORY,
        stats: Optional[SearchStats] = None,
        abstracts: Optional[AbstractCache] = None,
    ) -> List[ResultEntry]:
        """Aggregate kNN: objects minimising agg(distances from ``nodes``).

        An extension LDSQ (the paper's future work; cf. aggregate NN [19]):
        ``agg`` is ``"sum"``, ``"max"`` or ``"min"``.  The returned
        ``distance`` fields carry the aggregate values.  ``abstracts``
        shares one Rnet-pruning cache across expansions (batch callers).
        """
        from repro.core.aggregate import aggregate_knn as _aggregate

        return _aggregate(
            self.overlay,
            self.directory(directory),
            list(nodes),
            k,
            agg,
            predicate,
            stats,
            abstracts,
        )

    def od_matrix(
        self,
        sources: Iterable[int],
        targets: Iterable[int],
        *,
        stats: Optional[SearchStats] = None,
    ) -> List[ODMatrixEntry]:
        """Many-to-many network distances (the OD cost matrix workload).

        One lane-tagged multi-source Dijkstra
        (:func:`repro.core.multi_source.od_matrix_generic`) over the full
        physical adjacency, charging pager I/O per expanded node the way
        every charged traversal does.  Cells come back row-major with
        ``inf`` for unreachable pairs; unknown sources *or* targets raise
        :class:`~repro.core.route_overlay.RouteOverlayError` rather than
        silently reporting them unreachable.
        """
        src = list(sources)
        if not src:
            raise ValueError("need at least one source node")
        tgt = list(targets)
        overlay = self.overlay
        for node in (*src, *tgt):
            if not overlay.has_node(node):
                raise RouteOverlayError(f"node {node} not in Route Overlay")

        def expand_flat(
            node: int, distance: float, push: Callable[[int, float], None]
        ) -> None:
            for neighbour, weight in overlay.neighbours(node):
                push(neighbour, distance + weight)

        rows = od_matrix_generic(src, tgt, expand_flat, stats=stats)
        return od_entries(src, tgt, rows)

    def service_area(
        self,
        node: int,
        breaks: Sequence[float],
        predicate: Predicate = ANY,
        *,
        directory: str = DEFAULT_DIRECTORY,
        stats: Optional[SearchStats] = None,
        abstracts: Optional[AbstractCache] = None,
    ) -> List[ServiceAreaEntry]:
        """Multi-break isochrone: RangeSearch at ``max(breaks)``, with
        every answer tagged by the first break covering it.

        Rides the shared multi-source kernel (single seed); a batch
        caller passes ``abstracts`` to share Rnet-pruning decisions.
        """
        assoc = self.directory(directory)
        cut = normalize_breaks(breaks)
        search_stats = stats if stats is not None else SearchStats()
        cache = (
            abstracts
            if abstracts is not None
            else AbstractCache(assoc, predicate)
        )
        entries = multi_source_objects(
            [node],
            _charged_expand(self.overlay, assoc, predicate, cache, search_stats),
            radius=cut[-1],
            stats=search_stats,
        )
        return bucket_entries(entries, cut)

    def route_knn(
        self,
        path: Iterable[int],
        k: int,
        predicate: Predicate = ANY,
        *,
        directory: str = DEFAULT_DIRECTORY,
        stats: Optional[SearchStats] = None,
        abstracts: Optional[AbstractCache] = None,
    ) -> List[ResultEntry]:
        """In-route kNN: the k best objects by detour distance from a path.

        Every path node seeds one shared frontier at distance 0 — the
        batched multi-source form of kNNSearch, paying each predicate's
        Rnet-pruning decision once for the whole route instead of once
        per source.
        """
        seeds = list(path)
        if not seeds:
            raise ValueError("need at least one path node")
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        assoc = self.directory(directory)
        search_stats = stats if stats is not None else SearchStats()
        cache = (
            abstracts
            if abstracts is not None
            else AbstractCache(assoc, predicate)
        )
        return multi_source_objects(
            seeds,
            _charged_expand(self.overlay, assoc, predicate, cache, search_stats),
            k=k,
            stats=search_stats,
        )

    def knn_routed(
        self,
        node: int,
        k: int,
        predicate: Predicate = ANY,
        *,
        directory: str = DEFAULT_DIRECTORY,
    ) -> List[RoutedResult]:
        """kNN with full driving routes to each answer.

        Routes are reconstructed from the traversal's moves, expanding every
        shortcut hop recursively into physical road segments (Lemma 2's
        representation; see :mod:`repro.core.paths`).
        """
        tracer = PathTracer()
        entries = knn_search(
            self.overlay, self.directory(directory), node, k, predicate,
            tracer=tracer,
        )
        return self._materialise(node, entries, tracer)

    def range_routed(
        self,
        node: int,
        radius: float,
        predicate: Predicate = ANY,
        *,
        directory: str = DEFAULT_DIRECTORY,
    ) -> List[RoutedResult]:
        """Range query with full driving routes to each answer."""
        tracer = PathTracer()
        entries = range_search(
            self.overlay, self.directory(directory), node, radius, predicate,
            tracer=tracer,
        )
        return self._materialise(node, entries, tracer)

    def _materialise(
        self, node: int, entries: List[ResultEntry], tracer: PathTracer
    ) -> List[RoutedResult]:
        routed = []
        for entry in entries:
            path, approach = object_path(
                tracer, self.hierarchy, self.shortcuts, node, entry.object_id
            )
            routed.append(RoutedResult(entry, path, approach))
        return routed

    # ``execute`` / ``execute_many`` are inherited from QueryExecutor and
    # served by the ``engine="charged"`` handlers at the bottom of this
    # module; queries in one batch share per-predicate AbstractCaches
    # through the BatchContext, so each Rnet's pruning decision is paid
    # once per batch rather than once per query.

    def freeze(
        self,
        *,
        directory: Optional[str] = None,
        directories: Optional[Iterable[str]] = None,
        default: Optional[str] = None,
        backend=None,
        mask_budget: Optional[int] = None,
    ) -> FrozenRoad:
        """Compile the index + directories into one :class:`FrozenRoad`.

        By default **every** attached Association Directory is compiled
        into the snapshot — the Route Overlay entry arrays are built once
        and shared, each directory adding only its object spans, abstract
        slots and predicate masks.  ``directories`` restricts the
        compiled set; ``directory`` is the single-directory shorthand;
        ``default`` names the directory ``execute(query)`` serves when no
        ``directory=`` is given (default: ``"objects"`` when compiled,
        else the first compiled name).

        The frozen snapshot serves :meth:`knn`/:meth:`range` byte-identical
        to the charged path with zero pager traffic.  It does not track
        later maintenance automatically — feed each update's
        :class:`MaintenanceReport` to :meth:`FrozenRoad.apply` to
        delta-patch the snapshot (all compiled directories at once), or
        re-freeze.

        ``backend`` selects the compiled array representation —
        ``"list"`` (pre-boxed, fastest), ``"compact"`` (stdlib typed
        buffers, ~4x less memory), ``"numpy"`` (compact layout +
        vectorised relaxation; optional dependency) or ``"shm"`` (compact
        layout in shared-memory segments for process-shard serving); None
        defers to ``REPRO_BACKEND``/the default.  ``mask_budget`` caps
        the cached predicate masks per compiled directory (default
        ``frozen.MAX_CACHED_PREDICATES``).
        """
        return FrozenRoad.from_road(
            self,
            directory=directory,
            directories=directories,
            default=default,
            backend=backend,
            mask_budget=mask_budget,
        )

    # ------------------------------------------------------------------
    # Network maintenance (Section 5.2)
    # ------------------------------------------------------------------
    def update_edge_distance(self, u: int, v: int, distance: float) -> MaintenanceReport:
        """Change a road segment's distance (filter-and-refresh shortcuts).

        Objects on the segment keep their relative position: every attached
        directory rescales their offsets by the distance ratio.
        """
        old_distance = self.network.edge_distance(u, v)
        report = _change_edge_distance(
            self.network, self.hierarchy, self.shortcuts, self.overlay, u, v, distance
        )
        if old_distance == 0:
            # Degenerate zero-length segment (defensive: loaders reject them
            # today, but stored data may predate that check).  No ratio
            # exists, so re-place every hosted object at offset 0 — the only
            # offset a zero-length edge admits.  The relocation re-derives
            # both endpoint deltas from the *new* distance; a plain rescale
            # would leave the far endpoint's stale delta(o, v) = 0 in place.
            for directory in self._directories.values():
                for obj in directory.objects.on_edge(u, v):
                    directory.relocate(obj.object_id, obj.edge, 0.0)
            return report
        factor = distance / old_distance
        if abs(factor - 1.0) > 1e-12:
            for directory in self._directories.values():
                directory.rescale_edge(u, v, factor)
        return report

    def add_edge(
        self,
        u: int,
        v: int,
        distance: float,
        *,
        coords: Optional[Dict[int, Tuple[float, float]]] = None,
    ) -> MaintenanceReport:
        """Open a new road segment (with border promotion when needed)."""
        return _add_edge(
            self.network, self.hierarchy, self.shortcuts, self.overlay,
            u, v, distance, coords=coords,
        )

    def remove_edge(self, u: int, v: int) -> MaintenanceReport:
        """Close a road segment (with border demotion when possible).

        Refuses if any attached directory still has objects on the edge —
        relocate or delete them first.
        """
        for name, directory in self._directories.items():
            if directory.objects.on_edge(u, v):
                raise MaintenanceError(
                    f"directory {name!r} has objects on edge ({u}, {v})"
                )
        return _remove_edge(
            self.network, self.hierarchy, self.shortcuts, self.overlay, u, v
        )

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def index_size_bytes(self, *, include_directories: bool = True) -> int:
        """On-disk footprint: Route Overlay plus attached directories."""
        size = self.overlay.size_bytes
        if include_directories:
            size += sum(d.size_bytes for d in self._directories.values())
        return size

    def stats(self) -> Dict[str, object]:
        """Shape and size summary for reports."""
        summary: Dict[str, object] = dict(self.hierarchy.stats())
        summary.update(
            shortcuts_total=self.shortcuts.total(),
            shortcuts_stored=self.shortcuts.total(stored=True),
            overlay_pages=self.overlay.page_count,
            overlay_bytes=self.overlay.size_bytes,
            directories={
                name: d.size_bytes for name, d in self._directories.items()
            },
            build_seconds=self.build_report.total_seconds,
        )
        return summary


# ----------------------------------------------------------------------
# Charged-path query handlers (the "charged" dispatch key).
# ----------------------------------------------------------------------
def _charged_expand(
    overlay: RouteOverlay,
    assoc: AssociationDirectory,
    predicate: Predicate,
    abstracts: AbstractCache,
    stats: SearchStats,
) -> Expand:
    """The multi-source kernel's expansion step over the charged index.

    Exactly one node's worth of kNNSearch body — SearchObject then
    ChoosePath — pushed through the shared frontier, so the sweep is
    push-for-push identical to the frozen CSR walk.
    """

    def expand(
        frontier: _Frontier, node: int, distance: float, seen_objects: Set[int]
    ) -> None:
        _collect_node_objects(
            assoc, frontier, node, distance, predicate, seen_objects
        )
        _choose_path_cached(overlay, abstracts, frontier, node, distance, stats)

    return expand


def _charged_cache(road: ROAD, predicate: Predicate, ctx: BatchContext):
    """One AbstractCache per (batch, predicate): Rnet pruning paid once."""
    assoc = road.directory(ctx.directory)
    return ctx.cache(
        ("abstracts", predicate), lambda: AbstractCache(assoc, predicate)
    )


@register_handler(KNNQuery, engine="charged")
def _charged_knn(road: ROAD, query: KNNQuery, ctx: BatchContext):
    return knn_search(
        road.overlay,
        road.directory(ctx.directory),
        query.node,
        query.k,
        query.predicate,
        ctx.stats,
        abstracts=_charged_cache(road, query.predicate, ctx),
    )


@register_handler(RangeQuery, engine="charged")
def _charged_range(road: ROAD, query: RangeQuery, ctx: BatchContext):
    return range_search(
        road.overlay,
        road.directory(ctx.directory),
        query.node,
        query.radius,
        query.predicate,
        ctx.stats,
        abstracts=_charged_cache(road, query.predicate, ctx),
    )


@register_handler(AggregateKNNQuery, engine="charged")
def _charged_aggregate(road: ROAD, query: AggregateKNNQuery, ctx: BatchContext):
    return road.aggregate_knn(
        query.nodes,
        query.k,
        query.agg,
        query.predicate,
        directory=ctx.directory,
        stats=ctx.stats,
        abstracts=_charged_cache(road, query.predicate, ctx),
    )


@register_handler(ODMatrixQuery, engine="charged")
def _charged_od_matrix(road: ROAD, query: ODMatrixQuery, ctx: BatchContext):
    # The matrix is object-free; ctx.directory only gated admission.
    return road.od_matrix(query.sources, query.targets, stats=ctx.stats)


@register_handler(ServiceAreaQuery, engine="charged")
def _charged_service_area(road: ROAD, query: ServiceAreaQuery, ctx: BatchContext):
    return road.service_area(
        query.node,
        query.breaks,
        query.predicate,
        directory=ctx.directory,
        stats=ctx.stats,
        abstracts=_charged_cache(road, query.predicate, ctx),
    )


@register_handler(RouteKNNQuery, engine="charged")
def _charged_route_knn(road: ROAD, query: RouteKNNQuery, ctx: BatchContext):
    return road.route_knn(
        query.path,
        query.k,
        query.predicate,
        directory=ctx.directory,
        stats=ctx.stats,
        abstracts=_charged_cache(road, query.predicate, ctx),
    )
