"""Aggregate nearest-neighbour queries on ROAD (extension).

The paper's conclusion names "algorithms to support LDSQs other than those
discussed" as future work; aggregate NN queries [19] are the natural next
LDSQ: given several query nodes (a group of friends, a delivery fleet),
find the k objects minimising an aggregate of their network distances —
``sum`` (total travel), ``max`` (fairness), or ``min`` (anyone-can-go).

Algorithm: one incremental ROAD expansion per query node
(:func:`repro.core.search.iter_nearest_objects`), advanced in lockstep —
always the expansion with the smallest frontier radius.  An object is
*finalised* once every expansion has reported it.  Unseen distances are
lower-bounded by the expansion's current radius, giving a sound
termination test: stop when the k-th best finalised aggregate cannot be
beaten by any partially-seen or unseen object.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.association_directory import AssociationDirectory
from repro.core.route_overlay import RouteOverlay
from repro.core.search import SearchStats, iter_nearest_objects
from repro.queries.types import ANY, Predicate, ResultEntry

#: Supported aggregate functions.
AGGREGATES: Dict[str, Callable[[Sequence[float]], float]] = {
    "sum": sum,
    "max": max,
    "min": min,
}


class _Expansion:
    """One query node's lazily-advanced expansion with a peekable head."""

    __slots__ = ("_iter", "head", "radius")

    def __init__(self, it: Iterator[Tuple[float, int]]) -> None:
        self._iter = it
        self.head: Optional[Tuple[float, int]] = None
        self.radius = 0.0
        self.advance()

    @property
    def exhausted(self) -> bool:
        return self.head is None

    def advance(self) -> Optional[Tuple[float, int]]:
        """Consume the current head; pre-fetch the next object."""
        consumed = self.head
        try:
            self.head = next(self._iter)
            self.radius = self.head[0]
        except StopIteration:
            self.head = None
            self.radius = math.inf
        return consumed

    def close(self) -> None:
        """Close the underlying iterator deterministically.

        Generator close is when the engines flush the frontier-boundary
        footprint into ``SearchStats`` — leaving it to garbage collection
        would make the visit sets timing-dependent.
        """
        close = getattr(self._iter, "close", None)
        if close is not None:
            close()


def aggregate_knn(
    overlay: RouteOverlay,
    directory: AssociationDirectory,
    query_nodes: Sequence[int],
    k: int,
    agg: str = "sum",
    predicate: Predicate = ANY,
    stats: Optional[SearchStats] = None,
    abstracts=None,
) -> List[ResultEntry]:
    """The k objects minimising ``agg`` of distances from ``query_nodes``.

    Objects unreachable from some query node have that distance = ∞ and are
    excluded for ``sum``/``max`` (included for ``min`` when reachable from
    anyone).  Returns :class:`ResultEntry` rows whose ``distance`` is the
    aggregate value, sorted ascending.  A shared
    :class:`~repro.core.search.AbstractCache` (``abstracts``) lets batch
    callers reuse Rnet-pruning lookups across expansions and queries.
    """
    return aggregate_knn_generic(
        lambda node: iter_nearest_objects(
            overlay, directory, node, predicate, stats, abstracts
        ),
        query_nodes,
        k,
        agg,
    )


def aggregate_knn_generic(
    expand: Callable[[int], Iterator[Tuple[float, int]]],
    query_nodes: Sequence[int],
    k: int,
    agg: str = "sum",
) -> List[ResultEntry]:
    """The lockstep-expansion core, agnostic of the serving path.

    ``expand(node)`` must lazily yield ``(distance, object_id)`` in
    non-descending distance — the charged
    :func:`~repro.core.search.iter_nearest_objects` or the compiled
    :meth:`~repro.core.frozen.FrozenRoad.iter_nearest_objects`.  Both
    yield identical sequences, so both serving paths return identical
    aggregate answers.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if not query_nodes:
        raise ValueError("need at least one query node")
    if agg not in AGGREGATES:
        raise ValueError(f"agg must be one of {sorted(AGGREGATES)}, got {agg!r}")
    combine = AGGREGATES[agg]
    m = len(query_nodes)

    expansions = [_Expansion(expand(node)) for node in query_nodes]
    try:
        return _lockstep(expansions, combine, agg, k, m)
    finally:
        for expansion in expansions:
            expansion.close()


def _lockstep(
    expansions: List[_Expansion],
    combine: Callable[[Sequence[float]], float],
    agg: str,
    k: int,
    m: int,
) -> List[ResultEntry]:
    partials: Dict[int, Dict[int, float]] = {}
    finalised: Dict[int, float] = {}

    def lower_bound(known: Dict[int, float]) -> float:
        """Sound lower bound on an object's final aggregate."""
        values = [
            known.get(i, expansions[i].radius) for i in range(m)
        ]
        return combine(values)

    def kth_best() -> float:
        if len(finalised) < k:
            return math.inf
        return sorted(finalised.values())[k - 1]

    while True:
        # Termination: nothing pending can beat the current k-th best.
        best_possible = math.inf
        for known in partials.values():
            best_possible = min(best_possible, lower_bound(known))
        unseen = combine([e.radius for e in expansions])
        best_possible = min(best_possible, unseen)
        if kth_best() <= best_possible:
            break
        if all(e.exhausted for e in expansions):
            break

        # Advance the expansion with the smallest frontier radius.
        index = min(
            (i for i, e in enumerate(expansions) if not e.exhausted),
            key=lambda i: expansions[i].radius,
            default=None,
        )
        if index is None:
            break
        item = expansions[index].advance()
        if item is None:
            continue
        distance, object_id = item
        if object_id in finalised:
            continue
        known = partials.setdefault(object_id, {})
        known[index] = distance
        if agg == "min":
            # A later expansion can still see the object closer, but only
            # while its radius is below the best sighting; finalise once no
            # unseen expansion can undercut it.
            best = min(known.values())
            if all(
                expansions[i].radius >= best
                for i in range(m)
                if i not in known
            ):
                finalised[object_id] = best
                del partials[object_id]
        elif len(known) == m:
            finalised[object_id] = combine(
                [known[i] for i in range(m)]
            )
            del partials[object_id]

    # `min` stragglers: partially-seen objects are still valid candidates.
    if agg == "min":
        for object_id, known in partials.items():
            if object_id not in finalised:
                finalised[object_id] = min(known.values())

    ranked = sorted(
        (value, object_id)
        for object_id, value in finalised.items()
        if math.isfinite(value)
    )
    return [ResultEntry(object_id, value) for value, object_id in ranked[:k]]
