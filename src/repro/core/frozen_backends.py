"""Pluggable array backends for the :class:`~repro.core.frozen.FrozenRoad`.

The compiled CSR arrays (entry offsets, shortcut/edge targets and weights,
object ids and deltas) have one logical layout but three physical
representations, selected per snapshot:

* ``"list"`` (default) — plain Python lists of pre-boxed ints/floats.
  Hot-loop indexing returns existing objects without boxing a fresh
  int/float per access, so this is the fastest pure-Python query path,
  at ~4x the memory the data needs (8 B pointer + boxed payload per slot).
* ``"compact"`` — stdlib ``array('q')`` / ``array('d')`` buffers plus
  ``bytearray`` predicate masks, read through memoryviews in the query
  loops.  8 B per slot, no boxed elements: ≥4x smaller resident arrays
  than ``"list"`` with near-identical query latency.
* ``"numpy"`` — the ``compact`` layout (the same stdlib buffers stay the
  source of truth for in-place span patching) with zero-copy
  ``np.frombuffer`` views that vectorise the span-relaxation inner loop.
  Optional: requires the ``numpy`` extra.
* ``"shm"`` — the ``compact`` layout stored in named
  ``multiprocessing.shared_memory`` segments
  (:class:`repro.core.shm_arrays.ShmVector`), so worker *processes*
  attach the same snapshot zero-copy and the primary's ``apply()`` patch
  writes land in every attached process at once.  Requires a host with
  POSIX shared memory (``/dev/shm``); see ``installed_backends``.

Every backend serves byte-identical answers — the equivalence probes
(:func:`repro.eval.metrics.snapshot_divergences`) hold across all of them
— and supports the incremental-freeze patch lifecycle: span rewrites are
slice assignments (``arr[a:b] = values``), which lists, stdlib arrays,
the numpy-over-stdlib layout and the shared-memory vectors all honour.

Select a backend per call (``road.freeze(backend="compact")``), per engine
(``ROADEngine(..., backend=...)``), or globally via ``REPRO_BACKEND`` /
the eval CLI's ``--backend``.
"""

from __future__ import annotations

import os
import sys
from array import array
from typing import Any, Iterable, List, Optional, Sequence, Tuple, Union

from repro.core.shm_arrays import ShmVector, shared_memory_available

#: One compiled integer CSR array, whichever backend materialised it.
IntVector = Union[List[int], "array[int]", ShmVector]
#: One compiled float CSR array.
FloatVector = Union[List[float], "array[float]", ShmVector]
#: One per-slot predicate mask.
BoolMask = Union[List[bool], bytearray, ShmVector]

#: Valid FrozenRoad array backends, in documentation order.
BACKENDS = ("list", "compact", "numpy", "shm")

#: Environment variable overriding the default backend.
BACKEND_ENV = "REPRO_BACKEND"


class ListBackend:
    """Plain Python lists of pre-boxed elements (the fast default)."""

    name = "list"
    #: Whether :meth:`FrozenRoad._search` should take the vectorised path.
    vectorised = False
    #: Whether ``FrozenRoad.apply`` may mutate arrays this backend built.
    #: Every live backend is patchable; the read-only mmap layout a
    #: snapshot file loads into (:func:`repro.core.serialize.load_snapshot`)
    #: is the one exception.
    patchable = True

    def int_array(self, values: Iterable[int]) -> IntVector:
        """Materialise an integer CSR array from staged values."""
        return list(values)

    def float_array(self, values: Iterable[float]) -> FloatVector:
        """Materialise a float CSR array from staged values."""
        return list(values)

    def int_values(self, values: Sequence[int]) -> Sequence[int]:
        """Values in the form ``int_array[a:b] = ...`` accepts."""
        return values

    def float_values(self, values: Sequence[float]) -> Sequence[float]:
        """Values in the form ``float_array[a:b] = ...`` accepts."""
        return values

    def bool_mask(self, flags: Iterable[bool]) -> BoolMask:
        """A per-Rnet predicate mask (indexed by compiled slot)."""
        return list(flags)

    def view(self, arr: Any) -> Any:
        """The object query loops should index (identity for lists)."""
        return arr

    def mask_view(self, mask: Any) -> Any:
        """The object the hot loop indexes for one predicate mask.

        Lists and bytearrays index fast as-is, so every backend keeps the
        identity mapping — masks are process-local on all of them,
        including ``shm`` (see :class:`ShmBackend`).
        """
        return mask

    def resident_bytes(self, arr: Sequence[object]) -> int:
        """Resident heap bytes of one array, boxes included.

        Counts the container plus one box per slot.  Interned small ints
        and ints shared via the compiled index dict make this an upper
        bound on steady-state heap growth, but it is the honest per-slot
        cost model: every slot pins a pointer and keeps a box alive.
        """
        return sys.getsizeof(arr) + sum(sys.getsizeof(x) for x in arr)


class CompactBackend(ListBackend):
    """Stdlib typed buffers: ``array('q')``/``array('d')`` + bytearrays."""

    name = "compact"
    vectorised = False

    def int_array(self, values: Iterable[int]) -> IntVector:
        return array("q", values)

    def float_array(self, values: Iterable[float]) -> FloatVector:
        return array("d", values)

    def int_values(self, values: Sequence[int]) -> "array[int]":
        # array slice assignment only accepts a same-typecode array.
        return array("q", values)

    def float_values(self, values: Sequence[float]) -> "array[float]":
        return array("d", values)

    def bool_mask(self, flags: Iterable[bool]) -> BoolMask:
        return bytearray(1 if flag else 0 for flag in flags)

    def view(self, arr: Any) -> Any:
        """A memoryview for the query hot loop.

        Indexing a memoryview of a typed array is measurably cheaper than
        indexing the array itself.  Note the view exports the array's
        buffer: FrozenRoad caches views per snapshot and MUST release
        them (``_drop_views``) before any patch — a live export makes a
        resizing splice raise ``BufferError``.
        """
        return memoryview(arr)

    def resident_bytes(self, arr: Sequence[object]) -> int:
        """Resident bytes: the buffer is inline, so getsizeof is exact."""
        return sys.getsizeof(arr)


class NumpyBackend(CompactBackend):
    """The compact layout served through zero-copy numpy views.

    Storage stays in the stdlib typed arrays (so the patch lifecycle's
    slice assignments and size-changing object splices carry over
    unchanged); queries build ``np.frombuffer`` views over the same
    buffers and vectorise span relaxation.  Views are cached per snapshot
    and dropped before any patch — a live buffer export would block the
    resizing splices ``apply`` relies on.
    """

    name = "numpy"
    vectorised = True

    #: The imported numpy module; typed Any so the strict core does not
    #: depend on numpy stubs being installed.
    np: Any

    def __init__(self) -> None:
        import numpy  # may raise: surfaced by get_backend with guidance

        self.np = numpy

    def frombuffer(self, arr: "array[Any]", *, kind: str) -> Any:
        """A zero-copy view over one stdlib buffer (``kind``: "i"/"f")."""
        dtype = self.np.int64 if kind == "i" else self.np.float64
        if len(arr) == 0:
            return self.np.empty(0, dtype=dtype)
        return self.np.frombuffer(arr, dtype=dtype)


class ShmBackend(CompactBackend):
    """The compact layout in named shared-memory segments.

    Same 8 B/slot CSR arrays and bytes-per-slot masks as ``compact``, but
    each array is a :class:`~repro.core.shm_arrays.ShmVector` whose bytes
    live in a ``multiprocessing.shared_memory`` segment.  One process —
    the primary — owns the segments and applies patches; any number of
    worker processes attach the same segments by name
    (:meth:`repro.core.frozen.FrozenRoad.shm_manifest` +
    :meth:`~repro.core.frozen.FrozenRoad.from_parts`) and serve queries
    zero-copy while the primary's slice writes land in place.

    Predicate mask caches deliberately stay process-local bytearrays
    (inherited from ``compact``): masks are never in the manifest — each
    attacher recompiles its own lazily — so a named segment per cached
    predicate would buy no sharing while leaking a ``/dev/shm`` entry
    whenever a worker dies without running its ``close()`` (e.g.
    SIGKILL), until the resource tracker reaps it at interpreter exit.

    Query loops read through the vectors' cached payload memoryviews, so
    the scalar hot path costs the same as ``compact``.  Snapshots built
    on this backend should be released deterministically
    (``FrozenRoad.close()``); a GC finalizer backstop covers the rest.
    """

    name = "shm"
    vectorised = False

    def int_array(self, values: Iterable[int]) -> IntVector:
        return ShmVector("q", values)

    def float_array(self, values: Iterable[float]) -> FloatVector:
        return ShmVector("d", values)

    def view(self, arr: Any) -> Any:
        """The vector's cached payload memoryview (see CompactBackend)."""
        if isinstance(arr, ShmVector):
            return arr.view()
        return memoryview(arr)

    def resident_bytes(self, arr: Sequence[object]) -> int:
        """Mapped segment size (header + capacity slack) for shm vectors."""
        if isinstance(arr, ShmVector):
            return arr.segment_bytes
        return sys.getsizeof(arr)


def get_backend(name: str) -> ListBackend:
    """Resolve a backend name to a backend instance.

    Raises ``ValueError`` for unknown names and ``ImportError`` (with
    install guidance) when ``"numpy"`` is requested but numpy is absent.
    Case-insensitive, like every other backend config surface.
    """
    name = validate_backend_name(name)
    if name == "list":
        return ListBackend()
    if name == "compact":
        return CompactBackend()
    if name == "numpy":
        try:
            return NumpyBackend()
        except ImportError as exc:
            raise ImportError(
                "FrozenRoad backend 'numpy' requires the optional numpy "
                "dependency: install it with pip install 'road-repro[numpy]' "
                "(or pip install numpy), or use backend='compact' for the "
                "stdlib-only typed-array layout"
            ) from exc
    if name == "shm":
        if not shared_memory_available():
            raise OSError(
                "FrozenRoad backend 'shm' requires POSIX shared memory "
                "(/dev/shm), which this host does not provide; use "
                "backend='compact' for the same layout in process-private "
                "buffers"
            )
        return ShmBackend()
    raise AssertionError(f"unhandled validated backend {name!r}")


def validate_backend_name(name: str, *, source: str = "backend") -> str:
    """Normalise and check a backend name; ``source`` labels the error.

    The single validation used by :func:`default_backend` and every
    config surface that accepts a backend string (eval runner/CLI), so
    adding a backend or rewording the error happens in one place.
    """
    name = name.lower()
    if name not in BACKENDS:
        raise ValueError(
            f"{source} must be one of {BACKENDS}, got {name!r}"
        )
    return name


def default_backend() -> str:
    """The session-wide backend: ``REPRO_BACKEND`` or ``"list"``."""
    return validate_backend_name(
        os.environ.get(BACKEND_ENV, "list"), source=BACKEND_ENV
    )


def resolve_backend(
    backend: Optional[Union[str, ListBackend]] = None,
) -> ListBackend:
    """Normalise a ``backend=`` argument to a backend instance.

    ``None`` defers to :func:`default_backend`; strings are looked up via
    :func:`get_backend`; backend instances pass through (snapshot patch
    paths re-use the instance they were compiled with).
    """
    if backend is None:
        backend = default_backend()
    if isinstance(backend, str):
        return get_backend(backend)
    return backend


def installed_backends() -> Tuple[str, ...]:
    """The backends constructible in this environment, in BACKENDS order.

    ``"list"`` and ``"compact"`` are stdlib-only and always present;
    ``"numpy"`` appears when the optional dependency imports, ``"shm"``
    when the host provides POSIX shared memory (``/dev/shm``).
    """
    available = ["list", "compact"]
    try:
        get_backend("numpy")
    except ImportError:
        pass
    else:
        available.append("numpy")
    if shared_memory_available():
        available.append("shm")
    return tuple(available)
