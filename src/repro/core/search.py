"""ROAD search algorithms: kNNSearch, RangeSearch, ChoosePath (Section 4).

Both queries are Dijkstra-style network expansions from the query node that
"navigate Rnets in detail only if they contain objects of interest;
otherwise bypass them" through shortcuts.  A priority queue holds pending
nodes and objects in non-descending distance order; popping an object with
the smallest key yields its exact network distance, so the first k popped
objects are the kNN answer (Figure 9) and every object popped within the
radius is a range answer.

``ChoosePath`` (Figure 10) walks the popped node's shortcut tree depth
first: each Rnet entry is checked against the Association Directory — an
Rnet without objects of interest is bypassed by enqueueing its shortcut
endpoints; one with objects is descended into child entries, down to
physical edges at the finest level.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.core.association_directory import AssociationDirectory
from repro.core.paths import PathTracer
from repro.core.route_overlay import RouteOverlay
from repro.core.shortcuts import Shortcut
from repro.queries.types import ANY, Predicate, ResultEntry


@dataclass
class SearchStats:
    """Traversal counters for one query (used by the evaluation and tests).

    Besides the scalar counters, a search records its *footprint*: the
    node ids it settled (``visited_nodes``) and the Rnet ids whose
    Association Directory abstract it consulted (``visited_rnets``,
    every entry examined by ChoosePath — bypassed, descended, or leaf).
    The footprint is the identity set a ``MaintenanceReport``'s dirty
    nodes/Rnets must intersect for a patch to possibly change the
    answer, which is what the serving result cache keys invalidation
    on.  Both engines must report identical sets for the same query —
    the cross-engine parity suites compare whole ``SearchStats``
    values, footprints included.
    """

    nodes_popped: int = 0
    objects_popped: int = 0
    edges_relaxed: int = 0
    shortcuts_taken: int = 0
    rnets_bypassed: int = 0
    rnets_descended: int = 0
    visited_nodes: Set[int] = field(default_factory=set)
    visited_rnets: Set[int] = field(default_factory=set)

    @property
    def expansions(self) -> int:
        """Total queue relaxations performed."""
        return self.edges_relaxed + self.shortcuts_taken


class AbstractCache:
    """Memo of SearchObject(AD, R) outcomes for one (directory, predicate).

    A search reaching several border nodes of one Rnet would otherwise
    repeat the same Association Directory lookup; within a single query the
    answer cannot change, so the first lookup is remembered (the loaded
    abstract stays in the buffer anyway — this also saves the CPU of
    re-descending the B+-tree).  A batch caller
    (:meth:`repro.core.framework.ROAD.execute_many`) may share one cache
    across every query with the same predicate, as long as the directory
    does not change between queries.
    """

    __slots__ = ("_directory", "_predicate", "_memo")

    def __init__(self, directory: AssociationDirectory, predicate: Predicate):
        self._directory = directory
        self._predicate = predicate
        self._memo: Dict[int, bool] = {}

    def may_contain(self, rnet_id: int) -> bool:
        cached = self._memo.get(rnet_id)
        if cached is None:
            cached = self._directory.rnet_may_contain(rnet_id, self._predicate)
            self._memo[rnet_id] = cached
        return cached


#: Backwards-compatible private alias (pre-batch-API name).
_AbstractCache = AbstractCache


class _Frontier:
    """Priority queue of pending nodes and objects (the ``P`` of Fig 9).

    Each entry optionally carries its *origin* — the (predecessor, move)
    that produced it — so a :class:`~repro.core.paths.PathTracer` can later
    materialise full routes to the answers.
    """

    _NODE = 0
    _OBJECT = 1

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, int, int, object]] = []
        self._seq = itertools.count()

    def push_node(
        self,
        node: int,
        distance: float,
        origin: Optional[Tuple[int, Optional[Shortcut]]] = None,
    ) -> None:
        heapq.heappush(
            self._heap, (distance, next(self._seq), self._NODE, node, origin)
        )

    def push_object(
        self,
        object_id: int,
        distance: float,
        origin: Optional[Tuple[int, float]] = None,
    ) -> None:
        heapq.heappush(
            self._heap,
            (distance, next(self._seq), self._OBJECT, object_id, origin),
        )

    def pop(self) -> Tuple[float, bool, int, object]:
        """(distance, is_object, id, origin) of the nearest pending entry."""
        distance, _, kind, item, origin = heapq.heappop(self._heap)
        return distance, kind == self._OBJECT, item, origin

    def pending_nodes(self) -> List[int]:
        """Nodes still queued (pushed, never popped).

        The sweep's *frontier boundary*: together with the settled set it
        is every node whose distance the search examined, which is the
        closure a result-cache footprint needs — a patch strictly beyond
        the boundary cannot reach into the answer, but one *on* it can
        (an exact distance tie at the stopping bound).
        """
        return [
            item  # type: ignore[misc]  # _NODE entries carry int items
            for _, _, kind, item, _ in self._heap
            if kind == self._NODE
        ]

    def __bool__(self) -> bool:
        return bool(self._heap)


def knn_search(
    overlay: RouteOverlay,
    directory: AssociationDirectory,
    query_node: int,
    k: int,
    predicate: Predicate = ANY,
    stats: Optional[SearchStats] = None,
    tracer: Optional[PathTracer] = None,
    abstracts: Optional[AbstractCache] = None,
) -> List[ResultEntry]:
    """Algorithm kNNSearch (Figure 9).

    Returns up to ``k`` matching objects in non-descending network distance
    (fewer if the network holds fewer matching objects).  Pass a
    :class:`~repro.core.paths.PathTracer` to record enough provenance to
    materialise full routes to the answers afterwards, and/or a shared
    :class:`AbstractCache` to reuse Rnet-pruning decisions across a batch.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    stats = stats if stats is not None else SearchStats()
    frontier = _Frontier()
    frontier.push_node(query_node, 0.0)
    visited_nodes: Set[int] = set()
    visited_objects: Set[int] = set()
    result: List[ResultEntry] = []
    if abstracts is None:
        abstracts = AbstractCache(directory, predicate)

    while frontier and len(result) < k:
        distance, is_object, item, origin = frontier.pop()
        if is_object:
            if item in visited_objects:
                continue
            visited_objects.add(item)
            stats.objects_popped += 1
            if tracer is not None and origin is not None:
                tracer.record_object(item, origin[0], origin[1])
            result.append(ResultEntry(item, distance))
            continue
        if item in visited_nodes:
            continue
        visited_nodes.add(item)
        stats.nodes_popped += 1
        stats.visited_nodes.add(item)
        if tracer is not None and origin is not None:
            tracer.record_node(item, origin[0], origin[1])
        _collect_node_objects(
            directory, frontier, item, distance, predicate, visited_objects
        )
        _choose_path_cached(overlay, abstracts, frontier, item, distance, stats)
    stats.visited_nodes.update(frontier.pending_nodes())
    return result


def range_search(
    overlay: RouteOverlay,
    directory: AssociationDirectory,
    query_node: int,
    radius: float,
    predicate: Predicate = ANY,
    stats: Optional[SearchStats] = None,
    tracer: Optional[PathTracer] = None,
    abstracts: Optional[AbstractCache] = None,
) -> List[ResultEntry]:
    """Algorithm RangeSearch (Section 4).

    Identical expansion to kNNSearch, except it terminates once the network
    within ``radius`` is exhausted and returns every matching object found.
    """
    if radius < 0:
        raise ValueError(f"radius must be >= 0, got {radius}")
    stats = stats if stats is not None else SearchStats()
    frontier = _Frontier()
    frontier.push_node(query_node, 0.0)
    visited_nodes: Set[int] = set()
    visited_objects: Set[int] = set()
    result: List[ResultEntry] = []
    if abstracts is None:
        abstracts = AbstractCache(directory, predicate)

    while frontier:
        distance, is_object, item, origin = frontier.pop()
        if distance > radius:
            break  # everything else is farther: the bounded space is done
        if is_object:
            if item in visited_objects:
                continue
            visited_objects.add(item)
            stats.objects_popped += 1
            if tracer is not None and origin is not None:
                tracer.record_object(item, origin[0], origin[1])
            result.append(ResultEntry(item, distance))
            continue
        if item in visited_nodes:
            continue
        visited_nodes.add(item)
        stats.nodes_popped += 1
        stats.visited_nodes.add(item)
        if tracer is not None and origin is not None:
            tracer.record_node(item, origin[0], origin[1])
        _collect_node_objects(
            directory, frontier, item, distance, predicate, visited_objects
        )
        _choose_path_cached(overlay, abstracts, frontier, item, distance, stats)
    stats.visited_nodes.update(frontier.pending_nodes())
    return result


def iter_nearest_objects(
    overlay: RouteOverlay,
    directory: AssociationDirectory,
    query_node: int,
    predicate: Predicate = ANY,
    stats: Optional[SearchStats] = None,
    abstracts: Optional[AbstractCache] = None,
):
    """Lazily yield matching objects in non-descending network distance.

    The incremental form of kNNSearch: the expansion advances only as far
    as the consumer pulls.  Used by aggregate queries
    (:mod:`repro.core.aggregate`) that interleave several expansions — a
    shared :class:`AbstractCache` lets them reuse Rnet-pruning decisions
    across expansions (and, via batch callers, across queries).
    """
    stats = stats if stats is not None else SearchStats()
    frontier = _Frontier()
    frontier.push_node(query_node, 0.0)
    visited_nodes: Set[int] = set()
    visited_objects: Set[int] = set()
    if abstracts is None:
        abstracts = AbstractCache(directory, predicate)

    try:
        while frontier:
            distance, is_object, item, _ = frontier.pop()
            if is_object:
                if item in visited_objects:
                    continue
                visited_objects.add(item)
                stats.objects_popped += 1
                yield distance, item
                continue
            if item in visited_nodes:
                continue
            visited_nodes.add(item)
            stats.nodes_popped += 1
            stats.visited_nodes.add(item)
            _collect_node_objects(
                directory, frontier, item, distance, predicate, visited_objects
            )
            _choose_path_cached(
                overlay, abstracts, frontier, item, distance, stats
            )
    finally:
        # The frontier boundary joins the footprint when the consumer
        # stops pulling — see :meth:`_Frontier.pending_nodes`.
        stats.visited_nodes.update(frontier.pending_nodes())


def choose_path(
    overlay: RouteOverlay,
    directory: AssociationDirectory,
    frontier: _Frontier,
    node: int,
    distance: float,
    predicate: Predicate,
    stats: SearchStats,
) -> None:
    """Algorithm ChoosePath (Figure 10).

    Decides how the expansion continues from ``node``: bypass object-free
    Rnets via shortcuts, descend object-bearing ones, and relax physical
    edges at the finest level.
    """
    _choose_path_cached(
        overlay, AbstractCache(directory, predicate), frontier, node,
        distance, stats,
    )


def _choose_path_cached(
    overlay: RouteOverlay,
    abstracts: AbstractCache,
    frontier: _Frontier,
    node: int,
    distance: float,
    stats: SearchStats,
) -> None:
    tree = overlay.shortcut_tree(node)
    if not tree.roots:
        # Non-border node: a single leaf of physical edges (Fig 6, n_q).
        for neighbour, weight in tree.local_edges:
            frontier.push_node(neighbour, distance + weight, (node, None))
            stats.edges_relaxed += 1
        return

    stack = list(tree.roots)
    while stack:
        entry = stack.pop()
        stats.visited_rnets.add(entry.rnet_id)
        if not abstracts.may_contain(entry.rnet_id):
            # Bypass: jump straight to the Rnet's other border nodes.
            stats.rnets_bypassed += 1
            for shortcut in entry.shortcuts:
                frontier.push_node(
                    shortcut.target,
                    distance + shortcut.distance,
                    (node, shortcut),
                )
                stats.shortcuts_taken += 1
            continue
        if entry.is_leaf:
            # Finest Rnet with objects of interest: traverse its edges.
            for neighbour, weight in entry.edges:
                frontier.push_node(neighbour, distance + weight, (node, None))
                stats.edges_relaxed += 1
        else:
            stats.rnets_descended += 1
            stack.extend(entry.children)


def _collect_node_objects(
    directory: AssociationDirectory,
    frontier: _Frontier,
    node: int,
    distance: float,
    predicate: Predicate,
    visited_objects: Set[int],
) -> None:
    """SearchObject(AD, node): enqueue matching objects at this node."""
    for obj, delta in directory.node_objects(node):
        if obj.object_id in visited_objects:
            continue
        if predicate.matches(obj):
            frontier.push_object(obj.object_id, distance + delta, (node, delta))
