"""Route Overlay (Section 3.4, Figure 6).

The Route Overlay manages the physical network structure and the shortcuts:
"nodes are indexed by a B+-tree with unique node IDs as search keys.  Each
leaf entry of B+-tree points to a node, together with a shortcut tree".
It flattens the Rnet hierarchy into one plain indexed network, so a search
never switches between separate per-level network structures (the
shortcoming of HEPV/HiTi storage the paper calls out).

Storage layout follows the evaluation set-up: node records (shortcut trees)
are packed into CCAM-style connectivity-clustered pages [18] — breadth-
first order, so a network expansion's consecutive pops usually land on the
same page — while a slim B+-tree maps node id to its record page (the
"points to a node" directory).  Every lookup charges the directory descent
plus the record page(s), reproducing the paper's I/O profile.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Optional, Tuple

from repro.graph.network import RoadNetwork
from repro.core.rnet import RnetHierarchy
from repro.core.shortcut_tree import ShortcutTree, build_shortcut_tree
from repro.core.shortcuts import ShortcutIndex
from repro.storage.bptree import BPlusTree
from repro.storage.codecs import INT_SIZE
from repro.storage.pager import PAGE_HEADER_SIZE, PAGE_SIZE, PageManager

_CAPACITY = PAGE_SIZE - PAGE_HEADER_SIZE


class RouteOverlayError(Exception):
    """Raised on lookups of unknown nodes."""


class _TreeBlock:
    """Record-page payload: shortcut trees of co-located nodes.

    A tree larger than one page spills into ``overflow`` continuation pages
    (charged on every read of that node), so occupancy accounting never
    under-reports a bulky border node.
    """

    __slots__ = ("trees", "nbytes", "overflow")

    def __init__(self) -> None:
        self.trees: Dict[int, ShortcutTree] = {}
        self.nbytes = 0
        self.overflow: List[int] = []


class RouteOverlay:
    """Disk-resident index: node id -> (node record, shortcut tree)."""

    def __init__(
        self,
        pager: PageManager,
        network: RoadNetwork,
        hierarchy: RnetHierarchy,
        shortcuts: ShortcutIndex,
        name: str = "route-overlay",
    ) -> None:
        self._pager = pager
        self.network = network
        self.hierarchy = hierarchy
        self.shortcuts = shortcuts
        self.name = name
        self._directory = BPlusTree(pager, name=f"{name}-dir")
        self._node_page: Dict[int, int] = {}
        self._build()
        pager.flush()

    # ------------------------------------------------------------------
    # Construction: CCAM-ordered packing
    # ------------------------------------------------------------------
    def _build(self) -> None:
        block = _TreeBlock()
        page = self._pager.allocate(self.name, block, 0)
        for node in self._bfs_order():
            tree = build_shortcut_tree(
                self.network, self.hierarchy, self.shortcuts, node
            )
            page, block = self._append_tree(page, block, node, tree)

    def _bfs_order(self) -> Iterable[int]:
        seen = set()
        order: List[int] = []
        for start in self.network.node_ids():
            if start in seen:
                continue
            queue = deque([start])
            seen.add(start)
            while queue:
                node = queue.popleft()
                order.append(node)
                for neighbour, _ in self.network.neighbours(node):
                    if neighbour not in seen:
                        seen.add(neighbour)
                        queue.append(neighbour)
        return order

    def _append_tree(self, page, block: _TreeBlock, node: int, tree: ShortcutTree):
        """Pack one tree into the current page, spilling when needed."""
        size = tree.nbytes + INT_SIZE
        if size > _CAPACITY:
            # Oversized record: its own page plus continuation pages.
            if block.trees:
                self._pager.write(page, block.nbytes)
                block = _TreeBlock()
                page = self._pager.allocate(self.name, block, 0)
            block.trees[node] = tree
            block.nbytes = _CAPACITY
            remaining = size - _CAPACITY
            while remaining > 0:
                extra = self._pager.allocate(
                    self.name, None, min(remaining, _CAPACITY)
                )
                block.overflow.append(extra.page_id)
                remaining -= _CAPACITY
            self._register(node, page.page_id)
            self._pager.write(page, block.nbytes)
            block = _TreeBlock()
            page = self._pager.allocate(self.name, block, 0)
            return page, block
        if block.nbytes + size > _CAPACITY and block.trees:
            self._pager.write(page, block.nbytes)
            block = _TreeBlock()
            page = self._pager.allocate(self.name, block, 0)
        block.trees[node] = tree
        block.nbytes += size
        self._register(node, page.page_id)
        self._pager.write(page, block.nbytes)
        return page, block

    def _register(self, node: int, page_id: int) -> None:
        self._node_page[node] = page_id
        self._directory.insert(node, page_id, size=2 * INT_SIZE)

    # ------------------------------------------------------------------
    # Access (charged I/O)
    # ------------------------------------------------------------------
    def shortcut_tree(self, node: int) -> ShortcutTree:
        """Load a node's shortcut tree: directory descent + record page."""
        page_id = self._directory.get(node)
        if page_id is None:
            raise RouteOverlayError(f"node {node} not in Route Overlay")
        page = self._pager.read(page_id)
        block: _TreeBlock = page.payload
        for extra in block.overflow:
            self._pager.read(extra)  # continuation pages of bulky records
        return block.trees[node]

    def neighbours(self, node: int) -> List[Tuple[int, float]]:
        """A node's full adjacency (through the charged index)."""
        return self.shortcut_tree(node).all_edges()

    def has_node(self, node: int) -> bool:
        """Membership check (charged like a directory search)."""
        return node in self._directory

    # ------------------------------------------------------------------
    # Bulk export (uncharged)
    # ------------------------------------------------------------------
    def iter_trees(self) -> Iterable[Tuple[int, ShortcutTree]]:
        """Yield every (node, shortcut tree) without charging I/O.

        A build-time bulk export for compile consumers such as
        :mod:`repro.core.frozen` — like :meth:`PageManager.iter_pages` it
        bypasses the buffer and must not be used in query processing.
        """
        for page in self._pager.iter_pages(self.name):
            block: Optional[_TreeBlock] = page.payload
            if block is None:
                continue  # overflow continuation pages carry no trees
            yield from block.trees.items()

    def stored_tree(self, node: int) -> ShortcutTree:
        """One node's stored shortcut tree, uncharged.

        The single-node counterpart of :meth:`iter_trees`: bypasses the
        directory descent and the buffer, for maintenance-time compile
        consumers (:meth:`repro.core.frozen.FrozenRoad.apply`) that read
        back the trees :meth:`refresh_nodes` just stored.  Must not be
        used in query processing — queries go through
        :meth:`shortcut_tree` and pay the simulated I/O.
        """
        page_id = self._node_page.get(node)
        if page_id is None:
            raise RouteOverlayError(f"node {node} not in Route Overlay")
        block: _TreeBlock = self._pager.peek(page_id).payload
        return block.trees[node]

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def refresh_node(self, node: int) -> None:
        """Rebuild one node's shortcut tree from the current indexes."""
        tree = build_shortcut_tree(
            self.network, self.hierarchy, self.shortcuts, node
        )
        old_page_id = self._node_page.get(node)
        if old_page_id is not None:
            page = self._pager.read(old_page_id)
            block: _TreeBlock = page.payload
            old_tree = block.trees.pop(node, None)
            if old_tree is not None and not block.overflow:
                block.nbytes -= old_tree.nbytes + INT_SIZE
                # Reuse the same page when the new tree still fits: keeps
                # the CCAM clustering intact across maintenance.
                if (
                    block.nbytes + tree.nbytes + INT_SIZE <= _CAPACITY
                    and tree.nbytes + INT_SIZE <= _CAPACITY
                ):
                    block.trees[node] = tree
                    block.nbytes += tree.nbytes + INT_SIZE
                    self._pager.write(page, block.nbytes)
                    return
                if block.trees:
                    self._pager.write(page, block.nbytes)
                else:
                    self._pager.free(old_page_id)  # emptied record page
            elif old_tree is not None:
                # Oversized record: free the continuation pages *and* the
                # emptied main page instead of leaving it allocated forever.
                for extra in block.overflow:
                    self._pager.free(extra)
                block.overflow.clear()
                block.trees.clear()
                block.nbytes = 0
                self._pager.free(old_page_id)
        self._place_elsewhere(node, tree)

    def _place_elsewhere(self, node: int, tree: ShortcutTree) -> None:
        size = tree.nbytes + INT_SIZE
        if size > _CAPACITY:
            block = _TreeBlock()
            page = self._pager.allocate(self.name, block, 0)
            block.trees[node] = tree
            block.nbytes = _CAPACITY
            remaining = size - _CAPACITY
            while remaining > 0:
                extra = self._pager.allocate(
                    self.name, None, min(remaining, _CAPACITY)
                )
                block.overflow.append(extra.page_id)
                remaining -= _CAPACITY
            self._pager.write(page, block.nbytes)
            self._register(node, page.page_id)
            return
        for page in self._pager.iter_pages(self.name):
            block = page.payload
            if block is None or block.overflow:
                continue
            if block.nbytes + size <= _CAPACITY:
                block.trees[node] = tree
                block.nbytes += size
                self._pager.write(page, block.nbytes)
                self._register(node, page.page_id)
                return
        block = _TreeBlock()
        page = self._pager.allocate(self.name, block, 0)
        block.trees[node] = tree
        block.nbytes = size
        self._pager.write(page, block.nbytes)
        self._register(node, page.page_id)

    def refresh_nodes(self, nodes: Iterable[int]) -> None:
        """Rebuild several nodes' shortcut trees."""
        for node in sorted(set(nodes)):
            self.refresh_node(node)

    def remove_node(self, node: int) -> None:
        """Drop a node's entry (network node deletion).

        Overflow pages of a bulky record are freed — and so is the main
        record page once it holds no tree, so ``page_count``/``size_bytes``
        shrink instead of accumulating empty pages.
        """
        page_id = self._node_page.pop(node, None)
        if page_id is not None:
            page = self._pager.read(page_id)
            block: _TreeBlock = page.payload
            tree = block.trees.pop(node, None)
            if tree is not None:
                if block.overflow:
                    for extra in block.overflow:
                        self._pager.free(extra)
                    block.overflow.clear()
                    block.nbytes = 0
                else:
                    block.nbytes -= tree.nbytes + INT_SIZE
            if block.trees:
                self._pager.write(page, block.nbytes)
            else:
                self._pager.free(page_id)  # emptied record page
        self._directory.delete(node)

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    @property
    def page_count(self) -> int:
        """Pages allocated to the Route Overlay (records + directory)."""
        records = sum(1 for _ in self._pager.iter_pages(self.name))
        return records + self._directory.page_count

    @property
    def size_bytes(self) -> int:
        """On-disk footprint."""
        return self.page_count * PAGE_SIZE

    @property
    def node_count(self) -> int:
        """Indexed nodes."""
        return len(self._directory)

    def locality(self) -> float:
        """Fraction of edges whose endpoints' trees share a page."""
        same = 0
        total = 0
        for u, v, _ in self.network.edges():
            total += 1
            if self._node_page.get(u) == self._node_page.get(v):
                same += 1
        return same / total if total else 1.0
