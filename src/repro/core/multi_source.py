"""Shared batched multi-source search core for the network workloads.

The paper's LDSQs expand from one query node; production road-network
traffic is dominated by many-to-many and reachability shapes (OD cost
matrices, service-area isochrones, "nearest charger along my route").
All of them are the same sweep with S sources instead of one, so this
module hosts the one kernel every engine rides:

* :func:`multi_source_objects` — one frontier seeded with every source
  at distance 0, popping objects in non-descending *minimum-over-seeds*
  distance.  ``ServiceAreaQuery`` is the radius-bounded form,
  ``RouteKNNQuery`` the k-bounded form.  Because there is a single
  frontier, the per-predicate Rnet masks and the
  :class:`~repro.core.search.AbstractCache` decisions are paid once for
  all S sources, the way ``execute_many`` amortises them across a batch.
* :func:`od_matrix_generic` — a lane-tagged multi-source Dijkstra over
  the flat physical adjacency: one shared heap carries entries for all S
  source lanes, each lane settling its targets and retiring as soon as
  the last one is found.  Final distances are push-order independent, so
  charged and frozen expansions agree byte-for-byte even though they
  enumerate edges in different orders.

The expansion step is a callable the engine supplies: the charged side
closes over :func:`~repro.core.search._choose_path_cached`, the frozen
side over its CSR span walk (:meth:`repro.core.frozen.FrozenRoad`), and
both push into the same :class:`~repro.core.search._Frontier`, which is
what makes the collect sweeps push-for-push identical across engines.
"""

from __future__ import annotations

import heapq
from bisect import bisect_left
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.core.search import SearchStats, _Frontier
from repro.queries.types import (
    ODMatrixEntry,
    ResultEntry,
    ServiceAreaEntry,
    _require_distance,
    sort_result,
)

_INF = float("inf")

#: One engine-supplied expansion step for the collect sweep:
#: ``expand(frontier, node, distance, seen_objects)`` pushes the node's
#: matching objects (skipping ids already in ``seen_objects``) and its
#: outgoing moves (edges / shortcuts / span walks) into the frontier.
Expand = Callable[[_Frontier, int, float, Set[int]], None]

#: One engine-supplied flat-adjacency step for the OD sweep:
#: ``expand_flat(node, distance, push)`` calls ``push(neighbour,
#: distance + weight)`` for every physical edge out of ``node``.
ExpandFlat = Callable[[int, float, Callable[[int, float], None]], None]


def multi_source_objects(
    seeds: Sequence[int],
    expand: Expand,
    *,
    radius: float = _INF,
    k: Optional[int] = None,
    stats: Optional[SearchStats] = None,
    node_ids: Optional[Sequence[int]] = None,
) -> List[ResultEntry]:
    """Matching objects reachable from any seed, nearest seed first.

    Every seed enters one shared frontier at distance 0 (duplicates
    collapse), so a popped object's distance is the minimum over seeds —
    the detour distance for a route, the coverage distance for a service
    area.  ``radius`` bounds the sweep inclusively (``distance <=
    radius`` qualifies, matching RangeSearch); ``k`` stops it after the
    k-th object, draining distance ties first so the returned prefix is
    the canonical (distance, object id) cut rather than an artifact of
    push order.

    ``node_ids`` translates the engine's frontier items back to real
    node ids for the ``stats.visited_nodes`` footprint (the frozen
    engine sweeps dense codes; the charged engine passes ``None`` and
    records items as-is).
    """
    frontier = _Frontier()
    seeded: Set[int] = set()
    for node in seeds:
        if node not in seeded:
            seeded.add(node)
            frontier.push_node(node, 0.0)
    visited: Set[int] = set()
    seen_objects: Set[int] = set()
    result: List[ResultEntry] = []
    tie_bound: Optional[float] = None
    while frontier:
        distance, is_object, item, _origin = frontier.pop()
        if distance > radius:
            break  # everything else is farther: the bounded space is done
        if tie_bound is not None and distance > tie_bound:
            break  # k answers found and their distance ties are drained
        if is_object:
            if item in seen_objects:
                continue
            seen_objects.add(item)
            if stats is not None:
                stats.objects_popped += 1
            result.append(ResultEntry(item, distance))
            if k is not None and tie_bound is None and len(result) >= k:
                tie_bound = distance
            continue
        if item in visited:
            continue
        visited.add(item)
        if stats is not None:
            stats.nodes_popped += 1
        expand(frontier, item, distance, seen_objects)
    if stats is not None:
        # Settled nodes plus the frontier boundary: every node whose
        # distance the sweep examined (see _Frontier.pending_nodes).
        examined = visited.union(frontier.pending_nodes())
        if node_ids is None:
            stats.visited_nodes.update(examined)
        else:
            stats.visited_nodes.update(node_ids[item] for item in examined)
    result = sort_result(result)
    if k is not None:
        del result[k:]
    return result


def od_matrix_generic(
    sources: Sequence[int],
    targets: Sequence[int],
    expand_flat: ExpandFlat,
    *,
    stats: Optional[SearchStats] = None,
    node_ids: Optional[Sequence[int]] = None,
) -> List[List[float]]:
    """Distance rows (one per source, one cell per target), ``inf`` when
    unreachable.

    One shared heap carries ``(distance, seq, lane, node)`` for all S
    source lanes at once; a lane retires the moment its last target
    settles, and the sweep stops when every lane has.  Because Dijkstra's
    settled distances do not depend on relaxation order, any engine
    enumerating the same physical edge multiset produces identical rows.
    """
    rows = [[_INF] * len(targets) for _ in sources]
    if not sources or not targets:
        return rows
    target_slots: Dict[int, List[int]] = {}
    for j, target in enumerate(targets):
        target_slots.setdefault(target, []).append(j)
    heap: List[Tuple[float, int, int, int]] = []
    seq = 0
    for lane, node in enumerate(sources):
        heap.append((0.0, seq, lane, node))
        seq += 1
    heapq.heapify(heap)
    visited: List[Set[int]] = [set() for _ in sources]
    remaining = [len(targets)] * len(sources)
    active = len(sources)
    while heap and active:
        distance, _, lane, node = heapq.heappop(heap)
        if not remaining[lane]:
            continue  # stale entry of a retired lane
        seen = visited[lane]
        if node in seen:
            continue
        seen.add(node)
        if stats is not None:
            stats.nodes_popped += 1
        slots = target_slots.get(node)
        if slots is not None:
            row = rows[lane]
            for j in slots:
                row[j] = distance
            remaining[lane] -= len(slots)
            if not remaining[lane]:
                active -= 1
                continue  # lane done: nothing left worth expanding

        def push(target: int, new_distance: float, _lane: int = lane) -> None:
            nonlocal seq
            if target not in visited[_lane]:
                heapq.heappush(heap, (new_distance, seq, _lane, target))
                seq += 1
                if stats is not None:
                    stats.edges_relaxed += 1

        expand_flat(node, distance, push)
    if stats is not None:
        examined: Set[int] = {node for _, _, _, node in heap}
        for seen in visited:
            examined.update(seen)
        if node_ids is None:
            stats.visited_nodes.update(examined)
        else:
            stats.visited_nodes.update(node_ids[item] for item in examined)
    return rows


def od_entries(
    sources: Sequence[int],
    targets: Sequence[int],
    rows: Sequence[Sequence[float]],
) -> List[ODMatrixEntry]:
    """Rows flattened to the wire/result shape: row-major cells."""
    return [
        ODMatrixEntry(source, target, rows[i][j])
        for i, source in enumerate(sources)
        for j, target in enumerate(targets)
    ]


def normalize_breaks(breaks: Sequence[float]) -> Tuple[float, ...]:
    """Validated ascending break cut-offs.

    The engines' method-level twin of ``ServiceAreaQuery``'s dataclass
    validation (one rule set, shared): every break must be a finite
    non-negative number, at least one is required, and unsorted input is
    normalised to ascending order.
    """
    cleaned = tuple(sorted(_require_distance(b, field="break") for b in breaks))
    if not cleaned:
        raise ValueError("need at least one break")
    return cleaned


def bucket_entries(
    entries: Sequence[ResultEntry], breaks: Sequence[float]
) -> List[ServiceAreaEntry]:
    """Tag range answers with the index of the first break covering them.

    ``breaks`` must be sorted ascending (the query dataclass normalises)
    and the entries already cut at ``max(breaks)`` by the sweep's radius.
    """
    return [
        ServiceAreaEntry(
            entry.object_id, entry.distance, bisect_left(breaks, entry.distance)
        )
        for entry in entries
    ]
