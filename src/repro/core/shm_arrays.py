"""Shared-memory typed vectors: the storage layer of the ``"shm"`` backend.

A :class:`ShmVector` is one compiled CSR array (or predicate mask) whose
bytes live in a named ``multiprocessing.shared_memory`` segment, so any
number of worker *processes* can attach the same snapshot zero-copy while
the primary keeps patching it in place.  The layout per segment::

    [ length : int64 ][ capacity : int64 ][ payload : capacity * itemsize ]

* ``length`` lives **inside the segment** — a size-changing object splice
  on the primary is immediately visible to every attached process (their
  ``len()`` re-reads the header), with no side-channel required for the
  common resize case.
* ``capacity`` leaves slack beyond ``length`` so object-churn splices
  usually move bytes within the segment instead of reallocating.  When a
  splice outgrows the slack the vector transparently re-homes into a
  larger segment (owner only) — the segment *name* changes, which the
  process pool detects and answers with a worker reload.

The vector speaks the same protocol the other
:mod:`repro.core.frozen_backends` arrays do: ``len``/indexing,
slice-assignment writes (including resizing splices, byte-moved with a
single tail copy), and a cached :meth:`view` memoryview for the query hot
loops.

Lifecycle (statically enforced by analysis rule RA006): every segment is
``close()``-d by each attached process and ``unlink()``-ed exactly once,
by the owner, from :meth:`ShmVector.close`.  A ``weakref.finalize``
backstop covers vectors dropped without an explicit close (tests, evicted
mask-cache entries) so abandoned segments do not outlive the process.
CPython < 3.13 registers *attached* segments with the resource tracker as
if they were owned — see :func:`attach_segment` for why that is benign in
the one-tracker-per-process-tree world the serving pool runs in.
"""

from __future__ import annotations

import weakref
from array import array
from multiprocessing.shared_memory import SharedMemory
from typing import Any, Iterable, Iterator, List, Optional, Sequence, Union

#: Bytes before the payload: two little-endian int64s (length, capacity).
HEADER_BYTES = 16

#: Supported element typecodes -> itemsize. ``"q"`` carries the integer
#: CSR arrays, ``"d"`` the weight/delta arrays, ``"b"`` byte flags.
ITEMSIZES = {"q": 8, "d": 8, "b": 1}

#: Minimum capacity slack (elements) left beyond the initial length, so
#: small vectors survive a few object insertions without re-homing.
MIN_SLACK = 8

#: What slice assignment accepts as a replacement-values source.
VectorValues = Union["ShmVector", Sequence[Any], memoryview, bytes]


class ShmSegmentError(Exception):
    """Raised on shm-vector misuse (bad typecode, non-owner resize)."""


def attach_segment(name: str) -> SharedMemory:
    """Attach an existing segment by name, without adopting its lifetime.

    CPython 3.13 grew ``track=False`` so an attachment is not registered
    with the resource tracker (attachers must never trigger its cleanup).
    Older interpreters register every attach exactly as a *create* — but
    the tracker a ``multiprocessing`` child inherits is the parent's, and
    its name cache is a set, so the duplicate registration dedups into
    the owner's own entry and the owner's eventual ``unlink()``
    unregisters it exactly once.  (Deliberately no ``unregister`` call
    here: with a shared tracker it would cancel the *owner's*
    registration, dropping crash-leak protection for a live segment.)
    """
    try:
        return SharedMemory(name=name, track=False)  # type: ignore[call-arg]
    except TypeError:  # Python < 3.13: no track= parameter
        return SharedMemory(name=name)


def _release_segment(
    shm: SharedMemory, exports: List[memoryview], owner: bool
) -> None:
    """Finalizer backstop: drop views, close, unlink if owned.

    Runs when a vector is garbage-collected without an explicit
    :meth:`ShmVector.close` (test teardown, evicted cache entries).
    Best-effort: a still-exported view (a reader mid-query) leaves the
    segment to the OS-level cleanup rather than crashing the finalizer.
    """
    try:
        for view in exports:
            view.release()
        shm.close()
        if owner:
            shm.unlink()
    except (BufferError, FileNotFoundError, OSError):  # pragma: no cover
        pass


class ShmVector(Sequence[Any]):
    """One typed array in a named shared-memory segment.

    Construct as an owner (``ShmVector("q", values)``) or attach to an
    owner's segment from another process (``ShmVector.attach(name, "q")``).
    Owners allocate, resize and — exactly once, in :meth:`close` — unlink
    the segment; attachers map it read-mostly and only ever ``close()``.
    """

    _shm: SharedMemory
    _typecode: str
    _itemsize: int
    _owner: bool
    _closed: bool
    _head: memoryview
    _live: memoryview
    _exports: List[memoryview]
    _finalizer: "weakref.finalize[Any, Any]"

    def __init__(
        self,
        typecode: str,
        values: Iterable[Any] = (),
        *,
        capacity: Optional[int] = None,
    ) -> None:
        staged = array(typecode, values)
        length = len(staged)
        floor = length + max(length // 4, MIN_SLACK)
        cap = max(floor, capacity if capacity is not None else 0)
        itemsize = self._checked_itemsize(typecode)
        shm = SharedMemory(create=True, size=HEADER_BYTES + cap * itemsize)
        self._adopt(shm, typecode, owner=True)
        self._head[0] = length
        self._head[1] = cap
        if length:
            self._shm.buf[
                HEADER_BYTES : HEADER_BYTES + length * itemsize
            ] = staged.tobytes()
        self._refresh_live()

    @classmethod
    def attach(cls, name: str, typecode: str) -> "ShmVector":
        """Map another process's segment; the caller never resizes it."""
        cls._checked_itemsize(typecode)
        vector = cls.__new__(cls)
        vector._adopt(attach_segment(name), typecode, owner=False)
        vector._refresh_live()
        return vector

    @staticmethod
    def _checked_itemsize(typecode: str) -> int:
        itemsize = ITEMSIZES.get(typecode)
        if itemsize is None:
            raise ShmSegmentError(
                f"shm vectors carry typecodes {sorted(ITEMSIZES)}, "
                f"got {typecode!r}"
            )
        return itemsize

    def _adopt(self, shm: SharedMemory, typecode: str, *, owner: bool) -> None:
        """Bind this vector to ``shm`` (fresh construction or re-home)."""
        self._shm = shm
        self._typecode = typecode
        self._itemsize = ITEMSIZES[typecode]
        self._owner = owner
        self._closed = False
        self._head = shm.buf[:HEADER_BYTES].cast("q")
        self._live = shm.buf[HEADER_BYTES:HEADER_BYTES].cast(typecode)
        self._exports = [self._head, self._live]
        self._finalizer = weakref.finalize(
            self, _release_segment, shm, self._exports, owner
        )

    def _refresh_live(self) -> None:
        """Rebuild the payload view to match the header's current length."""
        self._live.release()
        stop = HEADER_BYTES + int(self._head[0]) * self._itemsize
        self._live = self._shm.buf[HEADER_BYTES:stop].cast(self._typecode)
        self._exports[1] = self._live

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def typecode(self) -> str:
        """The element typecode (``"q"``/``"d"``/``"b"``)."""
        return self._typecode

    @property
    def segment_name(self) -> str:
        """The shm segment's attachable name (changes if the owner grows)."""
        return self._shm.name

    @property
    def segment_bytes(self) -> int:
        """Mapped size of the backing segment (header + capacity slack)."""
        return self._shm.size

    @property
    def capacity(self) -> int:
        """Elements the segment can hold before the owner must re-home."""
        return int(self._head[1])

    def __len__(self) -> int:
        return int(self._head[0])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShmVector({self._typecode!r}, len={len(self)}, "
            f"cap={self.capacity}, segment={self.segment_name!r})"
        )

    # ------------------------------------------------------------------
    # Element access
    # ------------------------------------------------------------------
    def view(self) -> memoryview:
        """The memoryview the query hot loops index.

        Returns the vector's own cached payload view, re-derived when a
        splice (possibly by the owning process, observed through the
        shared header) changed the length.  Plain value writes by the
        owner need no refresh: readers index the same buffer.
        """
        if len(self._live) != self._head[0]:
            self._refresh_live()
        return self._live

    def __getitem__(self, index: Any) -> Any:
        view = self.view()
        if isinstance(index, slice):
            return view[index].tolist()
        return view[index]

    def __iter__(self) -> Iterator[Any]:
        return iter(self.view())

    def tolist(self) -> List[Any]:
        """The payload as a plain list (tests / serialisation staging)."""
        return self.view().tolist()

    def tobytes(self) -> bytes:
        """The live payload bytes (serialisation)."""
        return bytes(self.view())

    def __setitem__(self, index: Any, value: Any) -> None:
        if isinstance(index, slice):
            start, stop, step = index.indices(len(self))
            if step != 1:
                raise ShmSegmentError("shm vectors only splice step-1 slices")
            self._splice(start, stop, value)
            return
        self.view()[index] = value

    def _coerce(self, values: VectorValues) -> Any:
        """Values as a same-format buffer memoryview assignment accepts."""
        if isinstance(values, ShmVector):
            return values.view()
        if isinstance(values, array) and values.typecode == self._typecode:
            return values
        if isinstance(values, memoryview) and values.format == self._typecode:
            return values
        return array(self._typecode, values)

    def _splice(self, start: int, stop: int, values: VectorValues) -> None:
        """Replace ``[start:stop)`` with ``values``, resizing if needed.

        Same-size rewrites are a single buffer copy (the patch planner's
        weight updates).  Resizes copy the tail once as bytes, shift it,
        and update the shared header — O(moved bytes), no reallocation
        while the new length fits the capacity slack; beyond that the
        owner re-homes into a larger segment (the name changes, which the
        serving pool turns into a worker reload).
        """
        staged = self._coerce(values)
        fresh = len(staged)
        old = stop - start
        if fresh == old:
            if fresh:
                self.view()[start:stop] = staged
            return
        if not self._owner:
            raise ShmSegmentError(
                "only the owning process may resize a shm vector "
                f"(segment {self.segment_name!r})"
            )
        length = len(self)
        new_length = length - old + fresh
        if new_length > self.capacity:
            self._grow(new_length)
        itemsize = self._itemsize
        buf = self._shm.buf
        if stop < length:
            tail = bytes(
                buf[
                    HEADER_BYTES + stop * itemsize :
                    HEADER_BYTES + length * itemsize
                ]
            )
            shifted = HEADER_BYTES + (start + fresh) * itemsize
            buf[shifted : shifted + len(tail)] = tail
        self._head[0] = new_length
        self._refresh_live()
        if fresh:
            self._live[start : start + fresh] = staged

    def _grow(self, needed: int) -> None:
        """Re-home into a larger segment (owner only); the name changes."""
        cap = self.capacity
        new_cap = max(needed, cap + max(cap // 2, MIN_SLACK))
        length = len(self)
        payload = bytes(
            self._shm.buf[
                HEADER_BYTES : HEADER_BYTES + length * self._itemsize
            ]
        )
        typecode = self._typecode
        fresh = SharedMemory(
            create=True, size=HEADER_BYTES + new_cap * self._itemsize
        )
        # Retire the old segment through the single close/unlink path,
        # then rebind to the fresh one.
        self.close()
        self._adopt(fresh, typecode, owner=True)
        self._head[0] = length
        self._head[1] = new_cap
        if payload:
            self._shm.buf[HEADER_BYTES : HEADER_BYTES + len(payload)] = payload
        self._refresh_live()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release this process's mapping; the owner also unlinks.

        Idempotent.  Each attached process must call this (RA006); the
        segment itself is destroyed exactly once, by the owner.
        """
        if self._closed:
            return
        self._closed = True
        self._finalizer.detach()
        for view in self._exports:
            view.release()
        self._shm.close()
        if self._owner:
            self._shm.unlink()


_AVAILABLE: Optional[bool] = None


def shared_memory_available() -> bool:
    """Whether this host can create POSIX shared-memory segments.

    Probed once per process by round-tripping a tiny segment; sandboxes
    without ``/dev/shm`` make the ``"shm"`` backend (and the process
    replica pool) unavailable rather than crashing mid-freeze.
    """
    global _AVAILABLE
    if _AVAILABLE is None:
        try:
            probe = ShmVector("q", (0,))
            probe.close()
        except (OSError, ValueError, ImportError):
            _AVAILABLE = False
        else:
            _AVAILABLE = True
    return _AVAILABLE
