"""Road-network file I/O in the Li dataset format [14].

The evaluation networks (CA, NA, SF) ship as two text files:

* node file — ``NodeID  x  y`` per line,
* edge file — ``EdgeID  StartNodeID  EndNodeID  distance`` per line.

:func:`load_network` reads that format, so the benchmarks run on the real
datasets whenever the files are present; :func:`save_network` writes it so
synthetic networks can be exported and inspected with the same tooling.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

from repro.graph.network import RoadNetwork

PathLike = Union[str, Path]


class NetworkFormatError(Exception):
    """Raised when a node/edge file line cannot be parsed."""


def load_network(
    node_path: PathLike, edge_path: PathLike, *, metric: str = "distance"
) -> RoadNetwork:
    """Load a network from Li-format node and edge files."""
    network = RoadNetwork(metric=metric)
    node_path = Path(node_path)
    edge_path = Path(edge_path)

    with open(node_path) as handle:
        for lineno, line in enumerate(handle, start=1):
            parts = line.split()
            if not parts:
                continue
            if len(parts) < 3:
                raise NetworkFormatError(
                    f"{node_path}:{lineno}: expected 'id x y', got {line!r}"
                )
            try:
                node_id = int(parts[0])
                x, y = float(parts[1]), float(parts[2])
            except ValueError as exc:
                raise NetworkFormatError(
                    f"{node_path}:{lineno}: bad node line {line!r}"
                ) from exc
            network.add_node(node_id, x, y)

    with open(edge_path) as handle:
        for lineno, line in enumerate(handle, start=1):
            parts = line.split()
            if not parts:
                continue
            if len(parts) < 4:
                raise NetworkFormatError(
                    f"{edge_path}:{lineno}: expected 'id u v dist', got {line!r}"
                )
            try:
                u, v = int(parts[1]), int(parts[2])
                distance = float(parts[3])
            except ValueError as exc:
                raise NetworkFormatError(
                    f"{edge_path}:{lineno}: bad edge line {line!r}"
                ) from exc
            if network.has_edge(u, v):
                continue  # real files contain both directions of each road
            network.add_edge(u, v, distance)
    return network


def save_network(network: RoadNetwork, node_path: PathLike, edge_path: PathLike) -> None:
    """Write a network as Li-format node and edge files."""
    with open(node_path, "w") as handle:
        for node_id in sorted(network.node_ids()):
            x, y = network.coords(node_id)
            handle.write(f"{node_id} {x:.6f} {y:.6f}\n")
    with open(edge_path, "w") as handle:
        for edge_id, (u, v, distance) in enumerate(sorted(network.edges())):
            handle.write(f"{edge_id} {u} {v} {distance:.6f}\n")
