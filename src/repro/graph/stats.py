"""Network statistics used to configure and report experiments."""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.network import RoadNetwork
from repro.graph.shortest_path import estimate_diameter


@dataclass(frozen=True)
class NetworkStats:
    """Summary of a road network's size and shape."""

    num_nodes: int
    num_edges: int
    edge_node_ratio: float
    avg_degree: float
    max_degree: int
    diameter: float
    total_length: float
    connected: bool

    def describe(self) -> str:
        """One-line summary matching Table 1's presentation style."""
        return (
            f"{self.num_nodes:,} nodes, {self.num_edges:,} edges "
            f"(ratio {self.edge_node_ratio:.3f}, diameter {self.diameter:.1f})"
        )


def network_stats(network: RoadNetwork, *, diameter_sweeps: int = 2) -> NetworkStats:
    """Compute the :class:`NetworkStats` of a network."""
    degrees = [network.degree(n) for n in network.node_ids()]
    num_nodes = network.num_nodes
    num_edges = network.num_edges
    return NetworkStats(
        num_nodes=num_nodes,
        num_edges=num_edges,
        edge_node_ratio=num_edges / num_nodes if num_nodes else 0.0,
        avg_degree=sum(degrees) / num_nodes if num_nodes else 0.0,
        max_degree=max(degrees) if degrees else 0,
        diameter=estimate_diameter(network, sweeps=diameter_sweeps),
        total_length=network.total_edge_distance(),
        connected=network.connected(),
    )
