"""Road-network substrate: graph model, shortest paths, generators, I/O."""

from repro.graph.generators import (
    ca_like,
    chain_network,
    grid_network,
    na_like,
    road_network,
    sf_like,
    travel_time_metric,
)
from repro.graph.io import load_network, save_network
from repro.graph.network import NetworkError, RoadNetwork, edge_key
from repro.graph.shortest_path import (
    astar,
    dijkstra,
    dijkstra_distances,
    estimate_diameter,
    euclidean_heuristic,
    network_distance,
    shortest_path,
    Unreachable,
)
from repro.graph.stats import NetworkStats, network_stats

__all__ = [
    "NetworkError",
    "NetworkStats",
    "RoadNetwork",
    "Unreachable",
    "astar",
    "ca_like",
    "chain_network",
    "dijkstra",
    "dijkstra_distances",
    "edge_key",
    "estimate_diameter",
    "euclidean_heuristic",
    "grid_network",
    "load_network",
    "na_like",
    "network_distance",
    "network_stats",
    "road_network",
    "save_network",
    "sf_like",
    "shortest_path",
    "travel_time_metric",
]
