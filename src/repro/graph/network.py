"""Road network model.

Section 3.1: a road network is a weighted graph ``N = (N, E)`` where nodes
are road intersections, edges are road segments, and every edge carries a
positive distance that "can represent the travel distance, trip time or toll
of the corresponding road segment".  :class:`RoadNetwork` implements that
model as an undirected weighted graph with node coordinates (coordinates are
needed by the geometric partitioner, the CCAM layout, and the Euclidean
baseline; the ROAD framework itself never relies on them).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Iterator, List, Set, Tuple

EdgeKey = Tuple[int, int]


def edge_key(u: int, v: int) -> EdgeKey:
    """Canonical unordered representation of edge (u, v)."""
    return (u, v) if u <= v else (v, u)


class NetworkError(Exception):
    """Raised on invalid network mutations (duplicate edges, bad weights)."""


class RoadNetwork:
    """Undirected weighted graph with coordinates.

    Parameters
    ----------
    metric:
        Descriptive name of what edge weights mean (``"distance"``,
        ``"travel_time"``, ``"toll"``).  ROAD treats all metrics uniformly;
        the Euclidean baseline refuses metrics where the Euclidean lower
        bound does not hold (Section 2).
    """

    def __init__(self, metric: str = "distance") -> None:
        self.metric = metric
        self._adj: Dict[int, Dict[int, float]] = {}
        self._coords: Dict[int, Tuple[float, float]] = {}
        self._num_edges = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(self, node_id: int, x: float = 0.0, y: float = 0.0) -> None:
        """Add an isolated node with coordinates (x, y)."""
        if node_id in self._adj:
            raise NetworkError(f"node {node_id} already exists")
        self._adj[node_id] = {}
        self._coords[node_id] = (float(x), float(y))

    def add_edge(self, u: int, v: int, distance: float) -> None:
        """Add undirected edge (u, v) with a positive distance."""
        if u == v:
            raise NetworkError(f"self-loop at node {u} not allowed")
        if distance <= 0:
            raise NetworkError(f"edge ({u}, {v}) needs positive distance")
        if u not in self._adj or v not in self._adj:
            missing = u if u not in self._adj else v
            raise NetworkError(f"node {missing} does not exist")
        if v in self._adj[u]:
            raise NetworkError(f"edge ({u}, {v}) already exists")
        self._adj[u][v] = float(distance)
        self._adj[v][u] = float(distance)
        self._num_edges += 1

    def remove_edge(self, u: int, v: int) -> float:
        """Delete edge (u, v); return its distance."""
        try:
            distance = self._adj[u].pop(v)
            self._adj[v].pop(u)
        except KeyError:
            raise NetworkError(f"edge ({u}, {v}) does not exist") from None
        self._num_edges -= 1
        return distance

    def remove_node(self, node_id: int) -> None:
        """Delete a node and all its incident edges."""
        if node_id not in self._adj:
            raise NetworkError(f"node {node_id} does not exist")
        for neighbour in list(self._adj[node_id]):
            self.remove_edge(node_id, neighbour)
        del self._adj[node_id]
        del self._coords[node_id]

    def update_edge(self, u: int, v: int, distance: float) -> float:
        """Change the distance of edge (u, v); return the old distance."""
        if distance <= 0:
            raise NetworkError(f"edge ({u}, {v}) needs positive distance")
        if u not in self._adj or v not in self._adj[u]:
            raise NetworkError(f"edge ({u}, {v}) does not exist")
        old = self._adj[u][v]
        self._adj[u][v] = float(distance)
        self._adj[v][u] = float(distance)
        return old

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of nodes."""
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        """Number of undirected edges."""
        return self._num_edges

    def has_node(self, node_id: int) -> bool:
        """True if the node exists."""
        return node_id in self._adj

    def has_edge(self, u: int, v: int) -> bool:
        """True if edge (u, v) exists."""
        return u in self._adj and v in self._adj[u]

    def node_ids(self) -> Iterator[int]:
        """Iterate node ids in insertion order."""
        return iter(self._adj)

    def neighbours(self, node_id: int) -> Iterator[Tuple[int, float]]:
        """Iterate (neighbour, distance) pairs of ``node_id``."""
        try:
            adj = self._adj[node_id]
        except KeyError:
            raise NetworkError(f"node {node_id} does not exist") from None
        return iter(adj.items())

    def degree(self, node_id: int) -> int:
        """Number of incident edges."""
        try:
            return len(self._adj[node_id])
        except KeyError:
            raise NetworkError(f"node {node_id} does not exist") from None

    def edge_distance(self, u: int, v: int) -> float:
        """Distance of edge (u, v)."""
        try:
            return self._adj[u][v]
        except KeyError:
            raise NetworkError(f"edge ({u}, {v}) does not exist") from None

    def edges(self) -> Iterator[Tuple[int, int, float]]:
        """Iterate undirected edges once each as (u, v, distance), u < v."""
        for u, adj in self._adj.items():
            for v, distance in adj.items():
                if u < v:
                    yield u, v, distance

    def coords(self, node_id: int) -> Tuple[float, float]:
        """Coordinates of ``node_id``."""
        try:
            return self._coords[node_id]
        except KeyError:
            raise NetworkError(f"node {node_id} does not exist") from None

    def set_coords(self, node_id: int, x: float, y: float) -> None:
        """Move a node (layout only; edge distances are untouched)."""
        if node_id not in self._coords:
            raise NetworkError(f"node {node_id} does not exist")
        self._coords[node_id] = (float(x), float(y))

    def euclidean(self, u: int, v: int) -> float:
        """Straight-line distance between two nodes' coordinates."""
        ux, uy = self.coords(u)
        vx, vy = self.coords(v)
        return math.hypot(ux - vx, uy - vy)

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    def copy(self) -> "RoadNetwork":
        """Deep copy (used by maintenance tests to diff before/after)."""
        dup = RoadNetwork(metric=self.metric)
        for node_id, (x, y) in self._coords.items():
            dup.add_node(node_id, x, y)
        for u, v, distance in self.edges():
            dup.add_edge(u, v, distance)
        return dup

    def edge_subgraph(self, edge_keys: Iterable[EdgeKey]) -> "RoadNetwork":
        """Subgraph induced by a set of edges (used for Rnet-local search)."""
        sub = RoadNetwork(metric=self.metric)
        for u, v in edge_keys:
            for node in (u, v):
                if not sub.has_node(node):
                    x, y = self.coords(node)
                    sub.add_node(node, x, y)
            sub.add_edge(u, v, self.edge_distance(u, v))
        return sub

    def connected(self) -> bool:
        """True if every node is reachable from every other node."""
        if self.num_nodes == 0:
            return True
        start = next(iter(self._adj))
        seen: Set[int] = {start}
        stack = [start]
        while stack:
            node = stack.pop()
            for neighbour in self._adj[node]:
                if neighbour not in seen:
                    seen.add(neighbour)
                    stack.append(neighbour)
        return len(seen) == self.num_nodes

    def components(self) -> List[Set[int]]:
        """Connected components as sets of node ids."""
        seen: Set[int] = set()
        out: List[Set[int]] = []
        for start in self._adj:
            if start in seen:
                continue
            comp = {start}
            stack = [start]
            seen.add(start)
            while stack:
                node = stack.pop()
                for neighbour in self._adj[node]:
                    if neighbour not in seen:
                        seen.add(neighbour)
                        comp.add(neighbour)
                        stack.append(neighbour)
            out.append(comp)
        return out

    def bounding_box(self) -> Tuple[float, float, float, float]:
        """(xmin, ymin, xmax, ymax) over node coordinates."""
        if not self._coords:
            raise NetworkError("empty network has no bounding box")
        xs = [c[0] for c in self._coords.values()]
        ys = [c[1] for c in self._coords.values()]
        return min(xs), min(ys), max(xs), max(ys)

    def total_edge_distance(self) -> float:
        """Sum of all edge distances."""
        return sum(d for _, _, d in self.edges())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RoadNetwork(metric={self.metric!r}, nodes={self.num_nodes}, "
            f"edges={self.num_edges})"
        )
