"""Shortest-path primitives: Dijkstra [4] and A* [3].

Every approach in the paper bottoms out in these algorithms: network
expansion *is* Dijkstra from the query node; ROAD runs Dijkstra over physical
edges plus shortcuts; shortcut construction runs Dijkstra inside Rnets and
over border graphs; the Euclidean baseline verifies candidates with A*.

All functions work against an *adjacency function* ``node -> iterable of
(neighbour, distance)`` so the same code serves the in-memory network, the
disk-resident :class:`~repro.storage.ccam.NetworkStore` (charging page I/O),
Rnet-restricted subgraphs, and border graphs made of shortcuts.
"""

from __future__ import annotations

import heapq
import math
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

from repro.graph.network import RoadNetwork

Adjacency = Callable[[int], Iterable[Tuple[int, float]]]


class Unreachable(Exception):
    """Raised when a requested target cannot be reached from the source."""


def dijkstra(
    adjacency: Adjacency,
    source: int,
    *,
    targets: Optional[Set[int]] = None,
    cutoff: Optional[float] = None,
) -> Tuple[Dict[int, float], Dict[int, int]]:
    """Single-source Dijkstra over an adjacency function.

    Parameters
    ----------
    adjacency:
        ``node -> iterable of (neighbour, edge_distance)``.
    source:
        Start node (distance 0).
    targets:
        Optional early-exit set: the search stops once every target has been
        settled (used for shortcut computation border-to-border).
    cutoff:
        Optional distance bound: nodes farther than ``cutoff`` are not
        settled (used by range queries and filter steps).

    Returns
    -------
    (distances, predecessors):
        ``distances[n]`` is the exact network distance for every settled
        node; ``predecessors[n]`` gives the previous node on one shortest
        path (absent for the source).
    """
    dist: Dict[int, float] = {source: 0.0}
    pred: Dict[int, int] = {}
    settled: Set[int] = set()
    pending = set(targets) if targets else None
    heap: List[Tuple[float, int]] = [(0.0, source)]
    while heap:
        d, node = heapq.heappop(heap)
        if node in settled:
            continue
        if cutoff is not None and d > cutoff:
            break
        settled.add(node)
        if pending is not None:
            pending.discard(node)
            if not pending:
                break
        for neighbour, weight in adjacency(node):
            if neighbour in settled:
                continue
            candidate = d + weight
            if cutoff is not None and candidate > cutoff:
                continue
            if candidate < dist.get(neighbour, math.inf):
                dist[neighbour] = candidate
                pred[neighbour] = node
                heapq.heappush(heap, (candidate, neighbour))
    # Drop tentative (never settled) labels so callers see exact values only.
    if len(settled) != len(dist):
        dist = {n: d for n, d in dist.items() if n in settled}
        pred = {n: p for n, p in pred.items() if n in settled}
    return dist, pred


def dijkstra_distances(
    adjacency: Adjacency,
    source: int,
    *,
    targets: Optional[Set[int]] = None,
    cutoff: Optional[float] = None,
) -> Dict[int, float]:
    """Like :func:`dijkstra` but returns only the distance map."""
    dist, _ = dijkstra(adjacency, source, targets=targets, cutoff=cutoff)
    return dist


def network_adjacency(network: RoadNetwork) -> Adjacency:
    """Adjacency function over an in-memory network."""
    return network.neighbours


def shortest_path(
    network: RoadNetwork, source: int, target: int
) -> Tuple[float, List[int]]:
    """Exact shortest path in a network; returns (distance, node sequence)."""
    dist, pred = dijkstra(network.neighbours, source, targets={target})
    if target not in dist:
        raise Unreachable(f"no path from {source} to {target}")
    return dist[target], reconstruct_path(pred, source, target)


def network_distance(network: RoadNetwork, source: int, target: int) -> float:
    """``||u, v||`` — the shortest-path distance between two nodes."""
    distance, _ = shortest_path(network, source, target)
    return distance


def reconstruct_path(pred: Dict[int, int], source: int, target: int) -> List[int]:
    """Rebuild the node sequence from a predecessor map."""
    path = [target]
    while path[-1] != source:
        path.append(pred[path[-1]])
    path.reverse()
    return path


def astar(
    adjacency: Adjacency,
    source: int,
    target: int,
    heuristic: Callable[[int], float],
    *,
    cutoff: Optional[float] = None,
) -> Tuple[float, List[int]]:
    """A* search with a caller-supplied admissible heuristic.

    The Euclidean baseline uses ``heuristic(n) = euclidean(n, target)``,
    valid only when edge weights dominate straight-line distance — exactly
    the limitation the paper holds against Euclidean-bound approaches.
    """
    dist: Dict[int, float] = {source: 0.0}
    pred: Dict[int, int] = {}
    settled: Set[int] = set()
    heap: List[Tuple[float, float, int]] = [(heuristic(source), 0.0, source)]
    while heap:
        _, d, node = heapq.heappop(heap)
        if node in settled:
            continue
        settled.add(node)
        if node == target:
            return d, reconstruct_path(pred, source, target)
        for neighbour, weight in adjacency(node):
            if neighbour in settled:
                continue
            candidate = d + weight
            if cutoff is not None and candidate > cutoff:
                continue
            if candidate < dist.get(neighbour, math.inf):
                dist[neighbour] = candidate
                pred[neighbour] = node
                heapq.heappush(
                    heap, (candidate + heuristic(neighbour), candidate, neighbour)
                )
    raise Unreachable(f"no path from {source} to {target}")


def euclidean_heuristic(network: RoadNetwork, target: int) -> Callable[[int], float]:
    """Heuristic for :func:`astar`: straight-line distance to ``target``."""
    tx, ty = network.coords(target)

    def h(node: int) -> float:
        x, y = network.coords(node)
        return math.hypot(x - tx, y - ty)

    return h


def eccentricity(network: RoadNetwork, source: int) -> Tuple[int, float]:
    """Farthest settled node and its distance from ``source``."""
    dist = dijkstra_distances(network.neighbours, source)
    # __getitem__ (not .get): every key is present, and the bound method
    # types as int -> float with no Optional to upset max()'s key.
    node = max(dist, key=dist.__getitem__)
    return node, dist[node]


def estimate_diameter(network: RoadNetwork, sweeps: int = 2) -> float:
    """Double-sweep estimate of the network diameter.

    The paper expresses range-query radii as fractions of the network
    diameter (Table 1); computing the exact diameter is quadratic, so we use
    the standard repeated farthest-node sweep, which is exact on trees and a
    tight lower bound on near-planar road networks.
    """
    if network.num_nodes == 0:
        return 0.0
    node = next(iter(network.node_ids()))
    best = 0.0
    for _ in range(max(1, sweeps)):
        node, distance = eccentricity(network, node)
        best = max(best, distance)
    return best
