"""Synthetic road-network generators.

The paper evaluates on three real networks from Li's dataset page [14]:

* ``CA`` — California highways: 21,048 nodes / 21,693 edges (ratio 1.031),
* ``NA`` — North America highways: 175,813 / 179,179 (ratio 1.019),
* ``SF`` — San Francisco streets: 174,956 / 223,001 (ratio 1.275).

Those files are not redistributable here, so this module synthesises
networks with the same *structural signatures* (documented in DESIGN.md §3):
random points triangulated with Delaunay, thinned to a connected spanning
structure plus the shortest extra edges needed to hit the target edge/node
ratio.  This yields connected, near-planar graphs whose degree distribution
and detour behaviour match highway (ratio ≈ 1.02–1.03) and urban street
(ratio ≈ 1.27) networks.  Real files still load through
:mod:`repro.graph.io` if available.

Every generator is deterministic under its ``seed``.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - annotations only
    import numpy as np

from repro.graph.network import RoadNetwork


def _numpy():
    """Import numpy on first use.

    Keeps ``import repro.graph`` (and everything layered on it — the core
    framework, FrozenRoad, the eval compare gate) stdlib-only; only the
    synthetic generators themselves need numpy, and environments without
    it (the no-numpy CI leg) still import and use the rest of the library.
    """
    from repro._optional import require_numpy

    return require_numpy("the synthetic network generators")


class GeneratorError(Exception):
    """Raised when requested parameters cannot produce a valid network."""


def _delaunay_edges(points: np.ndarray) -> List[Tuple[int, int]]:
    """Unique undirected edges of the Delaunay triangulation of ``points``."""
    from scipy.spatial import Delaunay  # imported lazily: optional heavy dep

    tri = Delaunay(points)
    edges = set()
    for simplex in tri.simplices:
        a, b, c = int(simplex[0]), int(simplex[1]), int(simplex[2])
        for u, v in ((a, b), (b, c), (a, c)):
            edges.add((u, v) if u < v else (v, u))
    return sorted(edges)


class _UnionFind:
    """Disjoint sets for Kruskal's spanning-tree construction."""

    def __init__(self, n: int) -> None:
        self.parent = list(range(n))
        self.rank = [0] * n

    def find(self, x: int) -> int:
        while self.parent[x] != x:
            self.parent[x] = self.parent[self.parent[x]]
            x = self.parent[x]
        return x

    def union(self, a: int, b: int) -> bool:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self.rank[ra] < self.rank[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        if self.rank[ra] == self.rank[rb]:
            self.rank[ra] += 1
        return True


def road_network(
    num_nodes: int,
    edge_ratio: float,
    *,
    seed: int = 0,
    extent: float = 1000.0,
    clusters: int = 0,
    weight_noise: float = 0.25,
    metric: str = "distance",
) -> RoadNetwork:
    """Generate a connected synthetic road network.

    Parameters
    ----------
    num_nodes:
        Number of road intersections (>= 3 for triangulation).
    edge_ratio:
        Target ``num_edges / num_nodes`` — 1.02 for continental highway
        meshes up to ~1.9 for dense grids.  Clamped to what the Delaunay
        triangulation can supply (≈ 3).
    seed:
        RNG seed; identical parameters and seed reproduce the same network.
    extent:
        Side length of the square region nodes are placed in.
    clusters:
        If positive, points are drawn around this many Gaussian "city"
        centres instead of uniformly (continent-scale networks are clumpy).
    weight_noise:
        Edge distance is Euclidean length times ``1 + U(0, weight_noise)``,
        so network distance dominates straight-line distance (the Euclidean
        lower bound of Section 2 holds) without being equal to it.
    metric:
        Metric label stored on the returned network.
    """
    if num_nodes < 3:
        raise GeneratorError("need at least 3 nodes for a triangulated network")
    if edge_ratio < 1.0 - 1.0 / num_nodes:
        raise GeneratorError("edge_ratio below spanning-tree density")
    np = _numpy()
    rng = np.random.RandomState(seed)

    if clusters > 0:
        centres = rng.uniform(0.1 * extent, 0.9 * extent, size=(clusters, 2))
        assignment = rng.randint(0, clusters, size=num_nodes)
        sigma = extent / (2.0 * math.sqrt(clusters))
        points = centres[assignment] + rng.normal(0.0, sigma, size=(num_nodes, 2))
        points = np.clip(points, 0.0, extent)
    else:
        points = rng.uniform(0.0, extent, size=(num_nodes, 2))
    # Delaunay merges coincident points (clipping creates them), which would
    # leave isolated nodes; spread everything slightly apart.
    points += rng.uniform(-1e-4 * extent, 1e-4 * extent, size=points.shape)

    edges = _delaunay_edges(points)
    lengths = {
        (u, v): float(np.hypot(*(points[u] - points[v]))) for u, v in edges
    }

    # Spanning tree first (connectivity), then the shortest remaining
    # Delaunay edges until the target count is reached: short links dominate
    # real road networks.
    ordered = sorted(edges, key=lambda e: lengths[e])
    uf = _UnionFind(num_nodes)
    chosen: List[Tuple[int, int]] = []
    rest: List[Tuple[int, int]] = []
    for u, v in ordered:
        if uf.union(u, v):
            chosen.append((u, v))
        else:
            rest.append((u, v))
    target_edges = int(round(edge_ratio * num_nodes))
    target_edges = max(target_edges, len(chosen))
    extra_needed = min(target_edges - len(chosen), len(rest))
    chosen.extend(rest[:extra_needed])

    network = RoadNetwork(metric=metric)
    for node_id in range(num_nodes):
        network.add_node(node_id, float(points[node_id][0]), float(points[node_id][1]))
    for u, v in chosen:
        noise = 1.0 + float(rng.uniform(0.0, weight_noise))
        network.add_edge(u, v, max(lengths[(u, v)] * noise, 1e-9))
    _repair_connectivity(network)
    # Real road datasets number intersections with strong spatial locality
    # (consecutive ids are near each other); reproduce that so id-keyed
    # indexes (B+-trees) see the same access locality as on the real files.
    return _relabel_by_bfs(network)


def _relabel_by_bfs(network: RoadNetwork) -> RoadNetwork:
    """Renumber nodes in breadth-first order from a corner node."""
    from collections import deque

    start = min(
        network.node_ids(),
        key=lambda n: (network.coords(n)[0] + network.coords(n)[1], n),
    )
    order: List[int] = []
    seen = {start}
    queue = deque([start])
    while queue:
        node = queue.popleft()
        order.append(node)
        for neighbour, _ in sorted(network.neighbours(node)):
            if neighbour not in seen:
                seen.add(neighbour)
                queue.append(neighbour)
    for node in network.node_ids():  # unreachable safety net
        if node not in seen:
            seen.add(node)
            order.append(node)
    mapping = {old: new for new, old in enumerate(order)}
    relabelled = RoadNetwork(metric=network.metric)
    for old in order:
        x, y = network.coords(old)
        relabelled.add_node(mapping[old], x, y)
    for u, v, distance in network.edges():
        relabelled.add_edge(mapping[u], mapping[v], distance)
    return relabelled


def _repair_connectivity(network: RoadNetwork) -> None:
    """Link stray components (degenerate Delaunay merges) to the main one."""
    components = network.components()
    if len(components) <= 1:
        return
    components.sort(key=len, reverse=True)
    main = components[0]
    for comp in components[1:]:
        best: Optional[Tuple[float, int, int]] = None
        for u in comp:
            ux, uy = network.coords(u)
            for v in main:
                vx, vy = network.coords(v)
                d = math.hypot(ux - vx, uy - vy)
                if best is None or d < best[0]:
                    best = (d, u, v)
        assert best is not None
        network.add_edge(best[1], best[2], max(best[0], 1e-9))
        main |= comp


def ca_like(num_nodes: int = 2100, seed: int = 7) -> RoadNetwork:
    """California-highway-like network (edge/node ratio ≈ 1.031).

    Default size is a 1:10 scale of the paper's 21,048-node CA network; pass
    ``num_nodes=21048`` for the full-scale equivalent.
    """
    return road_network(num_nodes, 1.031, seed=seed, clusters=0)


def na_like(num_nodes: int = 8000, seed: int = 11) -> RoadNetwork:
    """North-America-highway-like network (ratio ≈ 1.019, clustered)."""
    return road_network(num_nodes, 1.019, seed=seed, clusters=12)


def sf_like(num_nodes: int = 8000, seed: int = 13) -> RoadNetwork:
    """San-Francisco-street-like network (dense urban, ratio ≈ 1.275)."""
    return road_network(num_nodes, 1.275, seed=seed, clusters=0)


def grid_network(
    rows: int,
    cols: int,
    *,
    spacing: float = 100.0,
    seed: int = 0,
    jitter: float = 0.15,
    removal_prob: float = 0.0,
    metric: str = "distance",
) -> RoadNetwork:
    """Perturbed rectangular street grid (Manhattan-style test fixture).

    Grid networks make Rnet partitions and shortcut paths easy to reason
    about in tests; ``removal_prob`` knocks out random non-bridge edges to
    create irregular blocks while keeping the network connected.
    """
    if rows < 2 or cols < 2:
        raise GeneratorError("grid needs at least 2x2 nodes")
    rng = _numpy().random.RandomState(seed)
    network = RoadNetwork(metric=metric)

    def node_id(r: int, c: int) -> int:
        return r * cols + c

    for r in range(rows):
        for c in range(cols):
            dx = float(rng.uniform(-jitter, jitter)) * spacing
            dy = float(rng.uniform(-jitter, jitter)) * spacing
            network.add_node(node_id(r, c), c * spacing + dx, r * spacing + dy)
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                u, v = node_id(r, c), node_id(r, c + 1)
                network.add_edge(u, v, max(network.euclidean(u, v), 1e-9))
            if r + 1 < rows:
                u, v = node_id(r, c), node_id(r + 1, c)
                network.add_edge(u, v, max(network.euclidean(u, v), 1e-9))

    if removal_prob > 0.0:
        candidates = [(u, v) for u, v, _ in network.edges()]
        rng.shuffle(candidates)
        limit = int(len(candidates) * removal_prob)
        for u, v in candidates[:limit]:
            distance = network.remove_edge(u, v)
            if not network.connected():
                network.add_edge(u, v, distance)
    return network


def chain_network(
    num_nodes: int, *, spacing: float = 100.0, metric: str = "distance"
) -> RoadNetwork:
    """Path graph n0 - n1 - ... — the running example of Figure 8."""
    if num_nodes < 2:
        raise GeneratorError("chain needs at least 2 nodes")
    network = RoadNetwork(metric=metric)
    for i in range(num_nodes):
        network.add_node(i, i * spacing, 0.0)
    for i in range(num_nodes - 1):
        network.add_edge(i, i + 1, spacing)
    return network


def travel_time_metric(
    network: RoadNetwork, *, seed: int = 0, speed_range: Tuple[float, float] = (20.0, 120.0)
) -> RoadNetwork:
    """Reweight a network from length to travel time.

    Each edge gets a random road speed, so travel time is *not* bounded
    below by Euclidean distance — the situation where Euclidean-bound
    approaches are "not always applicable" (Sections 1–2) while ROAD's
    shortcuts simply carry the new metric.
    """
    rng = _numpy().random.RandomState(seed)
    lo, hi = speed_range
    if lo <= 0 or hi < lo:
        raise GeneratorError("invalid speed range")
    timed = RoadNetwork(metric="travel_time")
    for node_id in network.node_ids():
        x, y = network.coords(node_id)
        timed.add_node(node_id, x, y)
    for u, v, distance in network.edges():
        speed = float(rng.uniform(lo, hi))
        timed.add_edge(u, v, distance / speed)
    return timed
