"""Location-dependent spatial queries (LDSQs).

Section 3.1: "Each LDSQ is specified with a distance condition D and
attribute predicate A" — an object qualifies if its network distance from
the query node satisfies ``D`` and its attributes satisfy ``A`` (e.g.
``o.type = 'seafood'``).  The two common LDSQs the paper evaluates are kNN
queries (distance condition: among the k smallest) and range queries
(distance condition: within radius r).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Tuple

from repro.objects.model import SpatialObject


@dataclass(frozen=True)
class Predicate:
    """Attribute predicate ``A``: conjunction of attribute equalities.

    ``required`` is stored as a sorted tuple of (key, value) pairs so
    predicates are hashable and order-independent.  An empty predicate
    matches every object.
    """

    required: Tuple[Tuple[str, str], ...] = ()

    @staticmethod
    def of(**attrs: str) -> "Predicate":
        """Predicate requiring ``key == value`` for every keyword argument."""
        return Predicate(tuple(sorted(attrs.items())))

    @staticmethod
    def from_mapping(attrs: Mapping[str, str]) -> "Predicate":
        """Predicate from a mapping of required attribute values."""
        return Predicate(tuple(sorted(attrs.items())))

    @property
    def is_unconstrained(self) -> bool:
        """True if every object matches."""
        return not self.required

    def as_dict(self) -> Dict[str, str]:
        """Required attributes as a plain dict."""
        return dict(self.required)

    def matches(self, obj: SpatialObject) -> bool:
        """True if the object satisfies every required attribute."""
        return all(obj.attrs.get(key) == value for key, value in self.required)


#: The unconstrained predicate (all objects are "of interest").
ANY = Predicate()


@dataclass(frozen=True)
class KNNQuery:
    """k-nearest-neighbour LDSQ issued at a network node.

    Example from the paper's introduction — Q2: "find hotels within
    10-minute walk" is a range query; "find the nearest bus station" is a
    1-NN query.
    """

    node: int
    k: int
    predicate: Predicate = ANY

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError(f"k must be >= 1, got {self.k}")


@dataclass(frozen=True)
class RangeQuery:
    """Range LDSQ: all matching objects within network distance ``radius``."""

    node: int
    radius: float
    predicate: Predicate = ANY

    def __post_init__(self) -> None:
        if self.radius < 0:
            raise ValueError(f"radius must be >= 0, got {self.radius}")


#: Aggregate functions an :class:`AggregateKNNQuery` may request (the
#: callables live in :data:`repro.core.aggregate.AGGREGATES`).
AGGREGATE_FUNCTIONS: Tuple[str, ...] = ("sum", "max", "min")


@dataclass(frozen=True)
class AggregateKNNQuery:
    """Aggregate kNN LDSQ issued at several network nodes at once.

    The k objects minimising ``agg`` (``"sum"``, ``"max"`` or ``"min"``)
    of their network distances from ``nodes`` — a group of friends picking
    a restaurant, a fleet picking a depot.  Result ``distance`` fields
    carry the aggregate values.
    """

    nodes: Tuple[int, ...]
    k: int
    agg: str = "sum"
    predicate: Predicate = ANY

    def __post_init__(self) -> None:
        object.__setattr__(self, "nodes", tuple(self.nodes))
        if not self.nodes:
            raise ValueError("need at least one query node")
        if self.k < 1:
            raise ValueError(f"k must be >= 1, got {self.k}")
        if self.agg not in AGGREGATE_FUNCTIONS:
            raise ValueError(
                f"agg must be one of {AGGREGATE_FUNCTIONS}, got {self.agg!r}"
            )


@dataclass(frozen=True)
class ResultEntry:
    """One answer object with its exact network distance from the query."""

    object_id: int
    distance: float


def sort_result(entries: List[ResultEntry]) -> List[ResultEntry]:
    """Order entries by (distance, object id) — the canonical result order."""
    return sorted(entries, key=lambda e: (e.distance, e.object_id))
