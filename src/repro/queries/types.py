"""Location-dependent spatial queries (LDSQs) and network workloads.

Section 3.1: "Each LDSQ is specified with a distance condition D and
attribute predicate A" — an object qualifies if its network distance from
the query node satisfies ``D`` and its attributes satisfy ``A`` (e.g.
``o.type = 'seafood'``).  The two common LDSQs the paper evaluates are kNN
queries (distance condition: among the k smallest) and range queries
(distance condition: within radius r).

Beyond the paper's menu, the network-analysis workloads ride the same
dispatch registry: :class:`ODMatrixQuery` (many-to-many cost matrices),
:class:`ServiceAreaQuery` (multi-break isochrones) and
:class:`RouteKNNQuery` (k best objects by detour distance from a route).

Every query dataclass validates through one small set of shared helpers
(`_require_node` and friends) so the rules are identical everywhere:
node ids are ints with bools rejected (matching the wire codecs'
bool-rejecting integer rule), counts are ints >= 1, and radii/breaks are
finite non-negative numbers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Tuple, Union

from repro.objects.model import SpatialObject


def _require_node(value: object, *, field: str = "node") -> int:
    """An integer node id; bools are rejected (they are int subclasses)."""
    if not isinstance(value, int) or isinstance(value, bool):
        raise ValueError(f"{field} must be an integer node id, got {value!r}")
    return value


def _require_nodes(
    values: Iterable[object], *, field: str, allow_empty: bool = False
) -> Tuple[int, ...]:
    """A tuple of node ids, non-empty unless ``allow_empty``."""
    nodes = tuple(values)
    if not nodes and not allow_empty:
        raise ValueError(f"need at least one {field} node")
    for node in nodes:
        _require_node(node, field=field)
    return nodes  # type: ignore[return-value]


def _require_count(value: object, *, field: str = "k") -> int:
    """An integer count >= 1; bools are rejected."""
    if not isinstance(value, int) or isinstance(value, bool):
        raise ValueError(f"{field} must be an integer, got {value!r}")
    if value < 1:
        raise ValueError(f"{field} must be >= 1, got {value}")
    return value


def _require_distance(value: object, *, field: str) -> float:
    """A finite non-negative number (radius, break, ...), as a float."""
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise ValueError(f"{field} must be a number, got {value!r}")
    number = float(value)
    if math.isnan(number):
        raise ValueError(f"{field} must be a number, got {value!r}")
    if number < 0:
        raise ValueError(f"{field} must be >= 0, got {value}")
    if math.isinf(number):
        raise ValueError(f"{field} must be finite, got {value}")
    return number


@dataclass(frozen=True)
class Predicate:
    """Attribute predicate ``A``: conjunction of attribute equalities.

    ``required`` is stored as a sorted tuple of (key, value) pairs so
    predicates are hashable and order-independent.  An empty predicate
    matches every object.
    """

    required: Tuple[Tuple[str, str], ...] = ()

    @staticmethod
    def of(**attrs: str) -> "Predicate":
        """Predicate requiring ``key == value`` for every keyword argument."""
        return Predicate(tuple(sorted(attrs.items())))

    @staticmethod
    def from_mapping(attrs: Mapping[str, str]) -> "Predicate":
        """Predicate from a mapping of required attribute values."""
        return Predicate(tuple(sorted(attrs.items())))

    @property
    def is_unconstrained(self) -> bool:
        """True if every object matches."""
        return not self.required

    def as_dict(self) -> Dict[str, str]:
        """Required attributes as a plain dict."""
        return dict(self.required)

    def matches(self, obj: SpatialObject) -> bool:
        """True if the object satisfies every required attribute."""
        return all(obj.attrs.get(key) == value for key, value in self.required)


#: The unconstrained predicate (all objects are "of interest").
ANY = Predicate()


@dataclass(frozen=True)
class KNNQuery:
    """k-nearest-neighbour LDSQ issued at a network node.

    Example from the paper's introduction — Q2: "find hotels within
    10-minute walk" is a range query; "find the nearest bus station" is a
    1-NN query.
    """

    node: int
    k: int
    predicate: Predicate = ANY

    def __post_init__(self) -> None:
        _require_node(self.node)
        _require_count(self.k)


@dataclass(frozen=True)
class RangeQuery:
    """Range LDSQ: all matching objects within network distance ``radius``."""

    node: int
    radius: float
    predicate: Predicate = ANY

    def __post_init__(self) -> None:
        _require_node(self.node)
        object.__setattr__(
            self, "radius", _require_distance(self.radius, field="radius")
        )


#: Aggregate functions an :class:`AggregateKNNQuery` may request (the
#: callables live in :data:`repro.core.aggregate.AGGREGATES`).
AGGREGATE_FUNCTIONS: Tuple[str, ...] = ("sum", "max", "min")


@dataclass(frozen=True)
class AggregateKNNQuery:
    """Aggregate kNN LDSQ issued at several network nodes at once.

    The k objects minimising ``agg`` (``"sum"``, ``"max"`` or ``"min"``)
    of their network distances from ``nodes`` — a group of friends picking
    a restaurant, a fleet picking a depot.  Result ``distance`` fields
    carry the aggregate values.
    """

    nodes: Tuple[int, ...]
    k: int
    agg: str = "sum"
    predicate: Predicate = ANY

    def __post_init__(self) -> None:
        object.__setattr__(self, "nodes", _require_nodes(self.nodes, field="query"))
        _require_count(self.k)
        if self.agg not in AGGREGATE_FUNCTIONS:
            raise ValueError(
                f"agg must be one of {AGGREGATE_FUNCTIONS}, got {self.agg!r}"
            )


@dataclass(frozen=True)
class ODMatrixQuery:
    """Origin-destination cost matrix: many-to-many network distances.

    The answer is one :class:`ODMatrixEntry` per (source, target) pair in
    row-major order (all targets of the first source, then the second,
    ...); an unreachable pair carries ``distance = inf``.  ``sources``
    must be non-empty; ``targets`` may be empty (an empty matrix — the
    degenerate "no destinations yet" shape).  There is no attribute
    predicate: the matrix is a pure network-distance product.
    """

    sources: Tuple[int, ...]
    targets: Tuple[int, ...]

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "sources", _require_nodes(self.sources, field="sources")
        )
        object.__setattr__(
            self,
            "targets",
            _require_nodes(self.targets, field="targets", allow_empty=True),
        )


@dataclass(frozen=True)
class ServiceAreaQuery:
    """Multi-break isochrone: matching objects bucketed by travel cost.

    ``breaks`` are the cumulative cost cut-offs (e.g. ``(5, 10, 15)``
    minutes); the answer is every matching object within the largest
    break, each tagged with the index of the first break covering it
    (:attr:`ServiceAreaEntry.bucket`).  Breaks may arrive unsorted —
    they are normalised to ascending order; each must be a finite
    non-negative number and at least one is required.
    """

    node: int
    breaks: Tuple[float, ...]
    predicate: Predicate = ANY

    def __post_init__(self) -> None:
        _require_node(self.node)
        raw = tuple(self.breaks)
        if not raw:
            raise ValueError("need at least one break")
        cleaned = sorted(_require_distance(b, field="break") for b in raw)
        object.__setattr__(self, "breaks", tuple(cleaned))


@dataclass(frozen=True)
class RouteKNNQuery:
    """In-route kNN: the k best objects by detour distance from a path.

    "Nearest charger along my route": every node of ``path`` seeds one
    multi-source sweep at distance 0, so an object's distance is the
    smallest detour from any point of the route.  Duplicate path nodes
    are legal (loops, stuttered GPS traces) and collapse to one seed.
    """

    path: Tuple[int, ...]
    k: int
    predicate: Predicate = ANY

    def __post_init__(self) -> None:
        object.__setattr__(self, "path", _require_nodes(self.path, field="path"))
        _require_count(self.k)


@dataclass(frozen=True)
class ResultEntry:
    """One answer object with its exact network distance from the query."""

    object_id: int
    distance: float


@dataclass(frozen=True)
class ServiceAreaEntry(ResultEntry):
    """A service-area answer: the object plus its isochrone bucket.

    ``bucket`` indexes into the query's (sorted) ``breaks``: the first
    break that covers the object's distance.
    """

    bucket: int


@dataclass(frozen=True)
class ODMatrixEntry:
    """One source->target cell of an OD cost matrix.

    ``distance`` is ``inf`` when the target is unreachable from the
    source (``null`` on the wire).
    """

    source: int
    target: int
    distance: float


#: Any row an executor may return: plain / bucketed object answers, or
#: OD matrix cells.  (``ServiceAreaEntry`` is a ``ResultEntry``.)
ResultRow = Union[ResultEntry, ODMatrixEntry]


def sort_result(entries: List[ResultEntry]) -> List[ResultEntry]:
    """Order entries by (distance, object id) — the canonical result order."""
    return sorted(entries, key=lambda e: (e.distance, e.object_id))
