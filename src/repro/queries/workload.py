"""Query workload generation.

The evaluation issues "100 queries issued at random positions" per
configuration (Section 6.3) and reports average processing time.  These
helpers sample query nodes and build kNN / range workloads deterministically
from a seed.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Sequence

if TYPE_CHECKING:  # pragma: no cover - annotations only
    import numpy as np

from repro.graph.network import RoadNetwork
from repro.queries.types import ANY, KNNQuery, Predicate, RangeQuery


def _rng(seed: int) -> "np.random.RandomState":
    """Lazy numpy import: workload sampling needs it, query types and the
    numpy-free deployments of the core library do not."""
    from repro._optional import require_numpy

    return require_numpy("workload sampling").random.RandomState(seed)


def random_query_nodes(
    network: RoadNetwork, count: int, *, seed: int = 0
) -> List[int]:
    """Sample ``count`` query nodes uniformly (with replacement)."""
    rng = _rng(seed)
    nodes = sorted(network.node_ids())
    return [nodes[i] for i in rng.randint(0, len(nodes), size=count)]


def knn_workload(
    network: RoadNetwork,
    count: int,
    k: int,
    *,
    seed: int = 0,
    predicate: Predicate = ANY,
) -> List[KNNQuery]:
    """``count`` kNN queries at random nodes."""
    return [
        KNNQuery(node, k, predicate)
        for node in random_query_nodes(network, count, seed=seed)
    ]


def range_workload(
    network: RoadNetwork,
    count: int,
    radius: float,
    *,
    seed: int = 0,
    predicate: Predicate = ANY,
) -> List[RangeQuery]:
    """``count`` range queries at random nodes with a fixed radius."""
    return [
        RangeQuery(node, radius, predicate)
        for node in random_query_nodes(network, count, seed=seed)
    ]


def mixed_workload(
    network: RoadNetwork,
    count: int,
    *,
    k: int = 5,
    radius: float = 0.0,
    seed: int = 0,
    predicates: Sequence[Predicate] = (ANY,),
    knn_fraction: float = 0.5,
) -> List[object]:
    """A server-shaped batch: kNN and range queries interleaved.

    Draws ``count`` queries at random nodes, each kNN with probability
    ``knn_fraction`` (range otherwise) with a predicate cycled from
    ``predicates`` — the input shape :meth:`ROAD.execute_many` and
    :meth:`FrozenRoad.execute_many` are built for, where few distinct
    predicates amortise the shared predicate caches across many queries.
    """
    if not predicates:
        raise ValueError("need at least one predicate")
    rng = _rng(seed)
    nodes = random_query_nodes(network, count, seed=seed)
    queries: List[object] = []
    for i, node in enumerate(nodes):
        predicate = predicates[i % len(predicates)]
        if rng.random_sample() < knn_fraction:
            queries.append(KNNQuery(node, k, predicate))
        else:
            queries.append(RangeQuery(node, radius, predicate))
    return queries
