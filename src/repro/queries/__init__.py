"""LDSQ query types, network workloads, and workload generators."""

from repro.queries.types import (
    AGGREGATE_FUNCTIONS,
    ANY,
    AggregateKNNQuery,
    KNNQuery,
    ODMatrixEntry,
    ODMatrixQuery,
    Predicate,
    RangeQuery,
    ResultEntry,
    ResultRow,
    RouteKNNQuery,
    ServiceAreaEntry,
    ServiceAreaQuery,
    sort_result,
)
from repro.queries.workload import (
    knn_workload,
    mixed_workload,
    random_query_nodes,
    range_workload,
)

__all__ = [
    "AGGREGATE_FUNCTIONS",
    "ANY",
    "AggregateKNNQuery",
    "KNNQuery",
    "ODMatrixEntry",
    "ODMatrixQuery",
    "Predicate",
    "RangeQuery",
    "ResultEntry",
    "ResultRow",
    "RouteKNNQuery",
    "ServiceAreaEntry",
    "ServiceAreaQuery",
    "knn_workload",
    "mixed_workload",
    "random_query_nodes",
    "range_workload",
    "sort_result",
]
