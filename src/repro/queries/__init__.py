"""LDSQ query types and workload generators."""

from repro.queries.types import (
    AGGREGATE_FUNCTIONS,
    ANY,
    AggregateKNNQuery,
    KNNQuery,
    Predicate,
    RangeQuery,
    ResultEntry,
    sort_result,
)
from repro.queries.workload import (
    knn_workload,
    mixed_workload,
    random_query_nodes,
    range_workload,
)

__all__ = [
    "AGGREGATE_FUNCTIONS",
    "ANY",
    "AggregateKNNQuery",
    "KNNQuery",
    "Predicate",
    "RangeQuery",
    "ResultEntry",
    "knn_workload",
    "mixed_workload",
    "random_query_nodes",
    "range_workload",
    "sort_result",
]
