"""The :class:`RoadService` facade: one public way to run queries.

The dispatch protocol (:mod:`repro.serving.dispatch`) makes every engine
answer ``execute`` / ``execute_many`` identically; this module puts one
front door in front of them:

* :class:`ServiceConfig` — a typed configuration owning engine selection
  (engine family, charged/frozen mode, maintenance lifecycle, array
  backend, serving directory) plus the admission-batching knobs.  The
  historical ``REPRO_*`` environment variables are *overrides* read by
  :meth:`ServiceConfig.from_env`, not the primary API.
* :class:`RoadService` — sync ``run``/``run_many`` over the configured
  executor, and an **asyncio front-end**: ``await service.submit(query)``
  parks the query in a per-(directory, predicate) admission bucket; a
  flush (on ``max_batch`` occupancy or after ``max_delay_ms``) coalesces
  duplicate in-flight queries and executes each bucket through one
  ``execute_many`` call, so concurrent callers share predicate caches —
  and, when ``replicas > 0``, a pool of read-only
  :class:`~repro.core.frozen.FrozenRoad` replicas served from worker
  threads.  Maintenance goes through the service too: every update's
  :class:`~repro.core.maintenance.MaintenanceReport` is patch-broadcast
  to all replicas, so the shards never drift from the primary.

Typical use::

    config = ServiceConfig(mode="frozen", backend="compact", replicas=2)
    service = RoadService.build(network, objects, config=config)
    nearest = service.run(KNNQuery(node, k=5))          # sync
    answers = await asyncio.gather(                     # async, batched
        *(service.submit(q) for q in queries)
    )

All three paths — sync, async-batched, sharded-replica — return
byte-identical results; the serving test suite asserts it with the
:func:`repro.eval.metrics.snapshot_divergences` probes.
"""

from __future__ import annotations

import asyncio
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.baselines.road_adapter import ROAD_MAINTENANCE_MODES, ROAD_MODES
from repro.core.maintenance import MaintenanceReport
from repro.queries.types import ResultRow
from repro.serving.dispatch import (
    QueryExecutor,
    UnknownDirectoryError,
    UnsupportedQueryError,
)
from repro.serving.metrics import BATCH_SIZE_BUCKETS, Counter, MetricsRegistry
from repro.serving.process_pool import ProcessReplicaPool
from repro.serving.result_cache import (
    MISS,
    ResultCache,
    canonical_key,
    query_nodes,
)

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from repro.core.framework import ROAD
    from repro.core.frozen import FrozenRoad
    from repro.core.search import SearchStats
    from repro.graph.network import RoadNetwork
    from repro.objects.model import ObjectSet
    from repro.storage.pager import PageManager

#: One admitted (query, completion future) pair; the future completes
#: with that query's result list.
_Entry = Tuple[object, "asyncio.Future[List[ResultRow]]"]

#: Engine families :meth:`RoadService.build` can construct.
ENGINE_NAMES = ("ROAD", "NetExp", "Euclidean", "DistIdx")

#: ROAD serving modes — the one source of truth lives on the engine.
MODES = ROAD_MODES

#: Frozen-snapshot maintenance lifecycles (same source of truth).
MAINTENANCE_MODES = ROAD_MAINTENANCE_MODES

#: How replica shards execute: interpreter threads over per-shard
#: snapshots, or worker processes over one shared-memory snapshot.
REPLICA_MODES = ("thread", "process")

#: Environment overrides honoured by :meth:`ServiceConfig.from_env`.
MODE_ENV = "REPRO_ENGINE"
MAINTENANCE_ENV = "REPRO_MAINTENANCE"
REPLICAS_ENV = "REPRO_REPLICAS"
REPLICA_MODE_ENV = "REPRO_REPLICA_MODE"
DIRECTORIES_ENV = "REPRO_DIRECTORIES"
RESULT_CACHE_ENV = "REPRO_RESULT_CACHE"
CACHE_BUDGET_ENV = "REPRO_CACHE_BUDGET"

#: Counter names the result cache mirrors into ``/metrics`` families
#: (``road_cache_<name>_total``).
_CACHE_COUNTER_HELP: Dict[str, str] = {
    "hits": "Queries answered from the result cache.",
    "misses": "Cache lookups that fell through to execution.",
    "evictions": "Entries dropped by the LRU budget.",
    "invalidations": "Entries evicted by maintenance reports.",
}


def _parse_bool(name: str, raw: str) -> bool:
    """A strict boolean env flag — a typo must not silently disable."""
    value = raw.strip().lower()
    if value in ("1", "true", "yes", "on"):
        return True
    if value in ("0", "false", "no", "off", ""):
        return False
    raise ValueError(f"{name} must be a boolean flag, got {raw!r}")


class ServiceError(RuntimeError):
    """A service-level misconfiguration (e.g. replicas without a ROAD)."""


#: Service-level counters and their ``/metrics`` help lines.  The dict in
#: ``RoadService._counters`` stays the cheap in-process view; each name is
#: mirrored into a ``road_service_<name>_total`` counter family.
_SERVICE_COUNTER_HELP: Dict[str, str] = {
    "submitted": "Queries accepted by submit().",
    "flushes": "Admission-bucket flushes drained.",
    "batches": "execute_many calls issued by flushes.",
    "executed": "Queries actually executed (after coalescing).",
    "coalesced": "Queries answered by an in-flight twin.",
}


def _stat_number(stats: Mapping[str, object], key: str) -> float:
    """One numeric field of a stats mapping, 0.0 when absent/non-numeric."""
    value = stats.get(key)
    return float(value) if isinstance(value, (int, float)) else 0.0


@dataclass(frozen=True)
class ServiceConfig:
    """Typed serving configuration: what was previously ``REPRO_*`` sprawl.

    ``engine`` picks the engine family; ``mode``/``maintenance``/
    ``backend`` configure the ROAD serving path exactly like the
    eponymous :class:`~repro.baselines.road_adapter.ROADEngine` knobs.
    The remaining fields drive the async front-end: ``max_batch`` caps
    how many queries one admission flush may hold, ``max_delay_ms`` how
    long an under-full bucket waits for company, ``coalesce`` whether
    identical in-flight queries share one execution, and ``replicas``
    how many read-only frozen shards serve from the worker pool
    (0 = serve on the primary executor), and ``replica_mode`` what a
    shard *is*: ``"thread"`` replicas are per-shard snapshot copies
    served by pool threads (one interpreter, concurrency not
    parallelism), ``"process"`` replicas are worker processes attached
    to one shared ``backend="shm"`` snapshot
    (:class:`~repro.serving.process_pool.ProcessReplicaPool`) — real
    CPU parallelism at one snapshot's memory cost.
    """

    engine: str = "ROAD"
    mode: str = "charged"
    maintenance: str = "patch"
    backend: Optional[str] = None
    #: None targets the executor's own default directory (for a snapshot
    #: of a named provider, the directory it compiled).
    directory: Optional[str] = None
    #: Which attached directories frozen snapshots (the ROAD engine's and
    #: the replica shards') compile — None compiles **all** attached
    #: providers into one snapshot sharing the entry arrays.
    directories: Optional[Tuple[str, ...]] = None
    levels: int = 4
    fanout: int = 4
    max_batch: int = 64
    max_delay_ms: float = 2.0
    coalesce: bool = True
    replicas: int = 0
    replica_mode: str = "thread"
    #: Serve repeated queries from a cross-request result cache whose
    #: entries are invalidated by maintenance-report footprints
    #: (:mod:`repro.serving.result_cache`).  Composes with ``coalesce``:
    #: coalescing dedupes *in-flight* twins inside one flush, the cache
    #: dedupes *across* flushes.
    result_cache: bool = False
    #: Max cached entries (LRU evicts beyond this).
    cache_budget: int = 2048

    def __post_init__(self) -> None:
        if self.engine not in ENGINE_NAMES:
            raise ValueError(
                f"engine must be one of {ENGINE_NAMES}, got {self.engine!r}"
            )
        if self.mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}, got {self.mode!r}")
        if self.maintenance not in MAINTENANCE_MODES:
            raise ValueError(
                f"maintenance must be one of {MAINTENANCE_MODES}, "
                f"got {self.maintenance!r}"
            )
        if self.backend is not None:
            from repro.core.frozen_backends import validate_backend_name

            validate_backend_name(self.backend, source="ServiceConfig.backend")
        if self.directories is not None:
            if isinstance(self.directories, str):
                raise ValueError(
                    f"directories must be a sequence of names, not the "
                    f"single string {self.directories!r} (it would split "
                    f"into per-character names); wrap it in a tuple"
                )
            names = tuple(self.directories)
            if not names or not all(isinstance(name, str) and name for name in names):
                raise ValueError(
                    "directories must be a non-empty sequence of directory "
                    f"names, got {self.directories!r}"
                )
            if len(set(names)) != len(names):
                raise ValueError(f"directories lists a name twice: {names!r}")
            # Normalise any iterable to the hashable tuple form (the
            # dataclass is frozen, hence the object.__setattr__).
            object.__setattr__(self, "directories", names)
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_delay_ms < 0:
            raise ValueError(f"max_delay_ms must be >= 0, got {self.max_delay_ms}")
        if self.replicas < 0:
            raise ValueError(f"replicas must be >= 0, got {self.replicas}")
        if self.replica_mode not in REPLICA_MODES:
            raise ValueError(
                f"replica_mode must be one of {REPLICA_MODES}, "
                f"got {self.replica_mode!r}"
            )
        if self.cache_budget < 1:
            raise ValueError(
                f"cache_budget must be >= 1, got {self.cache_budget}"
            )

    @classmethod
    def from_env(cls, **overrides: Any) -> "ServiceConfig":
        """A config from the ``REPRO_*`` environment overrides.

        Explicit keyword arguments beat the environment; the environment
        beats the defaults.  This is the one place the serving stack
        reads those variables — everything else takes a config object.
        """
        from repro.core.frozen_backends import BACKEND_ENV

        env: Dict[str, Any] = {}
        if MODE_ENV in os.environ:
            env["mode"] = os.environ[MODE_ENV].lower()
        if MAINTENANCE_ENV in os.environ:
            env["maintenance"] = os.environ[MAINTENANCE_ENV].lower()
        if BACKEND_ENV in os.environ:
            env["backend"] = os.environ[BACKEND_ENV].lower()
        if REPLICAS_ENV in os.environ:
            env["replicas"] = int(os.environ[REPLICAS_ENV])
        if REPLICA_MODE_ENV in os.environ:
            env["replica_mode"] = os.environ[REPLICA_MODE_ENV].lower()
        if DIRECTORIES_ENV in os.environ:
            names = tuple(
                name.strip()
                for name in os.environ[DIRECTORIES_ENV].split(",")
                if name.strip()
            )
            if not names:
                # A malformed restriction must not degrade to "compile
                # everything" — that is the opposite of what was asked.
                raise ValueError(
                    f"{DIRECTORIES_ENV} must name at least one directory, "
                    f"got {os.environ[DIRECTORIES_ENV]!r}"
                )
            env["directories"] = names
        if RESULT_CACHE_ENV in os.environ:
            env["result_cache"] = _parse_bool(
                RESULT_CACHE_ENV, os.environ[RESULT_CACHE_ENV]
            )
        if CACHE_BUDGET_ENV in os.environ:
            env["cache_budget"] = int(os.environ[CACHE_BUDGET_ENV])
        env.update(overrides)
        return cls(**env)


class RoadService:
    """The serving facade over one :class:`~repro.serving.QueryExecutor`.

    Construct over an existing executor (a built
    :class:`~repro.core.framework.ROAD`, a
    :class:`~repro.core.frozen.FrozenRoad`, a
    :class:`~repro.baselines.road_adapter.ROADEngine` or any baseline),
    or let :meth:`build` construct the engine the config asks for.

    The async front-end is single-loop: call :meth:`submit` from one
    running event loop (the flush machinery uses that loop's clock and
    thread); the replica worker pool is where cross-thread execution
    happens.
    """

    def __init__(
        self,
        executor: QueryExecutor,
        *,
        config: Optional[ServiceConfig] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if not isinstance(executor, QueryExecutor):
            raise TypeError(
                f"executor must be a QueryExecutor, got {type(executor).__name__}"
            )
        self.config = config if config is not None else ServiceConfig()
        self._executor = executor
        # -- async admission state (touched only from the loop thread) --
        self._pending: Dict[Tuple[str, object], List[_Entry]] = {}
        self._pending_count = 0
        self._flush_handle: Optional[asyncio.TimerHandle] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        # -- sharded replicas -------------------------------------------
        self._replicas: List[QueryExecutor] = []
        self._replica_locks: List[threading.Lock] = []
        self._pool: Optional[ThreadPoolExecutor] = None
        self._process_pool: Optional[ProcessReplicaPool] = None
        self._round_robin = 0
        self._counters = {name: 0 for name in _SERVICE_COUNTER_HELP}
        # Thread-mode replica-pool counters, mirroring the field names of
        # ProcessReplicaPool.stats() so replica_pool_stats() is uniform
        # across modes.  Touched only on the loop thread (dispatch) and
        # the maintenance caller — informational, not synchronised.
        self._pool_counters = {
            "batches": 0,
            "queries": 0,
            "syncs": 0,
            "reloads": 0,
            "retries": 0,
            "worker_deaths": 0,
        }
        self._result_cache: Optional[ResultCache] = None
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._register_metrics()
        if self.config.result_cache:
            self._result_cache = ResultCache(
                self.config.cache_budget,
                counters=dict(self._cache_counters),
            )
        if self.config.replicas:
            self._init_replicas()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        network: "RoadNetwork",
        objects: "ObjectSet",
        *,
        config: Optional[ServiceConfig] = None,
        pager: Optional["PageManager"] = None,
        **engine_kwargs: Any,
    ) -> "RoadService":
        """Build the engine the config selects and wrap it.

        ``config=None`` reads the environment overrides
        (:meth:`ServiceConfig.from_env`).  Extra keyword arguments are
        forwarded to the engine constructor (``bisector``,
        ``abstract_factory``, ...).
        """
        from repro.baselines import (
            DistanceIndexEngine,
            EuclideanEngine,
            NetworkExpansionEngine,
            ROADEngine,
        )

        if config is None:
            config = ServiceConfig.from_env()
        if config.engine == "ROAD":
            executor = ROADEngine(
                network,
                objects,
                pager,
                levels=config.levels,
                fanout=config.fanout,
                mode=config.mode,
                maintenance_mode=config.maintenance,
                backend=config.backend,
                directories=config.directories,
                **engine_kwargs,
            )
        else:
            engine_cls = {
                "NetExp": NetworkExpansionEngine,
                "Euclidean": EuclideanEngine,
                "DistIdx": DistanceIndexEngine,
            }[config.engine]
            executor = engine_cls(network, objects, pager, **engine_kwargs)
        return cls(executor, config=config)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def executor(self) -> QueryExecutor:
        """The primary executor queries run on (replicas aside)."""
        return self._executor

    @property
    def replicas(self) -> Tuple[QueryExecutor, ...]:
        """The read-only frozen shards (empty when ``replicas == 0``).

        Thread mode has one snapshot per shard; process mode has one
        *shared* snapshot every worker process attaches, so this returns
        that single primary-owned snapshot (probe it to probe what every
        worker serves).
        """
        if self._process_pool is not None:
            return (self._process_pool.frozen,)
        return tuple(self._replicas)

    def stats(self) -> Dict[str, object]:
        """Serving counters plus the executor's own stats when it has any."""
        summary: Dict[str, object] = {
            "service": dict(self._counters),
            "replicas": (
                self._process_pool.workers
                if self._process_pool is not None
                else len(self._replicas)
            ),
            "replica_mode": self.config.replica_mode,
            "config": self.config,
            "replica_pool": self.replica_pool_stats(),
            "metrics": self.metrics.snapshot(),
        }
        if self._result_cache is not None:
            summary["result_cache"] = self._result_cache.stats()
        engine_stats = getattr(self._executor, "stats", None)
        if callable(engine_stats):
            summary["engine"] = engine_stats()
        return summary

    def replica_pool_stats(self) -> Dict[str, object]:
        """Replica-pool counters under mode-independent key names.

        Process mode reports :meth:`ProcessReplicaPool.stats` verbatim;
        thread mode reports the same keys from the service's own
        dispatch/broadcast counters (``retries``/``worker_deaths`` stay 0
        — threads neither re-attach nor die silently).  ``/metrics`` and
        ``stats()`` consumers never branch on ``replica_mode``.
        """
        if self._process_pool is not None:
            return self._process_pool.stats()
        stats: Dict[str, object] = dict(self._pool_counters)
        stats["workers"] = len(self._replicas)
        stats["alive"] = len(self._replicas) if self._pool is not None else 0
        stats["closed"] = bool(self._replicas) and self._pool is None
        # Thread replicas never serve a torn patch: a failed apply raises
        # straight to the maintenance caller under the shard lock.
        stats["degraded"] = False
        return stats

    # ------------------------------------------------------------------
    # Metrics surface
    # ------------------------------------------------------------------
    def _register_metrics(self) -> None:
        """Register this service's counter/histogram/gauge families."""
        registry = self.metrics
        self._metric_counters = {
            name: registry.counter(f"road_service_{name}_total", text)
            for name, text in _SERVICE_COUNTER_HELP.items()
        }
        # Per-kind admission counters materialise lazily: query classes
        # appear as their first instance is submitted.
        self._kind_counters: Dict[str, Counter] = {}
        self._batch_sizes = registry.histogram(
            "road_admission_batch_size",
            "Unique queries per execute_many admission batch.",
            buckets=BATCH_SIZE_BUCKETS,
        )
        self._latency = registry.histogram(
            "road_query_latency_ms",
            "Per-query submit() latency (admission to delivery) in ms.",
        )
        registry.gauge(
            "road_replica_pool",
            "Replica-pool state (ProcessReplicaPool.stats() keys, both "
            "modes).",
            self._pool_gauge,
            label="field",
        )
        registry.gauge(
            "road_directory_resident_bytes",
            "Resident bytes per compiled directory of the serving "
            "snapshot.",
            self._directory_bytes_gauge,
            label="directory",
        )
        registry.gauge(
            "road_mask_cache",
            "Mask-cache occupancy/eviction state of the serving snapshot.",
            self._mask_cache_gauge,
            label="field",
        )
        registry.gauge(
            "road_snapshot_resident_bytes",
            "Total resident bytes of the serving snapshot.",
            self._snapshot_bytes_gauge,
        )
        self._cache_counters = {
            name: registry.counter(f"road_cache_{name}_total", text)
            for name, text in _CACHE_COUNTER_HELP.items()
        }
        registry.gauge(
            "road_cache_hit_ratio",
            "Result-cache hits / lookups (0 while cold or disabled).",
            self._cache_hit_ratio_gauge,
        )
        registry.gauge(
            "road_cache_entries",
            "Entries resident in the result cache.",
            self._cache_entries_gauge,
        )

    def _cache_hit_ratio_gauge(self) -> float:
        cache = self._result_cache
        if cache is None:
            return 0.0
        hits, misses = cache.hits, cache.misses
        lookups = hits + misses
        return hits / lookups if lookups else 0.0

    def _cache_entries_gauge(self) -> float:
        cache = self._result_cache
        return 0.0 if cache is None else float(len(cache))

    def _count(self, name: str, amount: int = 1) -> None:
        """Bump one service counter in both surfaces (dict + /metrics)."""
        self._counters[name] += amount
        self._metric_counters[name].inc(amount)

    def _count_kind(self, kind: str) -> None:
        """Bump the per-query-class admission counter."""
        counter = self._kind_counters.get(kind)
        if counter is None:
            counter = self.metrics.counter(
                "road_queries_by_kind_total",
                "Queries admitted by submit(), per query class.",
                labels={"kind": kind},
            )
            self._kind_counters[kind] = counter
        counter.inc()

    def _pool_gauge(self) -> Dict[str, float]:
        return {
            key: float(value)
            for key, value in self.replica_pool_stats().items()
            if isinstance(value, (int, float))
        }

    def _serving_frozen(self) -> Optional["FrozenRoad"]:
        """The frozen snapshot the memory gauges sample, if one serves."""
        from repro.core.frozen import FrozenRoad

        if self._process_pool is not None:
            return self._process_pool.frozen
        if self._replicas:
            first = self._replicas[0]
            return first if isinstance(first, FrozenRoad) else None
        if isinstance(self._executor, FrozenRoad):
            return self._executor
        frozen = getattr(self._executor, "frozen", None)
        return frozen if isinstance(frozen, FrozenRoad) else None

    def _directory_bytes_gauge(self) -> Dict[str, float]:
        frozen = self._serving_frozen()
        if frozen is None:
            return {}
        directories = frozen.memory_stats().get("directories")
        if not isinstance(directories, Mapping):
            return {}
        out: Dict[str, float] = {}
        for name, entry in directories.items():
            if not isinstance(entry, Mapping):
                continue
            out[str(name)] = sum(
                _stat_number(entry, key)
                for key in (
                    "object_array_bytes",
                    "object_ref_bytes",
                    "mask_cache_bytes",
                )
            )
        return out

    def _mask_cache_gauge(self) -> Dict[str, float]:
        frozen = self._serving_frozen()
        if frozen is None:
            return {}
        stats = frozen.memory_stats()
        return {
            key: _stat_number(stats, key)
            for key in (
                "mask_cache_bytes",
                "mask_cache_entries",
                "mask_budget",
                "mask_evictions",
            )
        }

    def _snapshot_bytes_gauge(self) -> float:
        frozen = self._serving_frozen()
        if frozen is None:
            return 0.0
        return _stat_number(frozen.memory_stats(), "total_bytes")

    # ------------------------------------------------------------------
    # Sync path
    # ------------------------------------------------------------------
    def run(
        self,
        query: object,
        *,
        directory: Optional[str] = None,
        stats: Optional["SearchStats"] = None,
    ) -> List[ResultRow]:
        """Run one query synchronously on the primary executor."""
        return self._executor.execute(
            query, directory=self._directory(directory), stats=stats
        )

    def run_many(
        self,
        queries: Sequence[object],
        *,
        directory: Optional[str] = None,
        stats: Optional["SearchStats"] = None,
    ) -> List[List[ResultRow]]:
        """Run a workload synchronously on the primary executor."""
        return self._executor.execute_many(
            queries, directory=self._directory(directory), stats=stats
        )

    def _directory(self, directory: Optional[str]) -> Optional[str]:
        # None cascades: explicit argument > config > executor default
        # (resolved by the executor's check_directory).  A pinned
        # ServiceConfig.directories restricts the whole service surface:
        # ROADEngine filters its own names, but a bare executor would
        # otherwise serve an unpinned directory on the sync path while
        # the replica shards 404 on it — sync and async must agree.
        if directory is None:
            directory = self.config.directory
        if self.config.directories is not None:
            # The implicit executor default must not slip past the pinned
            # set either — directory-less queries and explicitly named
            # ones face the same restriction.  Resolution goes through
            # _serving_directory, never the serving object (which could
            # lazily compile a snapshot just to answer a name lookup).
            resolved = (
                directory if directory is not None else self._serving_directory()
            )
            if resolved not in self.config.directories:
                raise UnknownDirectoryError(
                    self._executor, resolved, self.config.directories
                )
        return directory

    # ------------------------------------------------------------------
    # Async admission-batched path
    # ------------------------------------------------------------------
    async def submit(
        self, query: object, *, directory: Optional[str] = None
    ) -> List[ResultRow]:
        """Admit one query; await its results.

        The query joins the in-flight bucket for its (directory,
        predicate); the bucket is flushed into one ``execute_many`` when
        ``max_batch`` queries are pending or ``max_delay_ms`` elapses,
        whichever comes first.  With ``coalesce`` on, an identical
        in-flight query is executed once and fanned out.
        """
        serving = self._serving_executor()
        # Fail fast — a bad query or directory must reject *this* call,
        # not poison the whole flush it would have joined.
        if not serving.supports(query):
            raise UnsupportedQueryError(serving, query)
        directory = serving.check_directory(self._directory(directory))
        loop = asyncio.get_running_loop()
        if self._loop is not loop:
            # A previous event loop died with admission state in flight
            # (abandoned asyncio.run, KeyboardInterrupt): its timer
            # handle would suppress rescheduling forever and its futures
            # can no longer be completed.  Adopt the new loop cleanly.
            self._adopt_loop(loop)
        future: "asyncio.Future[List[ResultRow]]" = loop.create_future()
        key = (directory, getattr(query, "predicate", None))
        self._pending.setdefault(key, []).append((query, future))
        self._pending_count += 1
        self._count("submitted")
        self._count_kind(type(query).__name__)
        if self._pending_count >= self.config.max_batch:
            self._flush()
        elif self._flush_handle is None:
            self._flush_handle = loop.call_later(
                self.config.max_delay_ms / 1000.0, self._flush
            )
        start = time.perf_counter()
        try:
            return await future
        finally:
            # Failed queries are observed too: a latency surface that
            # drops errors under load reports a fantasy tail.
            self._latency.observe((time.perf_counter() - start) * 1000.0)

    def _adopt_loop(self, loop: asyncio.AbstractEventLoop) -> None:
        """Reset admission state bound to a previous (dead) event loop."""
        if self._flush_handle is not None:
            self._flush_handle.cancel()
            self._flush_handle = None
        stale, self._pending = self._pending, {}
        self._pending_count = 0
        for entries in stale.values():
            self._reject(
                entries,
                ServiceError("event loop changed with queries in flight"),
            )
        self._loop = loop

    def _flush(self) -> None:
        """Drain every admission bucket into ``execute_many`` calls."""
        if self._flush_handle is not None:
            self._flush_handle.cancel()
            self._flush_handle = None
        pending, self._pending = self._pending, {}
        self._pending_count = 0
        if not pending:
            return
        self._count("flushes")
        for (directory, _predicate), entries in pending.items():
            self._dispatch_batch(directory, entries)

    def _dispatch_batch(self, directory: str, entries: List[_Entry]) -> None:
        """Execute one bucket — coalesced, on a replica when sharded."""
        slot: Optional[Dict[object, int]]
        if self.config.coalesce:
            slot = {}
            unique: List[object] = []
            for query, _future in entries:
                if query not in slot:
                    slot[query] = len(unique)
                    unique.append(query)
            self._count("coalesced", len(entries) - len(unique))
        else:
            slot = None
            unique = [query for query, _future in entries]
        if self._result_cache is not None:
            self._dispatch_cached(directory, entries, slot, unique)
            return
        self._count("batches")
        self._count("executed", len(unique))
        self._batch_sizes.observe(float(len(unique)))
        if self._process_pool is not None:
            # The pool round-robins workers itself; its listener thread
            # completes the concurrent future, which wrap_future relays
            # back onto this loop.
            loop = asyncio.get_running_loop()
            task = asyncio.wrap_future(
                self._process_pool.submit(unique, directory), loop=loop
            )
            task.add_done_callback(
                lambda done: self._resolve(entries, slot, done)
            )
            return
        if self._pool is None:
            try:
                results = self._executor.execute_many(unique, directory=directory)
            except Exception as exc:  # noqa: BLE001 — fan the error out
                self._reject(entries, exc)
                return
            self._deliver(entries, slot, results)
            return
        index = self._round_robin % len(self._replicas)
        self._round_robin += 1
        self._pool_counters["batches"] += 1
        self._pool_counters["queries"] += len(unique)
        loop = asyncio.get_running_loop()
        task = loop.run_in_executor(
            self._pool, self._run_on_replica, index, unique, directory
        )
        task.add_done_callback(
            lambda done: self._resolve(entries, slot, done)
        )

    def _run_on_replica(
        self, index: int, queries: List[object], directory: str
    ) -> List[List[ResultRow]]:
        """Worker-thread body: one batch on one locked replica."""
        with self._replica_locks[index]:
            return self._replicas[index].execute_many(queries, directory=directory)

    # ------------------------------------------------------------------
    # Result-cache admission path
    # ------------------------------------------------------------------
    def _dispatch_cached(
        self,
        directory: str,
        entries: List[_Entry],
        slot: Optional[Dict[object, int]],
        unique: List[object],
    ) -> None:
        """Split one bucket into cache hits and misses.

        Hits complete their futures immediately (each caller gets its
        own list copy — cached lists are never handed out aliased);
        misses ride the usual execution paths, but per-query with their
        own :class:`~repro.core.search.SearchStats` so each answer's
        visit-set footprint can be recorded for report-driven
        invalidation.  The populate is guarded by the generation
        captured *before* execution: an invalidation landing mid-flight
        refuses the store rather than caching a pre-patch answer.
        """
        cache = self._result_cache
        assert cache is not None
        keys = [canonical_key(directory, query) for query in unique]
        hits: Dict[int, List[ResultRow]] = {}
        miss_idx: List[int] = []
        for index, key in enumerate(keys):
            answer = cache.lookup(key)
            if answer is MISS:
                miss_idx.append(index)
            else:
                hits[index] = answer  # type: ignore[assignment]
        if hits:
            self._deliver_indexed(entries, slot, hits)
        if not miss_idx:
            return
        generation = cache.generation(directory)
        misses = [unique[index] for index in miss_idx]
        self._count("batches")
        self._count("executed", len(misses))
        self._batch_sizes.observe(float(len(misses)))

        def populate_and_deliver(
            results: List[List[ResultRow]],
            footprints: List[Tuple[set, set]],
        ) -> None:
            delivered: Dict[int, List[ResultRow]] = {}
            for position, index in enumerate(miss_idx):
                query = unique[index]
                answer = results[position]
                delivered[index] = answer
                nodes, rnets = footprints[position]
                if not nodes:
                    # The executor reported no visit set (a baseline
                    # without footprint support): caching it would make
                    # the entry invisible to report invalidation.
                    continue
                footprint = set(nodes)
                footprint.update(query_nodes(query))
                cache.store(
                    keys[index], list(answer), footprint, rnets, generation
                )
            self._deliver_indexed(entries, slot, delivered)

        if self._process_pool is not None:
            loop = asyncio.get_running_loop()
            task = asyncio.wrap_future(
                self._process_pool.submit(misses, directory, footprints=True),
                loop=loop,
            )
            task.add_done_callback(
                lambda done: self._resolve_footprints(
                    entries, done, populate_and_deliver
                )
            )
            return
        if self._pool is None:
            try:
                results, footprints = self._execute_with_footprints(
                    self._executor, misses, directory
                )
            except Exception as exc:  # noqa: BLE001 — fan the error out
                self._reject(entries, exc)
                return
            populate_and_deliver(results, footprints)
            return
        index = self._round_robin % len(self._replicas)
        self._round_robin += 1
        self._pool_counters["batches"] += 1
        self._pool_counters["queries"] += len(misses)
        loop = asyncio.get_running_loop()
        task = loop.run_in_executor(
            self._pool,
            self._run_on_replica_footprints,
            index,
            misses,
            directory,
        )
        task.add_done_callback(
            lambda done: self._resolve_footprints(
                entries, done, populate_and_deliver
            )
        )

    def _resolve_footprints(
        self,
        entries: List[_Entry],
        done: "asyncio.Future",
        deliver: Callable[[List[List[ResultRow]], List[Tuple[set, set]]], None],
    ) -> None:
        """Loop-thread callback for a footprint-carrying miss batch."""
        exc = done.exception()
        if exc is not None:
            # Hit futures are already complete; _reject skips done ones.
            self._reject(entries, exc)
            return
        results, footprints = done.result()
        deliver(results, footprints)

    @staticmethod
    def _deliver_indexed(
        entries: List[_Entry],
        slot: Optional[Dict[object, int]],
        answers: Dict[int, List[ResultRow]],
    ) -> None:
        """Complete the futures whose unique-index has an answer.

        Always copies: the answer lists are (or are about to become)
        cache-resident, and a caller sorting/truncating its result must
        corrupt neither the cache nor its coalesced twins.
        """
        for position, (query, future) in enumerate(entries):
            index = slot[query] if slot is not None else position
            answer = answers.get(index)
            if answer is not None and not future.done():
                future.set_result(list(answer))

    def _execute_with_footprints(
        self, executor: QueryExecutor, queries: List[object], directory: str
    ) -> Tuple[List[List[ResultRow]], List[Tuple[set, set]]]:
        """Execute per-query with individual stats; (answers, footprints)."""
        from repro.core.search import SearchStats

        results: List[List[ResultRow]] = []
        footprints: List[Tuple[set, set]] = []
        for query in queries:
            stats = SearchStats()
            results.append(
                executor.execute(query, directory=directory, stats=stats)
            )
            footprints.append((stats.visited_nodes, stats.visited_rnets))
        return results, footprints

    def _run_on_replica_footprints(
        self, index: int, queries: List[object], directory: str
    ) -> Tuple[List[List[ResultRow]], List[Tuple[set, set]]]:
        """Worker-thread body: one miss batch, per-query stats, locked."""
        with self._replica_locks[index]:
            return self._execute_with_footprints(
                self._replicas[index], queries, directory
            )

    def _resolve(
        self,
        entries: List[_Entry],
        slot: Optional[Dict[object, int]],
        done: "asyncio.Future[List[List[ResultRow]]]",
    ) -> None:
        """Loop-thread callback completing a replica batch's futures."""
        exc = done.exception()
        if exc is not None:
            self._reject(entries, exc)
        else:
            self._deliver(entries, slot, done.result())

    @staticmethod
    def _deliver(
        entries: List[_Entry],
        slot: Optional[Dict[object, int]],
        results: List[List[ResultRow]],
    ) -> None:
        for position, (query, future) in enumerate(entries):
            if future.done():
                continue
            if slot is None:
                future.set_result(results[position])
            else:
                # Coalesced duplicates must not alias one result list —
                # the sync path hands every caller its own list, and a
                # caller sorting/truncating its answer must not corrupt
                # its in-flight twins'.
                future.set_result(list(results[slot[query]]))

    @staticmethod
    def _reject(entries: List[_Entry], exc: BaseException) -> None:
        for _query, future in entries:
            if future.done():
                continue
            try:
                future.set_exception(exc)
            except RuntimeError:
                # The future belongs to a loop that has already closed
                # (stale admission state); nobody can await it anymore.
                pass

    # ------------------------------------------------------------------
    # Sharded replicas + maintenance broadcast
    # ------------------------------------------------------------------
    def _serving_executor(self) -> QueryExecutor:
        """The executor async submits are validated against (and, when
        unsharded, executed on): the shared process snapshot, the first
        thread replica, or the primary."""
        if self._process_pool is not None:
            return self._process_pool.frozen
        if self._replicas:
            return self._replicas[0]
        return self._executor

    def _sharded(self) -> bool:
        """True when replica shards (thread or process) are serving."""
        return bool(self._replicas) or self._process_pool is not None

    def _road(self) -> Optional["ROAD"]:
        """The charged ROAD behind the executor, if there is one."""
        road = getattr(self._executor, "road", None)
        if road is not None:
            return road
        from repro.core.framework import ROAD

        return self._executor if isinstance(self._executor, ROAD) else None

    def _init_replicas(self) -> None:
        road = self._road()
        if road is None:
            raise ServiceError(
                "replicas need a ROAD-backed executor "
                f"(got {type(self._executor).__name__}); freezing shards "
                "requires the charged structures"
            )
        directories = self._shard_directories()
        default = self._shard_default(directories)
        if self.config.replica_mode == "process":
            # One shared-memory snapshot, N attached worker processes:
            # the shards are real CPUs, not interpreter time slices, and
            # the arrays exist once whatever the worker count.  The
            # shard backend is necessarily "shm" (the config's backend
            # still governs the primary executor's own snapshot).
            snapshot = road.freeze(
                directories=directories, default=default, backend="shm"
            )
            self._process_pool = ProcessReplicaPool(
                snapshot, workers=self.config.replicas
            )
            return
        # Each shard is one multi-directory snapshot: the configured
        # directory set (None = every attached provider) shares the entry
        # arrays, and the service's serving directory becomes the shard's
        # default so directory=None submits route identically on the
        # primary and on every replica.
        self._replicas = [
            road.freeze(
                directories=directories,
                default=default,
                backend=self.config.backend,
            )
            for _ in range(self.config.replicas)
        ]
        self._replica_locks = [threading.Lock() for _ in self._replicas]
        self._pool = ThreadPoolExecutor(
            max_workers=self.config.replicas, thread_name_prefix="road-svc"
        )

    def _shard_directories(self) -> Optional[Tuple[str, ...]]:
        """The directory set replica shards compile.

        An executor carrying its own ``directories`` knob (ROADEngine,
        which keeps it current across attach/detach) is authoritative —
        freezing from the config's snapshot-in-time copy would diverge
        from the primary after membership changes.  Bare executors fall
        back to the configured set, filtered to the directories the
        executor still serves (a pinned name whose provider was detached
        must not crash every later shard rebuild).  None compiles every
        attached provider.
        """
        sentinel = object()
        directories = getattr(self._executor, "directories", sentinel)
        if directories is sentinel:
            directories = self.config.directories
            if directories is not None:
                serving = self._executor.directory_names
                directories = tuple(name for name in directories if name in serving)
                if not directories:
                    raise ServiceError(
                        f"none of the configured directories "
                        f"{self.config.directories!r} are still attached "
                        f"(serving: {serving!r})"
                    )
        return directories

    def _shard_default(self, directories: Optional[Tuple[str, ...]]) -> str:
        """The default directory replica shards freeze with.

        ``directories`` is the caller's already-resolved
        :meth:`_shard_directories` value (resolving it can touch the
        primary snapshot, so it is computed once per rebuild).  The
        default is resolved without touching the serving object
        (:meth:`_serving_directory`), then validated against the pinned
        set up front — otherwise the mismatch would surface as a deep
        ``UnknownDirectoryError`` naming a directory the operator never
        configured.
        """
        default = self._serving_directory()
        if directories is not None:
            compiled = directories
        else:
            road = self._road()
            compiled = tuple(
                road.directory_names
                if road is not None
                else self._executor.directory_names
            )
        if default not in compiled:
            raise ServiceError(
                f"the serving directory resolves to {default!r}, which the "
                f"shard directories {compiled!r} do not "
                f"compile; add it to ServiceConfig.directories or set "
                f"ServiceConfig.directory to a compiled name"
            )
        return default

    def _rebuild_replicas(self) -> None:
        """Re-freeze every shard after directory membership changed.

        Patch-broadcast keeps shard *contents* current, but cannot add or
        remove a compiled directory — only a fresh freeze can.  Each new
        snapshot is built outside the shard's lock (a freeze costs
        seconds on a big network) and swapped in under it, so in-flight
        batches finish on the old snapshot and new batches only wait for
        the swap.
        """
        if self._result_cache is not None:
            # Directory membership changed: every key's snapshot identity
            # is suspect, so the whole cache goes.
            self._result_cache.clear_all()
        if not self._sharded():
            return
        road = self._road()
        directories = self._shard_directories()
        default = self._shard_default(directories)
        if self._process_pool is not None:
            # One fresh shared snapshot; the pool publishes the new
            # attach manifest and workers re-attach between batches.
            replacement = road.freeze(
                directories=directories, default=default, backend="shm"
            )
            self._process_pool.replace_snapshot(replacement)
            return
        for index, lock in enumerate(self._replica_locks):
            replacement = road.freeze(
                directories=directories,
                default=default,
                backend=self.config.backend,
            )
            with lock:
                self._replicas[index] = replacement
        self._pool_counters["reloads"] += 1

    def attach_objects(
        self, objects: "ObjectSet", *, name: str, **kwargs: Any
    ) -> str:
        """Attach a provider through the executor; re-freeze all shards.

        The executor decides its own snapshot lifecycle
        (:meth:`ROADEngine.attach_objects` invalidates a live snapshot);
        the service re-freezes the replica shards, which the maintenance
        patch-broadcast cannot grow a directory into.  The rebuild only
        runs when the effective shard set actually changed — it never
        does under a live pinned knob, but a bare executor's set is
        pinned ∩ attached and grows when a pinned name gets attached.
        """
        attach = self._directory_manager("attach_objects")
        if not self._sharded():
            directory = attach(objects, name=name, **kwargs)
            if self._result_cache is not None:
                self._result_cache.invalidate_directory(directory)
            return directory
        before = self._shard_directories()
        directory = attach(objects, name=name, **kwargs)
        if self._result_cache is not None:
            self._result_cache.invalidate_directory(directory)
        if before is None or self._shard_directories() != before:
            self._rebuild_replicas()
        return directory

    def detach_objects(self, name: str) -> None:
        """Detach a provider through the executor; re-freeze all shards.

        Detaching the *serving* directory is rejected up front — with
        shards it would strand them serving the detached provider after
        a mid-operation failure, and without shards it would break every
        subsequent ``run``/``submit``; either way the config still names
        it, so fail fast with the fix spelled out.
        """
        detach = self._directory_manager("detach_objects")
        if self._serving_directory() == name:
            raise ServiceError(
                f"cannot detach {name!r}: it is this service's serving "
                f"directory; point ServiceConfig.directory elsewhere first"
            )
        compiled = self._shard_directories()
        detach(name)
        if self._result_cache is not None:
            self._result_cache.invalidate_directory(name)
        if compiled is None or name in compiled:
            self._rebuild_replicas()

    def _serving_directory(self) -> str:
        """``config.directory`` resolved without touching the serving object.

        Asking the executor (``check_directory``/``default_directory`` on
        a frozen-mode ROADEngine) can lazily compile a full snapshot just
        to answer a name lookup; the charged road answers for free.  Used
        by the shard default and the detach guard — validation of the
        resolved name happens where it is consumed (``freeze(default=)``
        / the pinned-set check).
        """
        if self.config.directory is not None:
            return self.config.directory
        road = self._road()
        if road is not None:
            return road.default_directory
        return self._executor.default_directory

    def _directory_manager(self, method: str) -> Callable[..., Any]:
        """The executor's attach/detach entry point, or a typed error.

        Mirrors the replica-path pattern: directory management needs an
        executor that owns directories (ROAD or ROADEngine); baselines
        and bare snapshots get a :class:`ServiceError`, not an
        ``AttributeError``.
        """
        manager = getattr(self._executor, method, None)
        if manager is None:
            raise ServiceError(
                f"{type(self._executor).__name__} does not manage "
                f"Association Directories ({method} requires a ROAD-backed "
                f"executor)"
            )
        return manager

    def apply_report(self, report: MaintenanceReport) -> None:
        """Patch-broadcast one maintenance report to every replica.

        The primary executor reconciles itself (ROADEngine's lifecycle);
        this keeps the read-only shards in lockstep.  Thread replicas
        are each locked against their in-flight batches while patched;
        the process pool patches its one shared snapshot inside the
        seqlock window every worker honours.
        """
        # Cache entries dirtied by this report die before any shard could
        # serve their keys post-patch; racing populates are refused by
        # the generation bump this performs.
        self._invalidate_cache(report)
        road = self._road()
        if self._process_pool is not None:
            self._process_pool.apply(report, road)
            return
        for replica, lock in zip(self._replicas, self._replica_locks):
            with lock:
                replica.apply(report, road)
        if self._replicas:
            self._pool_counters["syncs"] += 1

    def _invalidate_cache(self, report: MaintenanceReport) -> None:
        """Report-driven cache eviction (no-op when the cache is off).

        ``maintenance="refreeze"`` recompiles the serving snapshot
        wholesale, so the affected scope is cleared wholesale too; the
        patch lifecycles evict by footprint intersection (structural
        reports clear wholesale inside ``invalidate_report``).
        """
        cache = self._result_cache
        if cache is None:
            return
        if self.config.maintenance == "refreeze":
            if report.directory is None:
                cache.clear_all()
            else:
                cache.invalidate_directory(report.directory)
            return
        cache.invalidate_report(report)

    def _maintained(self, result: Any) -> Any:
        """Broadcast after a maintenance call; pass its result through."""
        report = (
            result
            if isinstance(result, MaintenanceReport)
            else getattr(self._executor, "last_report", None)
        )
        if report is not None:
            self.metrics.counter(
                "road_patches_total",
                "Maintenance patches processed, by report kind.",
                labels={"kind": report.kind},
            ).inc()
            if self._sharded():
                self.apply_report(report)  # invalidates the cache first
            else:
                self._invalidate_cache(report)
        return result

    def insert_object(self, obj: Any, **kwargs: Any) -> Any:
        """Insert an object through the executor; reconcile all replicas."""
        return self._maintained(self._executor.insert_object(obj, **kwargs))

    def delete_object(self, object_id: int, **kwargs: Any) -> Any:
        """Delete an object through the executor; reconcile all replicas."""
        return self._maintained(self._executor.delete_object(object_id, **kwargs))

    def update_object_attrs(
        self, object_id: int, attrs: Dict[str, Any], **kwargs: Any
    ) -> Any:
        """Update object attributes; reconcile all replicas."""
        return self._maintained(
            self._executor.update_object_attrs(object_id, attrs, **kwargs)
        )

    def update_edge_distance(self, u: int, v: int, distance: float) -> Any:
        """Change an edge distance; reconcile all replicas."""
        return self._maintained(self._executor.update_edge_distance(u, v, distance))

    def add_edge(self, u: int, v: int, distance: float, **kwargs: Any) -> Any:
        """Open a road segment; reconcile all replicas."""
        return self._maintained(self._executor.add_edge(u, v, distance, **kwargs))

    def remove_edge(self, u: int, v: int) -> Any:
        """Close a road segment; reconcile all replicas."""
        return self._maintained(self._executor.remove_edge(u, v))

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Flush nothing, reject pending work, stop the worker pool."""
        if self._flush_handle is not None:
            self._flush_handle.cancel()
            self._flush_handle = None
        pending, self._pending = self._pending, {}
        self._pending_count = 0
        for entries in pending.values():
            self._reject(entries, ServiceError("service closed"))
        if self._result_cache is not None:
            self._result_cache.clear_all()
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        if self._process_pool is not None:
            self._process_pool.close()
            self._process_pool = None

    async def __aenter__(self) -> "RoadService":
        return self

    async def __aexit__(
        self, exc_type: object, exc: object, tb: object
    ) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RoadService(executor={type(self._executor).__name__}, "
            f"replicas={len(self._replicas)}, config={self.config})"
        )
