"""The query-dispatch protocol: one execution surface for every engine.

The paper pitches ROAD as a *search-engine framework* — one index, many
query kinds ("search by sweeping over Rnets", Fig. 1).  The reproduction
grew four execution surfaces (charged :class:`~repro.core.framework.ROAD`,
compiled :class:`~repro.core.frozen.FrozenRoad`, the
:class:`~repro.baselines.road_adapter.ROADEngine` adapter, and the
Section-2 baselines), each with its own ``isinstance`` ladder and
slightly different ``execute`` signatures.  This module replaces all of
them with a registry:

* a **handler registry** keyed on ``(engine key, query type)`` —
  engines register one handler per query class::

      @register_handler(KNNQuery, engine="frozen")
      def _knn(snapshot, query, ctx):
          return snapshot.knn(query.node, query.k, query.predicate,
                              stats=ctx.stats)

* a common :class:`QueryExecutor` ABC providing ``execute`` /
  ``execute_many`` with **normalised signatures** — ``execute(query, *,
  directory=..., stats=...)`` everywhere — by looking the handler up
  along the executor's MRO (``ROADEngine`` falls back to the generic
  ``"baseline"`` handlers for anything it does not override);

* typed errors: :class:`UnsupportedQueryError` (subclass of
  :class:`TypeError`, names the engine and the query type) and
  :class:`UnknownDirectoryError` (subclass of :class:`KeyError`, raised
  uniformly when ``directory=`` names a directory the engine does not
  serve — previously the charged path raised while the frozen path
  silently ignored the argument).

Batching is part of the protocol, not of each engine: the default
``execute_many`` runs every query through one shared
:class:`BatchContext`, whose :meth:`BatchContext.cache` memoises
per-predicate state (the charged path's
:class:`~repro.core.search.AbstractCache`) across the whole batch.  A
baseline engine therefore gets batch execution — and the batch server
front-end (:class:`repro.serving.RoadService`) — for free.
"""

from __future__ import annotations

from abc import ABC
from functools import lru_cache
from typing import (
    Callable,
    ClassVar,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Type,
)

from repro.queries.types import ResultRow

#: The implicit directory name every engine serves (the charged path can
#: attach more; see :meth:`repro.core.framework.ROAD.attach_objects`).
DEFAULT_DIRECTORY = "objects"

#: A registered query handler: ``(executor, query, ctx) -> results``.
#: The return type is a covariant ``Sequence`` of the result-row union
#: (:data:`repro.queries.types.ResultRow`), so a handler may keep the
#: precise ``List[ResultEntry]`` / ``List[ODMatrixEntry]`` annotation of
#: the method it wraps.
Handler = Callable[["QueryExecutor", object, "BatchContext"], Sequence[ResultRow]]

#: (engine key, query type) -> handler.
_HANDLERS: Dict[Tuple[str, Type], Handler] = {}


class UnsupportedQueryError(TypeError):
    """An engine has no registered handler for this query type.

    Subclasses :class:`TypeError` so callers of the pre-registry
    ``execute`` (which raised bare ``TypeError``) keep working.
    """

    def __init__(self, executor: object, query: object) -> None:
        self.engine = type(executor).__name__
        self.query_type = type(query).__name__
        supported = ", ".join(
            sorted(q.__name__ for q in supported_queries(type(executor)))
        )
        super().__init__(
            f"{self.engine} has no handler for query type {self.query_type}"
            + (f" (supported: {supported})" if supported else "")
        )


class UnknownDirectoryError(KeyError):
    """``directory=`` names a directory this engine does not serve.

    Subclasses :class:`KeyError` so callers of the pre-registry charged
    path (which raised bare ``KeyError``) keep working.
    """

    def __init__(self, executor: object, directory: str, known: Iterable[str]) -> None:
        self.engine = type(executor).__name__
        self.directory = directory
        self.known = tuple(known)
        super().__init__(
            f"{self.engine} serves no directory {directory!r} "
            f"(attached: {', '.join(map(repr, self.known)) or 'none'})"
        )

    def __str__(self) -> str:
        # KeyError.__str__ repr-wraps its single argument (stray outer
        # quotes in f-strings); render the plain sentence instead.
        return self.args[0]


class BatchContext:
    """Shared state for one ``execute`` call or one ``execute_many`` batch.

    Handlers receive the context instead of loose keyword arguments:
    ``directory`` (already validated by the executor), optional ``stats``
    to accumulate into, and :meth:`cache` — a memo the whole batch
    shares, used by the charged handlers to build one
    :class:`~repro.core.search.AbstractCache` per distinct predicate per
    batch rather than one per query.
    """

    __slots__ = ("directory", "stats", "_memo")

    def __init__(self, directory: str, stats: Optional[object] = None) -> None:
        self.directory = directory
        self.stats = stats
        self._memo: Dict[object, object] = {}

    def cache(self, key: object, factory: Callable[[], object]) -> object:
        """Memoised per-batch state (e.g. a predicate's AbstractCache)."""
        try:
            return self._memo[key]
        except KeyError:
            value = self._memo[key] = factory()
            return value


def register_handler(
    query_type: Type, *, engine: str
) -> Callable[[Handler], Handler]:
    """Class decorator-factory registering a handler for one query type.

    ``engine`` is the executor's :attr:`QueryExecutor.dispatch_engine`
    key.  Registering the same (engine, query type) twice raises — a
    double registration is always a bug (two modules fighting over a
    dispatch slot), never a feature.
    """

    def decorate(handler: Handler) -> Handler:
        key = (engine, query_type)
        if key in _HANDLERS:
            raise ValueError(
                f"handler for {query_type.__name__} on engine {engine!r} "
                f"already registered ({_HANDLERS[key]!r})"
            )
        _HANDLERS[key] = handler
        return handler

    return decorate


@lru_cache(maxsize=None)
def _dispatch_chain(executor_type: Type) -> Tuple[str, ...]:
    """The executor's engine keys, most specific first (its MRO order).

    Only classes that *declare* ``dispatch_engine`` in their own body
    contribute a key, so ``ROADEngine`` (key ``"road"``) falls back to
    ``SearchEngine``'s generic ``"baseline"`` handlers, while a plain
    baseline only sees ``"baseline"``.  The chain is a pure function of
    the type (independent of the handler registry), so it is memoised —
    per-query dispatch on the hot serving path must not re-walk the MRO.
    """
    chain: List[str] = []
    for klass in executor_type.__mro__:
        key = klass.__dict__.get("dispatch_engine")
        if key is not None and key not in chain:
            chain.append(key)
    return tuple(chain)


def lookup_handler(executor_type: Type, query_type: Type) -> Optional[Handler]:
    """The handler serving ``query_type`` on this executor, if any.

    Walks the executor's dispatch chain, then the query type's MRO — so
    a handler registered for a query base class serves subclasses too.
    """
    for engine in _dispatch_chain(executor_type):
        for qt in query_type.__mro__:
            handler = _HANDLERS.get((engine, qt))
            if handler is not None:
                return handler
    return None


def supported_queries(executor_type: Type) -> Tuple[Type, ...]:
    """Query types this executor type has handlers for (for messages/tests)."""
    chain = _dispatch_chain(executor_type)
    return tuple(
        sorted(
            {qt for (engine, qt) in _HANDLERS if engine in chain},
            key=lambda qt: qt.__name__,
        )
    )


class QueryExecutor(ABC):
    """One LDSQ execution surface: anything that can serve query objects.

    Subclasses declare a :attr:`dispatch_engine` key and register one
    handler per supported query class; ``execute`` / ``execute_many`` /
    ``supports`` are inherited, with identical signatures everywhere.

    ``execute_many`` is the single-threaded batch entry point the async
    front-end coalesces into; the default implementation already shares
    one :class:`BatchContext` (per-predicate caches) across the batch,
    so engines only override it to redirect batches wholesale (e.g.
    :class:`~repro.baselines.road_adapter.ROADEngine` forwarding to its
    frozen snapshot).
    """

    #: Registry key for this executor family; subclasses redeclare it.
    dispatch_engine: ClassVar[Optional[str]] = None

    # -- directory surface ---------------------------------------------
    @property
    def directory_names(self) -> List[str]:
        """Directories this executor serves (baselines: just the default)."""
        return [DEFAULT_DIRECTORY]

    @property
    def default_directory(self) -> str:
        """The directory queries target when ``directory`` is omitted.

        Engines serving named providers override this — a frozen
        snapshot (single- or multi-directory) reports its *configured*
        default, never merely the first directory it compiled — so
        queries need not name it.
        """
        return DEFAULT_DIRECTORY

    def check_directory(self, directory: Optional[str] = None) -> str:
        """Resolve/validate ``directory=``; raises
        :class:`UnknownDirectoryError` on a name this executor does not
        serve.  ``None`` means :attr:`default_directory`.  Returns the
        resolved name so handlers can chain on it.
        """
        if directory is None:
            directory = self.default_directory
        if directory not in self.directory_names:
            raise UnknownDirectoryError(self, directory, self.directory_names)
        return directory

    # -- dispatch -------------------------------------------------------
    def supports(self, query: object) -> bool:
        """True if :meth:`execute` can serve this query object."""
        return lookup_handler(type(self), type(query)) is not None

    def execute(
        self,
        query: object,
        *,
        directory: Optional[str] = None,
        stats: Optional[object] = None,
    ) -> List[ResultRow]:
        """Run one query object through the registered handler.

        ``directory=None`` targets :attr:`default_directory` — for a
        snapshot compiled from a named provider, its own directory.
        """
        ctx = BatchContext(self.check_directory(directory), stats)
        return self._dispatch(query, ctx)

    def execute_many(
        self,
        queries: Sequence,
        *,
        directory: Optional[str] = None,
        stats: Optional[object] = None,
    ) -> List[List[ResultRow]]:
        """Run a whole workload through one shared :class:`BatchContext`.

        Queries sharing a predicate share the context's memoised state
        (the charged path pays each Rnet pruning decision once per batch,
        not once per query).  The index must not change while the batch
        runs.
        """
        ctx = BatchContext(self.check_directory(directory), stats)
        return [self._dispatch(query, ctx) for query in queries]

    def _dispatch(self, query: object, ctx: BatchContext) -> List[ResultRow]:
        handler = lookup_handler(type(self), type(query))
        if handler is None:
            raise UnsupportedQueryError(self, query)
        return list(handler(self, query, ctx))
