"""repro.serving — the unified serving API.

Two layers:

* :mod:`repro.serving.dispatch` — the query-dispatch protocol: the
  :class:`QueryExecutor` ABC all engines implement, the
  ``@register_handler`` registry replacing the per-engine ``isinstance``
  ladders, and the typed :class:`UnsupportedQueryError` /
  :class:`UnknownDirectoryError` errors.
* :mod:`repro.serving.metrics` / :mod:`repro.serving.wire` /
  :mod:`repro.serving.http` — the observability and HTTP edge: the
  :class:`MetricsRegistry` threaded through the service and scraped by
  ``GET /metrics``, the JSON wire codecs, and the stdlib-only ASGI app
  (``python -m repro.serving.http`` hosts it).
* :mod:`repro.serving.service` — the :class:`RoadService` facade: typed
  :class:`ServiceConfig` (the ``REPRO_*`` env vars become overrides),
  sync ``run``/``run_many``, an asyncio front-end (``await
  service.submit(query)``) with per-predicate admission batching, and
  sharded read-only :class:`~repro.core.frozen.FrozenRoad` replicas with
  patch-broadcast reconciliation — as interpreter threads
  (``replica_mode="thread"``) or as worker processes attached to one
  shared-memory snapshot (``replica_mode="process"``, backed by
  :class:`~repro.serving.process_pool.ProcessReplicaPool`).

The service layer is imported lazily (PEP 562): the core engine modules
import the dispatch protocol from here, while the service imports those
same engines — laziness breaks the cycle without a shim module.
"""

from repro.serving.dispatch import (
    DEFAULT_DIRECTORY,
    BatchContext,
    QueryExecutor,
    UnknownDirectoryError,
    UnsupportedQueryError,
    lookup_handler,
    register_handler,
    supported_queries,
)

__all__ = [
    "DEFAULT_DIRECTORY",
    "BatchContext",
    "MetricError",
    "MetricsRegistry",
    "ProcessPoolError",
    "ProcessReplicaPool",
    "QueryExecutor",
    "ResultCache",
    "RoadService",
    "RoadServiceApp",
    "ServiceConfig",
    "ServiceError",
    "UnknownDirectoryError",
    "UnsupportedQueryError",
    "WireError",
    "WorkerError",
    "lookup_handler",
    "register_handler",
    "serve",
    "supported_queries",
]

_SERVICE_EXPORTS = ("RoadService", "ServiceConfig", "ServiceError")
_POOL_EXPORTS = ("ProcessPoolError", "ProcessReplicaPool", "WorkerError")
_CACHE_EXPORTS = ("ResultCache",)
_METRICS_EXPORTS = ("MetricError", "MetricsRegistry")
_HTTP_EXPORTS = ("RoadServiceApp", "serve")
_WIRE_EXPORTS = ("WireError",)


def __getattr__(name: str):
    if name in _SERVICE_EXPORTS:
        from repro.serving import service

        return getattr(service, name)
    if name in _POOL_EXPORTS:
        from repro.serving import process_pool

        return getattr(process_pool, name)
    if name in _CACHE_EXPORTS:
        from repro.serving import result_cache

        return getattr(result_cache, name)
    if name in _METRICS_EXPORTS:
        from repro.serving import metrics

        return getattr(metrics, name)
    if name in _HTTP_EXPORTS:
        from repro.serving import http

        return getattr(http, name)
    if name in _WIRE_EXPORTS:
        from repro.serving import wire

        return getattr(wire, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(__all__)
