"""Cross-request result cache with report-driven invalidation.

At the throughput the process-shard tier already reaches, the next 10x
is not executing queries faster — it is not executing them at all.
Road-network serving traffic repeats heavily (the same OD pairs, the
same kNN origins) over a mostly-static network, so a result cache in
front of ``execute_many`` converts the repeat mass into dictionary
lookups.  A cache that can serve stale answers is worse than no cache,
which is why invalidation here is *report-driven* rather than
flush-everything:

* Every entry records the **footprint** its answer touched — the node
  and Rnet visit sets from :class:`~repro.core.search.SearchStats`
  (settled nodes *plus* the frontier boundary; see
  ``_Frontier.pending_nodes``) united with the query's own nodes.
* Every :class:`~repro.core.maintenance.MaintenanceReport` carries the
  dirty identity sets of what it changed (``dirty_nodes`` /
  ``dirty_rnets``) and, for object churn, the one directory it touched.
  :meth:`ResultCache.invalidate_report` intersects the two through
  per-directory inverted indexes, evicting exactly the dirtied entries.
* Structural reports (edge add/remove, border promotions) and refreezes
  invalidate the affected scope wholesale — identity sets do not bound
  a shortcut-graph rebuild.

Correctness of the intersection test rests on two properties proven by
the churn-soak equivalence suite:

1. a changed edge always has an endpoint in some examined node set of
   every query it could affect (relaxing an edge requires popping an
   endpoint; an exactly-tied boundary node is in the frontier remnant,
   which the footprint includes), and
2. an object insert into a bypassed Rnet is caught by ``dirty_rnets``
   intersecting the examined-Rnet set (``ChoosePath`` recorded every
   Rnet entry it looked at, including the ones it bypassed).

Populates are guarded by per-scope generation counters: a miss executed
against a pre-patch snapshot can only be *refused* (a lost populate),
never stored over a post-patch invalidation.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Callable, Dict, Iterable, Optional, Set, Tuple

from repro.core.maintenance import MaintenanceReport
from repro.queries.types import (
    AggregateKNNQuery,
    KNNQuery,
    ODMatrixQuery,
    RangeQuery,
    RouteKNNQuery,
    ServiceAreaQuery,
)

#: ``(directory, query kind, canonicalized fields, canonical predicate)``.
CacheKey = Tuple[str, str, tuple, tuple]

#: ``(global generation, directory generation)`` captured at miss time.
Generation = Tuple[int, int]

#: Distinguishes "no cached entry" from a cached empty answer.
MISS = object()

#: Per-type field canonicalizers, keyed by *exact* query class (a
#: subclass may override equality semantics, so it stays uncached until
#: registered here).  Canonicalization folds together queries that
#: provably return byte-identical answers and nothing more:
#:
#: * a ``RouteKNNQuery`` path collapses to its sorted seed *set* — the
#:   multi-source kernel seeds a single frontier (duplicates dropped)
#:   and returns the canonical (distance, id)-sorted cut, so seed order
#:   cannot show in the answer;
#: * ``ODMatrixQuery`` rows/columns stay verbatim: row order *is* the
#:   answer shape, so permuted sources must miss;
#: * ``AggregateKNNQuery`` nodes stay verbatim: sum/max/min aggregate
#:   over the multiset of per-node distances, so duplicated nodes are
#:   semantically significant.
_CANONICAL_FIELDS: Dict[type, Callable[[Any], tuple]] = {
    KNNQuery: lambda q: (q.node, q.k),
    RangeQuery: lambda q: (q.node, q.radius),
    AggregateKNNQuery: lambda q: (q.nodes, q.k, q.agg),
    ODMatrixQuery: lambda q: (q.sources, q.targets),
    ServiceAreaQuery: lambda q: (q.node, q.breaks),
    RouteKNNQuery: lambda q: (tuple(sorted(set(q.path))), q.k),
}

#: Per-type origin-node extractors (same exact-class keying).
_QUERY_NODES: Dict[type, Callable[[Any], Tuple[int, ...]]] = {
    KNNQuery: lambda q: (q.node,),
    RangeQuery: lambda q: (q.node,),
    AggregateKNNQuery: lambda q: q.nodes,
    ODMatrixQuery: lambda q: q.sources + q.targets,
    ServiceAreaQuery: lambda q: (q.node,),
    RouteKNNQuery: lambda q: q.path,
}


def canonical_key(directory: str, query: object) -> Optional[CacheKey]:
    """The cache key for ``query`` against ``directory``, or ``None``.

    Predicates are order-independent conjunctions, so permuted-but-equal
    predicates share a key; the per-kind field rules live in
    :data:`_CANONICAL_FIELDS`.  ``None`` marks a query class the cache
    does not know — the service executes it uncached rather than
    guessing at its equality contract.
    """
    fields_of = _CANONICAL_FIELDS.get(type(query))
    if fields_of is None:
        return None
    predicate = getattr(query, "predicate", None)
    pred_key: tuple = ()
    if predicate is not None:
        pred_key = tuple(sorted(predicate.required))
    return (directory, type(query).__name__, fields_of(query), pred_key)


def query_nodes(query: object) -> Tuple[int, ...]:
    """The query's own nodes — always part of its footprint.

    A query's answer trivially depends on its origin nodes even when a
    degenerate sweep settles nothing else (e.g. an isolated node).
    """
    nodes_of = _QUERY_NODES.get(type(query))
    return () if nodes_of is None else nodes_of(query)


class _Entry:
    """One cached answer plus the footprint that justifies evicting it."""

    __slots__ = ("answer", "nodes", "rnets")

    def __init__(
        self, answer: list, nodes: frozenset, rnets: frozenset
    ) -> None:
        self.answer = answer
        self.nodes = nodes
        self.rnets = rnets


class ResultCache:
    """LRU answer cache keyed by canonical query identity.

    Thread-safe: lookups/populates come from the admission flush (event
    loop or replica threads), invalidations from whichever thread runs
    maintenance.  All operations are O(touched entries), never O(cache).
    """

    def __init__(
        self,
        budget: int = 2048,
        *,
        counters: Optional[Dict[str, object]] = None,
    ) -> None:
        if budget < 1:
            raise ValueError(f"cache budget must be >= 1, got {budget}")
        self.budget = budget
        #: Optional external mirrors (``/metrics`` Counter objects): any
        #: mapping of {"hits","misses","evictions","invalidations"} to
        #: objects with ``inc(amount)``.
        self._mirrors = counters or {}
        self._lock = threading.Lock()
        self._entries: "OrderedDict[CacheKey, _Entry]" = OrderedDict()
        # Per-directory inverted indexes: identity -> keys touching it.
        self._by_node: Dict[str, Dict[int, Set[CacheKey]]] = {}
        self._by_rnet: Dict[str, Dict[int, Set[CacheKey]]] = {}
        self._dir_keys: Dict[str, Set[CacheKey]] = {}
        # Populate guards (see `generation`).
        self._gen_global = 0
        self._gen_dir: Dict[str, int] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------
    def lookup(self, key: Optional[CacheKey]) -> object:
        """The cached answer for ``key``, or the :data:`MISS` sentinel.

        A hit refreshes the entry's LRU position.  Callers must copy the
        returned list before handing it to a consumer (`_deliver` treats
        per-future lists as owned).
        """
        if key is None:
            return MISS
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._bump("misses")
                return MISS
            self._entries.move_to_end(key)
            self._bump("hits")
            return entry.answer

    def generation(self, directory: str) -> Generation:
        """The populate guard to capture *before* executing a miss.

        Network-wide maintenance bumps the global component; directory
        maintenance bumps only that directory's, so churn on one
        directory does not refuse populates for another.
        """
        with self._lock:
            return (self._gen_global, self._gen_dir.get(directory, 0))

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------
    def store(
        self,
        key: Optional[CacheKey],
        answer: list,
        nodes: Iterable[int],
        rnets: Iterable[int],
        generation: Generation,
    ) -> bool:
        """Populate ``key`` with ``answer``; True if the entry went in.

        Refused when ``generation`` is stale (an invalidation landed
        while the miss executed — the answer may predate the patch) or
        when the node footprint is empty (nothing to invalidate on, so
        the entry could never be evicted by a report; this cannot happen
        for well-formed queries, whose own nodes join the footprint).
        """
        if key is None:
            return False
        node_set = frozenset(nodes)
        rnet_set = frozenset(rnets)
        if not node_set:
            return False
        directory = key[0]
        with self._lock:
            if generation != (
                self._gen_global,
                self._gen_dir.get(directory, 0),
            ):
                return False
            if key in self._entries:
                self._unlink(key)
            self._entries[key] = _Entry(answer, node_set, rnet_set)
            self._entries.move_to_end(key)
            self._dir_keys.setdefault(directory, set()).add(key)
            by_node = self._by_node.setdefault(directory, {})
            for node in node_set:
                by_node.setdefault(node, set()).add(key)
            by_rnet = self._by_rnet.setdefault(directory, {})
            for rnet in rnet_set:
                by_rnet.setdefault(rnet, set()).add(key)
            while len(self._entries) > self.budget:
                oldest = next(iter(self._entries))
                self._unlink(oldest)
                self._bump("evictions")
            return True

    # ------------------------------------------------------------------
    # Invalidation path
    # ------------------------------------------------------------------
    def invalidate_report(self, report: MaintenanceReport) -> int:
        """Evict every entry whose footprint the report dirtied.

        Object reports carry their directory and touch only its entries;
        network reports (``directory is None``) dirty the shared graph,
        so every directory's index is consulted.  Structural reports
        invalidate the affected scope wholesale: a shortcut-graph
        rebuild is not bounded by identity sets.  Returns the number of
        entries evicted; the populate generation advances regardless, so
        in-flight misses against the pre-patch snapshot are refused.
        """
        with self._lock:
            if report.directory is None:
                self._gen_global += 1
                directories = list(self._dir_keys)
            else:
                self._gen_dir[report.directory] = (
                    self._gen_dir.get(report.directory, 0) + 1
                )
                directories = [report.directory]
            if report.structural:
                dropped = sum(
                    self._drop_directory(name) for name in directories
                )
                self._bump("invalidations", dropped)
                return dropped
            victims: Set[CacheKey] = set()
            for name in directories:
                by_node = self._by_node.get(name)
                if by_node:
                    for node in report.dirty_nodes:
                        victims.update(by_node.get(node, ()))
                by_rnet = self._by_rnet.get(name)
                if by_rnet:
                    for rnet in report.dirty_rnets:
                        victims.update(by_rnet.get(rnet, ()))
            for key in victims:
                self._unlink(key)
            self._bump("invalidations", len(victims))
            return len(victims)

    def invalidate_directory(self, directory: str) -> int:
        """Wholesale eviction for one directory (refreeze, attach/detach,
        replica rebuild) — the snapshot identity changed, not an
        enumerable dirty set."""
        with self._lock:
            self._gen_dir[directory] = self._gen_dir.get(directory, 0) + 1
            dropped = self._drop_directory(directory)
            self._bump("invalidations", dropped)
            return dropped

    def clear_all(self) -> int:
        """Evict everything (snapshot replacement / close)."""
        with self._lock:
            self._gen_global += 1
            dropped = len(self._entries)
            self._entries.clear()
            self._by_node.clear()
            self._by_rnet.clear()
            self._dir_keys.clear()
            self._bump("invalidations", dropped)
            return dropped

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        """Counter snapshot (also surfaced via /metrics by the service)."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "budget": self.budget,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
            }

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # ------------------------------------------------------------------
    # Internals (call with the lock held)
    # ------------------------------------------------------------------
    def _bump(self, name: str, amount: int = 1) -> None:
        """Advance one counter in both surfaces (attribute + mirror)."""
        if not amount:
            return
        setattr(self, name, getattr(self, name) + amount)
        mirror = self._mirrors.get(name)
        if mirror is not None:
            mirror.inc(amount)  # type: ignore[attr-defined]

    def _unlink(self, key: CacheKey) -> None:
        entry = self._entries.pop(key, None)
        if entry is None:
            return
        directory = key[0]
        keys = self._dir_keys.get(directory)
        if keys is not None:
            keys.discard(key)
            if not keys:
                del self._dir_keys[directory]
        by_node = self._by_node.get(directory)
        if by_node is not None:
            for node in entry.nodes:
                keys = by_node.get(node)
                if keys is not None:
                    keys.discard(key)
                    if not keys:
                        del by_node[node]
            if not by_node:
                del self._by_node[directory]
        by_rnet = self._by_rnet.get(directory)
        if by_rnet is not None:
            for rnet in entry.rnets:
                keys = by_rnet.get(rnet)
                if keys is not None:
                    keys.discard(key)
                    if not keys:
                        del by_rnet[rnet]
            if not by_rnet:
                del self._by_rnet[directory]

    def _drop_directory(self, directory: str) -> int:
        victims = list(self._dir_keys.get(directory, ()))
        for key in victims:
            self._unlink(key)
        return len(victims)
