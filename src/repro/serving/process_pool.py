"""Process-shard serving over one shared-memory snapshot.

Thread replicas (:class:`~repro.serving.RoadService` with
``replica_mode="thread"``) time-slice one interpreter: the query hot
loop is pure Python, so N threads never buy N cores.  This module runs
the shards as **worker processes** instead, without N copies of the
compiled arrays: the primary freezes one ``backend="shm"`` snapshot
(every CSR array a named ``multiprocessing.shared_memory`` segment),
each worker attaches the same segments zero-copy
(:meth:`~repro.core.frozen.FrozenRoad.from_manifest`) and serves query
batches from its own interpreter — real CPU parallelism, one snapshot's
worth of memory.

Consistency is a seqlock over a tiny shared control vector
``[generation, sync_seq, stopping]``:

* The primary publishes every maintenance patch inside a generation
  window — generation goes odd, the patch lands as in-place slice
  writes on the shared arrays, a sync payload (what the segments cannot
  carry: view invalidation, object references/abstracts, or a full
  re-attach manifest when patching re-homed a segment) is enqueued to
  every worker, ``sync_seq`` is bumped, generation goes even.
* A worker serves a batch only on an even generation **after** applying
  every published sync payload, and re-checks the generation afterwards
  — a batch that overlapped a patch window is retried, so readers never
  return torn state; they retry instead.

The pool fronts this with :class:`concurrent.futures.Future` results so
the service's asyncio front-end awaits process batches exactly like
thread batches (``asyncio.wrap_future``).

Lifecycle: the pool owns the primary snapshot and the control segment;
``close()`` stops the workers (each detaches its attachments), then
closes both — the single owner unlinks every segment exactly once.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import threading
import time
from concurrent.futures import Future
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    FrozenSet,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.core.frozen import FrozenRoad
from repro.core.shm_arrays import ShmVector
from repro.queries.types import ResultRow

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from multiprocessing.connection import Connection
    from multiprocessing.context import SpawnContext
    from multiprocessing.queues import SimpleQueue

    from repro.core.framework import ROAD
    from repro.core.maintenance import MaintenanceReport

#: Maintenance kinds whose sync payload must carry fresh directory state.
OBJECT_KINDS = ("insert_object", "delete_object", "update_object")

#: Seconds a worker sleeps while the primary holds the patch window.
_PATCH_WAIT_S = 0.0002

#: Seconds the pool waits for each worker's ready handshake.
_READY_TIMEOUT_S = 60.0

#: Seconds ``close()`` grants a worker before escalating to terminate.
_STOP_TIMEOUT_S = 10.0


class ProcessPoolError(RuntimeError):
    """A pool-level failure: dead worker, closed pool, bad snapshot."""


class WorkerError(RuntimeError):
    """A query batch failed inside a worker process.

    Worker exceptions do not round-trip through pickle reliably (custom
    constructors), so the pool re-raises them as this typed wrapper
    carrying the original type name and message.
    """

    def __init__(self, exc_type: str, message: str) -> None:
        self.exc_type = exc_type
        super().__init__(f"worker raised {exc_type}: {message}")


class ProcessReplicaPool:
    """N worker processes serving one shared ``backend="shm"`` snapshot.

    Construct over the primary's shm snapshot; the pool spawns the
    workers (``spawn`` context — no forked locks or event loops), hands
    each the attach manifest, and confirms every worker's ready
    handshake before returning.  :meth:`submit` round-robins query
    batches to the workers and returns a
    :class:`concurrent.futures.Future`; :meth:`apply` publishes one
    maintenance report to the shared arrays under the seqlock;
    :meth:`replace_snapshot` swaps in a freshly frozen snapshot (the
    directory-membership path patching cannot cover).
    """

    def __init__(
        self,
        frozen: FrozenRoad,
        *,
        workers: int,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if frozen.backend != "shm":
            raise ProcessPoolError(
                "a process pool needs a backend='shm' snapshot whose "
                f"arrays live in shared segments, got {frozen.backend!r}"
            )
        self._frozen = frozen
        #: [generation, sync_seq, stopping] — the seqlock workers read,
        #: plus a stop flag so close() can abort workers parked inside a
        #: patch window that will never close (degraded pool).
        self._ctrl = ShmVector("q", [0, 0, 0])
        manifest = frozen.shm_manifest()
        self._segments = _segment_names(manifest)
        context: "SpawnContext" = multiprocessing.get_context("spawn")
        self._tasks: List["SimpleQueue[Any]"] = [
            context.SimpleQueue() for _ in range(workers)
        ]
        self._syncs: List["SimpleQueue[Any]"] = [
            context.SimpleQueue() for _ in range(workers)
        ]
        # One result pipe PER WORKER, not one shared queue: a shared
        # SimpleQueue serialises writers through one cross-process lock,
        # and a worker killed inside put() (SIGKILL lands between the
        # pipe write and the lock release — an easily-hit window, since
        # the listener completes the future the moment the bytes arrive)
        # would leave that lock held forever, wedging every survivor's
        # next result.  With a single writer per pipe there is no shared
        # lock to poison.
        result_ends = [context.Pipe(duplex=False) for _ in range(workers)]
        self._result_readers: List["Connection"] = [
            reader for reader, _writer in result_ends
        ]
        self._result_writers: List["Connection"] = [
            writer for _reader, writer in result_ends
        ]
        wake_r, wake_w = context.Pipe(duplex=False)
        self._wake_r: "Connection" = wake_r
        self._wake_w: "Connection" = wake_w
        self._ready = [threading.Event() for _ in range(workers)]
        self._futures: Dict[int, "Future[Any]"] = {}
        #: ticket -> worker index, so a worker death can fail exactly the
        #: futures routed to it.
        self._owners: Dict[int, int] = {}
        self._dead: Set[int] = set()
        self._state_lock = threading.Lock()
        self._publish_lock = threading.Lock()
        self._ticket = 0
        self._round_robin = 0
        self._seq = 0
        self._closed = False
        #: True after frozen.apply() failed mid-patch: the shared arrays
        #: may be half-patched, the generation stays odd (workers pause),
        #: and only replace_snapshot() with a fresh freeze recovers.
        self._degraded = False
        self._counters = {
            "batches": 0,        # batches dispatched to workers
            "queries": 0,        # queries inside those batches
            "syncs": 0,          # seqlock publications broadcast
            "reloads": 0,        # syncs that re-attached segments
            "retries": 0,        # worker batch retries (patch overlap)
            "worker_deaths": 0,  # workers lost to crash/kill
        }
        self._listener = threading.Thread(
            target=self._listen, name="road-shard-results", daemon=True
        )
        self._processes = [
            context.Process(
                target=_worker_main,
                args=(
                    index,
                    manifest,
                    self._ctrl.segment_name,
                    self._tasks[index],
                    self._syncs[index],
                    result_ends[index][1],
                ),
                name=f"road-shard-{index}",
                daemon=True,
            )
            for index in range(workers)
        ]
        try:
            for process in self._processes:
                process.start()
            # start() has pickled the args (the spawn resource sharer
            # holds fd duplicates for the children), so the primary can
            # drop its copies of the write ends — a worker's exit then
            # EOFs its pipe instead of leaving it half-open.
            for writer in self._result_writers:
                writer.close()
            self._listener.start()
            self._await_ready()
        except BaseException:
            self.close()
            raise

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def frozen(self) -> FrozenRoad:
        """The primary's shared snapshot (owner of every segment)."""
        return self._frozen

    @property
    def workers(self) -> int:
        return len(self._processes)

    def stats(self) -> Dict[str, object]:
        """Pool counters plus per-worker liveness."""
        with self._state_lock:
            counters = dict(self._counters)
            closed = self._closed
            degraded = self._degraded
            # Read the control words under the same lock acquisition as
            # the closed check: close() flips _closed (also under the
            # lock) before it releases the control segment, so these
            # memoryview reads can never race its close().
            generation = None if closed else int(self._ctrl[0])
            sync_seq = None if closed else int(self._ctrl[1])
        summary: Dict[str, object] = {
            **counters,
            "workers": self.workers,
            "alive": sum(1 for p in self._processes if p.is_alive()),
            "closed": closed,
            "degraded": degraded,
        }
        if not closed:  # the control segment is gone after close()
            summary["generation"] = generation
            summary["sync_seq"] = sync_seq
        return summary

    # ------------------------------------------------------------------
    # Query path
    # ------------------------------------------------------------------
    def submit(
        self,
        queries: Sequence[object],
        directory: str,
        *,
        footprints: bool = False,
    ) -> "Future[Any]":
        """Dispatch one batch to the next worker; returns its future.

        The batch runs as one ``execute_many`` inside the worker (the
        per-predicate batch caches apply there, exactly as on a thread
        replica).  The future completes on the pool's listener thread.

        With ``footprints=True`` the worker instead executes each query
        individually with its own :class:`~repro.core.search.SearchStats`
        and the future resolves to ``(answers, [(visited_nodes,
        visited_rnets), ...])`` — the per-query visit sets the service's
        result cache records as invalidation footprints.
        """
        future: "Future[Any]" = Future()
        with self._state_lock:
            if self._closed:
                raise ProcessPoolError("process pool is closed")
            if self._degraded:
                raise ProcessPoolError(
                    "process pool is degraded (a maintenance patch "
                    "failed mid-apply); replace_snapshot() with a fresh "
                    "freeze to resume serving"
                )
            alive = [
                i for i in range(len(self._processes)) if i not in self._dead
            ]
            if not alive:
                raise ProcessPoolError("every worker process has died")
            ticket = self._ticket
            self._ticket += 1
            index = alive[self._round_robin % len(alive)]
            self._round_robin += 1
            self._futures[ticket] = future
            self._owners[ticket] = index
            self._counters["batches"] += 1
            self._counters["queries"] += len(queries)
        self._tasks[index].put(
            ("batch", ticket, list(queries), directory, footprints)
        )
        return future

    # ------------------------------------------------------------------
    # Maintenance publication (the seqlock writer side)
    # ------------------------------------------------------------------
    def apply(
        self, report: "MaintenanceReport", road: Optional["ROAD"] = None
    ) -> str:
        """Patch the shared snapshot and publish the change to workers.

        The patch happens once, in place, on the shared arrays — every
        worker sees the new spans without copying — inside an odd
        generation window so no worker returns a half-patched read.
        Returns the snapshot's patch outcome (``"patched"`` /
        ``"recompiled"``).

        If the patch itself raises, the shared arrays may be left
        half-written; the pool does **not** resume serving them.  The
        window stays open (generation odd, workers pause), the pool goes
        degraded — :meth:`submit` and :meth:`apply` raise
        :class:`ProcessPoolError` — and :meth:`replace_snapshot` with a
        freshly frozen snapshot is the recovery path.
        """
        with self._publish_lock:
            with self._state_lock:
                if self._degraded:
                    raise ProcessPoolError(
                        "process pool is degraded (a previous patch "
                        "failed mid-apply); replace_snapshot() with a "
                        "fresh freeze before patching again"
                    )
            self._ctrl[0] = int(self._ctrl[0]) + 1  # odd: readers pause
            try:
                outcome = self._frozen.apply(report, road)
            except BaseException:
                # The shared arrays may be half-patched.  Leaving the
                # generation odd keeps every worker paused (no torn or
                # half-patched answers); replace_snapshot() closes the
                # window over a known-good snapshot.
                with self._state_lock:
                    self._degraded = True
                raise
            self._broadcast(report)
        return outcome

    def replace_snapshot(self, frozen: FrozenRoad) -> None:
        """Swap in a freshly frozen shm snapshot (directory changes).

        Patching keeps shard contents current but cannot add or remove
        a compiled directory; the service re-freezes and the pool
        publishes the new manifest — workers re-attach between batches.
        The old snapshot closes (and unlinks its segments) immediately;
        POSIX keeps the memory alive for workers still mapping it until
        their re-attach lands.

        This is also the recovery path out of a degraded pool (a patch
        that failed mid-apply): the still-open patch window stays open
        across the swap, so workers only resume — and only validate
        batches — after the reload payload pointing at the fresh
        snapshot is published.
        """
        if frozen.backend != "shm":
            raise ProcessPoolError(
                "replace_snapshot needs a backend='shm' snapshot, got "
                f"{frozen.backend!r}"
            )
        with self._publish_lock:
            generation = int(self._ctrl[0])
            if generation % 2 == 0:
                self._ctrl[0] = generation + 1
            old, self._frozen = self._frozen, frozen
            try:
                self._broadcast(None, force_reload=True)
            except BaseException:
                # Workers may hold a mix of old and new attachments;
                # keep the window open and the pool degraded rather
                # than resume over an inconsistent fleet.
                with self._state_lock:
                    self._degraded = True
                raise
            with self._state_lock:
                self._degraded = False
        if old is not frozen:
            old.close()

    def _broadcast(
        self,
        report: Optional["MaintenanceReport"],
        *,
        force_reload: bool = False,
    ) -> None:
        """Enqueue one sync payload everywhere; close the patch window.

        Payload selection: a changed segment set (a splice re-homed an
        array, or the snapshot recompiled/was replaced) forces a full
        re-attach manifest; object churn ships the refreshed directory
        state; a pure weight patch only invalidates worker view caches.
        """
        self._seq += 1
        manifest = self._frozen.shm_manifest()
        segments = _segment_names(manifest)
        payload: Tuple[Any, ...]
        if force_reload or segments != self._segments:
            self._segments = segments
            payload = ("reload", self._seq, manifest)
            with self._state_lock:
                self._counters["reloads"] += 1
        elif report is not None and report.kind in OBJECT_KINDS:
            payload = ("objects", self._seq, manifest["directories"])
        else:
            payload = ("arrays", self._seq)
        for queue in self._syncs:
            queue.put(payload)
        with self._state_lock:
            self._counters["syncs"] += 1
        self._ctrl[1] = self._seq
        generation = int(self._ctrl[0])
        self._ctrl[0] = generation + (generation % 2)  # even: resume

    # ------------------------------------------------------------------
    # Listener + lifecycle
    # ------------------------------------------------------------------
    def _await_ready(self) -> None:
        deadline = time.monotonic() + _READY_TIMEOUT_S
        for index, event in enumerate(self._ready):
            if event.wait(max(0.0, deadline - time.monotonic())):
                continue
            process = self._processes[index]
            raise ProcessPoolError(
                f"worker {index} failed to attach the shared snapshot "
                f"(alive={process.is_alive()}, "
                f"exitcode={process.exitcode})"
            )

    def _listen(self) -> None:
        """Listener-thread body: results, liveness, and shutdown in one.

        Waits on every worker's result pipe *and* its process sentinel
        (plus the pool's private wake pipe, which ``close()`` pokes).
        A readable pipe completes futures; a fired sentinel is a worker
        death — ``WorkerError`` only covers exceptions raised inside a
        live worker, so without the sentinels a segfault/OOM-kill would
        leave the victim's in-flight future pending forever and keep the
        round-robin routing batches at a corpse.
        """
        readers = {
            reader: index
            for index, reader in enumerate(self._result_readers)
        }
        sentinels = {
            process.sentinel: index
            for index, process in enumerate(self._processes)
        }
        while True:
            ready = multiprocessing.connection.wait(
                [self._wake_r, *readers, *sentinels]
            )
            with self._state_lock:
                if self._closed:
                    return
            # Results before sentinels: a worker that answered and then
            # exited must complete its future, not fail it.
            for conn in list(readers):
                if conn not in ready:
                    continue
                if not self._drain(conn, readers[conn]):
                    del readers[conn]
            for sentinel in list(sentinels):
                if sentinel not in ready:
                    continue
                index = sentinels.pop(sentinel)
                reader = self._result_readers[index]
                if reader in readers and not self._drain(reader, index):
                    del readers[reader]
                self._on_worker_death(index)

    def _drain(self, conn: "Connection", index: int) -> bool:
        """Consume every complete message on one result pipe.

        Returns False once the pipe is dead (worker exited or was killed
        mid-send) — a truncated trailing message is simply dropped; the
        sentinel path fails the future it belonged to.
        """
        try:
            while conn.poll():
                self._handle(conn.recv())
        except (EOFError, OSError):
            return False
        return True

    def _handle(self, item: Tuple[Any, ...]) -> None:
        """Apply one worker message (ready handshake or batch result)."""
        if item[0] == "ready":
            self._ready[item[1]].set()
            return
        _tag, ticket, ok, payload, retries = item
        with self._state_lock:
            future = self._futures.pop(ticket, None)
            self._owners.pop(ticket, None)
            self._counters["retries"] += retries
        if future is None:
            return
        if ok:
            future.set_result(payload)
        else:
            future.set_exception(WorkerError(payload[0], payload[1]))

    def _on_worker_death(self, index: int) -> None:
        """Fail the dead worker's in-flight futures; stop routing to it."""
        process = self._processes[index]
        with self._state_lock:
            if self._closed or index in self._dead:
                return
            self._dead.add(index)
            self._counters["worker_deaths"] += 1
            doomed = [
                ticket
                for ticket, owner in self._owners.items()
                if owner == index
            ]
            futures = [
                future
                for ticket in doomed
                if (future := self._futures.pop(ticket, None)) is not None
            ]
            for ticket in doomed:
                self._owners.pop(ticket, None)
        error = ProcessPoolError(
            f"worker {index} died (exitcode={process.exitcode}) with the "
            "batch in flight"
        )
        for future in futures:
            if not future.done():
                future.set_exception(error)

    def close(self) -> None:
        """Stop workers, fail pending futures, release every segment.

        Idempotent.  Workers detach their segment attachments on the
        way out; the pool (sole owner) then unlinks the snapshot's
        segments and the control vector — exactly once.
        """
        with self._state_lock:
            if self._closed:
                return
            self._closed = True
        # The stop word unblocks workers spinning inside a patch window
        # that will never close (degraded pool) so they can reach the
        # "stop" task instead of waiting out the terminate timeout.
        self._ctrl[2] = 1
        for queue in self._tasks:
            queue.put(("stop",))
        for process in self._processes:
            if process.pid is None:
                continue
            process.join(timeout=_STOP_TIMEOUT_S)
            if process.is_alive():
                process.terminate()
                process.join(timeout=_STOP_TIMEOUT_S)
        if self._listener.is_alive():
            self._wake_w.send(("stop",))  # unblock the connection wait
            self._listener.join(timeout=_STOP_TIMEOUT_S)
        with self._state_lock:
            pending, self._futures = self._futures, {}
            self._owners = {}
        for future in pending.values():
            if not future.done():
                future.set_exception(
                    ProcessPoolError("process pool closed with the batch "
                                     "in flight")
                )
        for reader in self._result_readers:
            reader.close()
        for writer in self._result_writers:
            writer.close()  # no-op normally; real on failed-start paths
        self._wake_r.close()
        self._wake_w.close()
        self._ctrl.close()
        self._frozen.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ProcessReplicaPool(workers={self.workers}, "
            f"sync_seq={self._seq}, closed={self._closed})"
        )


def _segment_names(manifest: Dict[str, Any]) -> FrozenSet[str]:
    """The shared-segment name set a manifest references."""
    return frozenset(
        segment for segment, _typecode in manifest["segments"].values()
    )


# ---------------------------------------------------------------------------
# Worker process body
# ---------------------------------------------------------------------------

class _WorkerState:
    """One worker's mutable serving state (snapshot + sync progress)."""

    __slots__ = ("frozen", "applied_seq", "retries")

    def __init__(self, frozen: FrozenRoad) -> None:
        self.frozen = frozen
        self.applied_seq = 0
        self.retries = 0


def _worker_main(
    worker_id: int,
    manifest: Dict[str, Any],
    ctrl_segment: str,
    tasks: "SimpleQueue[Any]",
    syncs: "SimpleQueue[Any]",
    results: "Connection",
) -> None:
    """Worker-process entry point: attach, handshake, serve batches.

    Spawn-friendly (module-level, picklable arguments only).  The
    worker owns no shared segment — its snapshot and control vector are
    attachments, detached on exit; the primary alone unlinks.  Results
    go over this worker's private pipe — no lock shared with the other
    workers, so this worker dying mid-send cannot wedge anyone else.
    """
    frozen = FrozenRoad.from_manifest(manifest)
    ctrl = ShmVector.attach(ctrl_segment, "q")
    state = _WorkerState(frozen)
    results.send(("ready", worker_id))
    try:
        while True:
            item = tasks.get()
            if item[0] == "stop":
                return
            _tag, ticket, queries, directory = item[:4]
            # Tolerant unpack: a 4-tuple (pre-footprint primary) means
            # the plain execute_many path.
            footprints = bool(item[4]) if len(item) > 4 else False
            state.retries = 0
            try:
                answers = _serve_batch(
                    state, ctrl, syncs, queries, directory,
                    footprints=footprints,
                )
            except Exception as exc:  # noqa: BLE001 — fan the error out
                results.send(
                    (
                        "done",
                        ticket,
                        False,
                        (type(exc).__name__, str(exc)),
                        state.retries,
                    )
                )
            else:
                results.send(("done", ticket, True, answers, state.retries))
    finally:
        state.frozen.close()
        ctrl.close()
        results.close()


def _serve_batch(
    state: _WorkerState,
    ctrl: ShmVector,
    syncs: "SimpleQueue[Any]",
    queries: List[object],
    directory: str,
    *,
    footprints: bool = False,
) -> Any:
    """One batch under the seqlock: sync, execute, validate, retry.

    The read is consistent when the generation was even and unchanged
    across the whole execution and every published sync payload had
    been applied first.  A batch that overlapped a patch window retries
    — by then the catch-up loop has applied the new state, so the retry
    serves post-patch answers (never torn ones).  ``footprints`` runs
    each query with its own stats (see :meth:`ProcessReplicaPool.submit`);
    a retry rebuilds the stats, so a footprint never mixes pre- and
    post-patch visit sets.
    """
    from repro.core.search import SearchStats

    while True:
        _catch_up(state, ctrl, syncs)
        generation = int(ctrl[0])
        stats_list: Optional[List[SearchStats]] = None
        try:
            if footprints:
                stats_list = [SearchStats() for _ in queries]
                answers = [
                    state.frozen.execute(query, directory=directory, stats=s)
                    for query, s in zip(queries, stats_list)
                ]
            else:
                answers = state.frozen.execute_many(
                    queries, directory=directory
                )
        except Exception:
            # A patch window overlapping the read can surface as an
            # exception (offsets mid-splice); only a quiescent failure
            # is a real error.
            if int(ctrl[0]) == generation and generation % 2 == 0:
                raise
            state.retries += 1
            continue
        # The even check matters even though _catch_up only returns on
        # even generations: the primary can open a patch window between
        # _catch_up returning and the sample above, and a window that
        # outlasts the whole batch leaves both control words looking
        # unchanged around a torn read.
        if (
            generation % 2 == 0
            and int(ctrl[0]) == generation
            and state.applied_seq >= int(ctrl[1])
        ):
            if stats_list is not None:
                return answers, [
                    (set(s.visited_nodes), set(s.visited_rnets))
                    for s in stats_list
                ]
            return answers
        state.retries += 1


def _catch_up(
    state: _WorkerState, ctrl: ShmVector, syncs: "SimpleQueue[Any]"
) -> None:
    """Wait out any patch window and apply every published sync payload.

    The primary enqueues the payload *before* bumping ``sync_seq``, so
    whenever ``applied_seq`` trails the published sequence the payload
    is already in (or on its way into) this worker's sync queue — the
    blocking ``get`` cannot starve.

    A degraded pool leaves the patch window open indefinitely; the stop
    word (``ctrl[2]``, set by the primary's ``close()``) aborts the wait
    so the worker can drain its task queue and exit.
    """
    while True:
        if int(ctrl[2]):
            raise ProcessPoolError("process pool is stopping")
        if int(ctrl[0]) % 2:
            time.sleep(_PATCH_WAIT_S)
            continue
        if state.applied_seq >= int(ctrl[1]):
            return
        _apply_sync(state, syncs.get())


def _apply_sync(state: _WorkerState, payload: Tuple[Any, ...]) -> None:
    """Apply one published sync payload to this worker's snapshot."""
    kind, seq = payload[0], payload[1]
    if kind == "reload":
        replacement = FrozenRoad.from_manifest(payload[2])
        state.frozen.close()
        state.frozen = replacement
    elif kind == "objects":
        state.frozen.sync_directories(payload[2])
    else:  # "arrays"
        state.frozen.refresh_views()
    state.applied_seq = seq
