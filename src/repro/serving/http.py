"""The HTTP serving edge: a stdlib-only ASGI app over one RoadService.

The serving stack ends here: :class:`RoadServiceApp` is an ASGI-3
application (any ASGI server can host it; ``python -m repro.serving.http``
runs it on the built-in :func:`serve` loop) exposing four routes:

=================  ======  ====================================================
``/query``         POST    one query (``{"query": {...}}``) or a batch
                           (``{"queries": [...]}``), decoded by
                           :mod:`repro.serving.wire` and awaited through
                           ``RoadService.submit`` — the admission path, so
                           coalescing and replica sharding work unchanged
``/maintenance``   POST    edge/object churn (``{"op": "add_edge", ...}``)
                           routed through the service's maintenance methods,
                           hence its patch-broadcast to every replica shard
``/metrics``       GET     the service's :class:`MetricsRegistry` in the
                           Prometheus text exposition format
``/healthz``       GET     liveness from ``replica_pool_stats()``: 200
                           ``ok``/``degraded`` while serving, 503 once the
                           pool is degraded (torn patch), dead, or closed
=================  ======  ====================================================

Everything rides the *existing* service surface: queries enter the async
admission buckets, maintenance flows through ``_maintained``'s broadcast,
and the metrics/health endpoints only read ``service.metrics`` /
``replica_pool_stats()``.  The app holds no state of its own beyond
route handles, so one service may sit behind several app instances (or
one app behind several server workers).

Errors are typed, not leaked: malformed payloads
(:class:`~repro.serving.wire.WireError`) and invalid maintenance
arguments answer 400, unknown directories 404, unsupported queries 400,
a closed/misconfigured service 503, an executor without maintenance
methods 501.  Anything else is a 500 with the exception type named —
the edge answers, it does not crash.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import time
from typing import (
    Any,
    Awaitable,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.core.maintenance import MaintenanceReport
from repro.objects.model import ObjectError, SpatialObject
from repro.serving.dispatch import UnknownDirectoryError, UnsupportedQueryError
from repro.serving.service import RoadService, ServiceConfig, ServiceError
from repro.serving.wire import (
    WireError,
    _require_int,
    _require_mapping,
    _require_number,
    _require_str,
    decode_query,
    encode_result,
)

__all__ = ["MAX_BODY_BYTES", "RoadServiceApp", "main", "serve"]

#: ASGI-3 callables (the subset this app and server exchange).
Receive = Callable[[], Awaitable[Dict[str, Any]]]
Send = Callable[[Dict[str, Any]], Awaitable[None]]
Scope = Mapping[str, Any]

#: One finished response: status, content type, payload.
_Reply = Tuple[int, str, bytes]
_Handler = Callable[[bytes], Awaitable[_Reply]]

#: Reject request bodies beyond this size (a query batch this large
#: should be a bench harness talking to the service in process).
MAX_BODY_BYTES = 8 * 1024 * 1024

#: Maintenance operations ``POST /maintenance`` accepts — each is the
#: eponymous ``RoadService`` method, so every one patch-broadcasts.
MAINTENANCE_OPS = (
    "insert_object",
    "delete_object",
    "update_object_attrs",
    "add_edge",
    "remove_edge",
    "update_edge_distance",
)

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
    501: "Not Implemented",
    503: "Service Unavailable",
}

_PROMETHEUS_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class _HttpError(Exception):
    """An error with a known status code (raised by handlers)."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


def _json_reply(status: int, payload: object) -> _Reply:
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    return status, "application/json", body


async def _read_body(receive: Receive) -> bytes:
    chunks: List[bytes] = []
    total = 0
    while True:
        message = await receive()
        kind = message.get("type")
        if kind == "http.disconnect":
            raise _HttpError(400, "client disconnected mid-request")
        if kind != "http.request":
            continue
        chunk = bytes(message.get("body", b""))
        total += len(chunk)
        if total > MAX_BODY_BYTES:
            raise _HttpError(413, f"request body exceeds {MAX_BODY_BYTES} bytes")
        chunks.append(chunk)
        if not message.get("more_body"):
            return b"".join(chunks)


def _parse_json(body: bytes) -> object:
    try:
        return json.loads(body)
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireError(f"request body is not valid JSON: {exc}") from exc


class RoadServiceApp:
    """The ASGI application serving one :class:`RoadService`."""

    def __init__(self, service: RoadService) -> None:
        self.service = service
        self.metrics = service.metrics
        self._routes: Dict[str, Tuple[str, _Handler]] = {
            "/query": ("POST", self._query),
            "/maintenance": ("POST", self._maintenance),
            "/metrics": ("GET", self._metrics),
            "/healthz": ("GET", self._healthz),
        }

    # -- ASGI entry ----------------------------------------------------
    async def __call__(
        self, scope: Scope, receive: Receive, send: Send
    ) -> None:
        if scope["type"] == "lifespan":
            await self._lifespan(receive, send)
            return
        if scope["type"] != "http":
            raise RuntimeError(
                f"RoadServiceApp only speaks http/lifespan scopes, "
                f"got {scope['type']!r}"
            )
        path = str(scope.get("path", "/"))
        method = str(scope.get("method", "GET")).upper()
        route = self._routes.get(path)
        # Unmatched paths share one label — a scanner walking random
        # URLs must not mint unbounded metric children.
        label = path if route is not None else "unmatched"
        self.metrics.counter(
            "road_http_requests_total",
            "HTTP requests by route.",
            labels={"path": label},
        ).inc()
        start = time.perf_counter()
        reply = await self._respond(route, method, path, receive)
        status, content_type, payload = reply
        self.metrics.histogram(
            "road_http_request_ms",
            "HTTP request wall time by route, in milliseconds.",
            labels={"path": label},
        ).observe((time.perf_counter() - start) * 1000.0)
        self.metrics.counter(
            "road_http_responses_total",
            "HTTP responses by status code.",
            labels={"code": str(status)},
        ).inc()
        await send(
            {
                "type": "http.response.start",
                "status": status,
                "headers": [
                    (b"content-type", content_type.encode("latin-1")),
                    (b"content-length", str(len(payload)).encode("latin-1")),
                ],
            }
        )
        await send({"type": "http.response.body", "body": payload})

    async def _respond(
        self,
        route: Optional[Tuple[str, _Handler]],
        method: str,
        path: str,
        receive: Receive,
    ) -> _Reply:
        try:
            if route is None:
                return _json_reply(404, {"error": f"no route for {path}"})
            expected, handler = route
            if method != expected:
                return _json_reply(405, {"error": f"{path} only accepts {expected}"})
            return await handler(await _read_body(receive))
        except _HttpError as exc:
            return _json_reply(exc.status, {"error": str(exc)})
        except UnknownDirectoryError as exc:
            return _json_reply(404, {"error": str(exc)})
        except (UnsupportedQueryError, ObjectError, ValueError) as exc:
            # WireError is a ValueError; engine-side validation
            # (bad radius, bad aggregate, negative offsets) lands here.
            return _json_reply(400, {"error": str(exc)})
        except KeyError as exc:
            # Unknown object/edge ids surface as KeyErrors from the
            # maintenance path: the thing addressed does not exist.
            return _json_reply(404, {"error": str(exc)})
        except ServiceError as exc:
            return _json_reply(503, {"error": str(exc)})
        except Exception as exc:  # noqa: BLE001 — the edge answers, never crashes
            return _json_reply(500, {"error": f"{type(exc).__name__}: {exc}"})

    async def _lifespan(self, receive: Receive, send: Send) -> None:
        while True:
            message = await receive()
            if message["type"] == "lifespan.startup":
                await send({"type": "lifespan.startup.complete"})
            elif message["type"] == "lifespan.shutdown":
                await send({"type": "lifespan.shutdown.complete"})
                return

    # -- routes --------------------------------------------------------
    async def _query(self, body: bytes) -> _Reply:
        payload = _require_mapping(_parse_json(body), "request body")
        directory = payload.get("directory")
        if directory is not None and not isinstance(directory, str):
            raise WireError(f"field 'directory' must be a string, got {directory!r}")
        single = "query" in payload
        batch = "queries" in payload
        if single == batch:
            raise WireError(
                "provide exactly one of 'query' (single) or 'queries' (batch)"
            )
        if single:
            query = decode_query(payload["query"])
            result = await self.service.submit(query, directory=directory)
            return _json_reply(
                200, {"result": encode_result(result), "count": len(result)}
            )
        raw = payload["queries"]
        if not isinstance(raw, Sequence) or isinstance(raw, (str, bytes)):
            raise WireError("field 'queries' must be a list of query objects")
        queries = [decode_query(item) for item in raw]
        # One gather = concurrent admission: the service batches and
        # coalesces these exactly as it would any other submitters.
        results = await asyncio.gather(
            *(self.service.submit(q, directory=directory) for q in queries)
        )
        return _json_reply(
            200, {"results": [encode_result(entries) for entries in results]}
        )

    async def _maintenance(self, body: bytes) -> _Reply:
        payload = _require_mapping(_parse_json(body), "request body")
        op = _require_str(payload, "op")
        if op not in MAINTENANCE_OPS:
            raise WireError(
                f"unknown op {op!r} (one of: {', '.join(MAINTENANCE_OPS)})"
            )
        try:
            result = self._run_maintenance(op, payload)
        except AttributeError as exc:
            raise _HttpError(
                501,
                f"{type(self.service.executor).__name__} does not support "
                f"maintenance ({exc})",
            ) from exc
        report = (
            result
            if isinstance(result, MaintenanceReport)
            else getattr(self.service.executor, "last_report", None)
        )
        answer: Dict[str, Any] = {"op": op, "ok": True}
        if isinstance(report, MaintenanceReport):
            answer["kind"] = report.kind
            answer["structural"] = report.structural
        return _json_reply(200, answer)

    def _run_maintenance(self, op: str, payload: Mapping[str, Any]) -> Any:
        """Decode one op's arguments and call the service method.

        Runs on the loop thread: a patch is a few array writes plus the
        broadcast, and serialising it against admission flushes is
        exactly the consistency the sync maintenance API provides.
        """
        kwargs: Dict[str, Any] = {}
        directory = payload.get("directory")
        if directory is not None:
            if not isinstance(directory, str):
                raise WireError(
                    f"field 'directory' must be a string, got {directory!r}"
                )
            kwargs["directory"] = directory
        if op == "insert_object":
            return self.service.insert_object(
                _decode_object(payload.get("object")), **kwargs
            )
        if op == "delete_object":
            return self.service.delete_object(
                _require_int(payload, "object_id"), **kwargs
            )
        if op == "update_object_attrs":
            return self.service.update_object_attrs(
                _require_int(payload, "object_id"),
                _decode_attrs(payload.get("attrs")),
                **kwargs,
            )
        u = _require_int(payload, "u")
        v = _require_int(payload, "v")
        if op == "add_edge":
            return self.service.add_edge(u, v, _require_number(payload, "distance"))
        if op == "remove_edge":
            return self.service.remove_edge(u, v)
        return self.service.update_edge_distance(
            u, v, _require_number(payload, "distance")
        )

    async def _metrics(self, body: bytes) -> _Reply:
        return 200, _PROMETHEUS_TYPE, self.metrics.render().encode("utf-8")

    async def _healthz(self, body: bytes) -> _Reply:
        pool = self.service.replica_pool_stats()
        workers = int(_as_float(pool.get("workers")))
        alive = int(_as_float(pool.get("alive")))
        degraded = bool(pool.get("degraded"))
        closed = bool(pool.get("closed"))
        if closed or degraded or (workers and not alive):
            status, verdict = 503, "unhealthy"
        elif workers and alive < workers:
            # PR 7's containment contract: dead workers shrink the pool
            # but the survivors keep serving — degraded, not down.
            status, verdict = 200, "degraded"
        else:
            status, verdict = 200, "ok"
        return _json_reply(
            status,
            {
                "status": verdict,
                "replica_mode": self.service.config.replica_mode,
                "workers": workers,
                "alive": alive,
                "degraded": degraded,
                "closed": closed,
            },
        )


def _as_float(value: object) -> float:
    return float(value) if isinstance(value, (int, float)) else 0.0


def _decode_object(raw: object) -> SpatialObject:
    body = _require_mapping(raw, "field 'object'")
    edge = body.get("edge")
    if (
        not isinstance(edge, Sequence)
        or isinstance(edge, (str, bytes))
        or len(edge) != 2
    ):
        raise WireError(f"field 'edge' must be a [u, v] pair, got {edge!r}")
    endpoints = _require_mapping({"u": edge[0], "v": edge[1]}, "edge")
    return SpatialObject(
        object_id=_require_int(body, "object_id"),
        edge=(_require_int(endpoints, "u"), _require_int(endpoints, "v")),
        delta=_require_number(body, "delta"),
        attrs=_decode_attrs(body.get("attrs")),
    )


def _decode_attrs(raw: object) -> Dict[str, str]:
    if raw is None:
        return {}
    body = _require_mapping(raw, "field 'attrs'")
    out: Dict[str, str] = {}
    for key, value in body.items():
        if not isinstance(key, str) or not isinstance(value, str):
            raise WireError(
                f"attrs must map strings to strings, got {key!r}: {value!r}"
            )
        out[key] = value
    return out


# ---------------------------------------------------------------------------
# The built-in HTTP/1.1 server (python -m repro.serving.http)
# ---------------------------------------------------------------------------
async def serve(
    app: RoadServiceApp,
    host: str = "127.0.0.1",
    port: int = 8080,
    *,
    ready: Optional[asyncio.Event] = None,
) -> None:
    """Host the app on a minimal asyncio HTTP/1.1 server, forever.

    Supports pipelined keep-alive requests with ``Content-Length``
    bodies — the subset the wire protocol and the load harness use.
    ``ready`` (if given) is set once the listening socket is bound.
    """

    async def handle(
        reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        await _handle_connection(app, reader, writer)

    server = await asyncio.start_server(handle, host, port)
    if ready is not None:
        ready.set()
    async with server:
        await server.serve_forever()


async def _handle_connection(
    app: RoadServiceApp,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    try:
        while True:
            request = await _read_request(reader, writer)
            if request is None:
                return
            scope, body, keep_alive = request
            await _serve_one(app, writer, scope, body)
            await writer.drain()
            if not keep_alive:
                return
    except (ConnectionError, asyncio.IncompleteReadError):
        return  # client went away; nothing to answer
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def _serve_one(
    app: RoadServiceApp,
    writer: asyncio.StreamWriter,
    scope: Dict[str, Any],
    body: bytes,
) -> None:
    """Run one request through the ASGI interface onto the socket."""
    messages = [{"type": "http.request", "body": body, "more_body": False}]

    async def receive() -> Dict[str, Any]:
        if messages:
            return messages.pop(0)
        return {"type": "http.disconnect"}

    async def send(message: Dict[str, Any]) -> None:
        _write_message(writer, message)

    await app(scope, receive, send)


async def _read_request(
    reader: asyncio.StreamReader, writer: asyncio.StreamWriter
) -> Optional[Tuple[Dict[str, Any], bytes, bool]]:
    """Parse one request; None at a clean end of stream."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean close between requests
        raise
    except asyncio.LimitOverrunError:
        _write_error(writer, 400, "request head too large")
        return None
    request_line, *header_lines = head.decode("latin-1").split("\r\n")
    parts = request_line.split(" ")
    if len(parts) != 3:
        _write_error(writer, 400, f"malformed request line {request_line!r}")
        return None
    method, target, version = parts
    headers: List[Tuple[bytes, bytes]] = []
    content_length = 0
    keep_alive = version == "HTTP/1.1"
    for line in header_lines:
        if not line:
            continue
        name, _, value = line.partition(":")
        name = name.strip().lower()
        value = value.strip()
        headers.append((name.encode("latin-1"), value.encode("latin-1")))
        if name == "content-length":
            try:
                content_length = int(value)
            except ValueError:
                _write_error(writer, 400, f"bad content-length {value!r}")
                return None
        elif name == "connection":
            keep_alive = value.lower() != "close"
        elif name == "transfer-encoding":
            _write_error(writer, 501, "chunked bodies are not supported")
            return None
    if content_length > MAX_BODY_BYTES:
        _write_error(writer, 413, "request body too large")
        return None
    body = (
        await reader.readexactly(content_length) if content_length else b""
    )
    path, _, query_string = target.partition("?")
    scope: Dict[str, Any] = {
        "type": "http",
        "asgi": {"version": "3.0", "spec_version": "2.3"},
        "http_version": version.removeprefix("HTTP/"),
        "method": method.upper(),
        "scheme": "http",
        "path": path,
        "raw_path": target.encode("latin-1"),
        "query_string": query_string.encode("latin-1"),
        "headers": headers,
    }
    return scope, body, keep_alive


def _write_message(
    writer: asyncio.StreamWriter, message: Dict[str, Any]
) -> None:
    kind = message["type"]
    if kind == "http.response.start":
        status = int(message["status"])
        reason = _REASONS.get(status, "")
        lines = [f"HTTP/1.1 {status} {reason}".encode("latin-1")]
        lines.extend(
            bytes(name) + b": " + bytes(value)
            for name, value in message.get("headers", [])
        )
        writer.write(b"\r\n".join(lines) + b"\r\n\r\n")
    elif kind == "http.response.body":
        writer.write(bytes(message.get("body", b"")))


def _write_error(
    writer: asyncio.StreamWriter, status: int, message: str
) -> None:
    _, _, payload = _json_reply(status, {"error": message})
    _write_message(
        writer,
        {
            "type": "http.response.start",
            "status": status,
            "headers": [
                (b"content-type", b"application/json"),
                (b"content-length", str(len(payload)).encode("latin-1")),
                (b"connection", b"close"),
            ],
        },
    )
    _write_message(writer, {"type": "http.response.body", "body": payload})


# ---------------------------------------------------------------------------
# Runner
# ---------------------------------------------------------------------------
def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serving.http",
        description=(
            "Serve a demo grid network over HTTP "
            "(REPRO_* env vars configure the engine; flags beat them)"
        ),
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8080)
    parser.add_argument(
        "--grid", type=int, default=24, help="grid side length (nodes = N*N)"
    )
    parser.add_argument("--objects", type=int, default=96)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--replicas", type=int, default=None)
    parser.add_argument(
        "--replica-mode", choices=("thread", "process"), default=None
    )
    parser.add_argument("--engine-mode", dest="mode", default=None)
    parser.add_argument("--backend", default=None)
    return parser


def _build_service(args: argparse.Namespace) -> RoadService:
    from repro.graph.generators import grid_network
    from repro.objects.placement import place_uniform

    network = grid_network(args.grid, args.grid, seed=args.seed)
    objects = place_uniform(
        network,
        args.objects,
        seed=args.seed,
        attr_choices={"type": ["restaurant", "hotel", "fuel"]},
    )
    overrides: Dict[str, Any] = {}
    for field in ("replicas", "replica_mode", "mode", "backend"):
        value = getattr(args, field)
        if value is not None:
            overrides[field] = value
    config = ServiceConfig.from_env(**overrides)
    return RoadService.build(network, objects, config=config)


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _parser().parse_args(argv)
    service = _build_service(args)
    app = RoadServiceApp(service)
    print(
        f"road-serving: {service.config.engine} engine, "
        f"{service.config.replicas} {service.config.replica_mode} replicas "
        f"on http://{args.host}:{args.port} (Ctrl-C stops)"
    )
    try:
        asyncio.run(serve(app, args.host, args.port))
    except KeyboardInterrupt:
        pass
    finally:
        service.close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
