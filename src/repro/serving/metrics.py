"""Lock-cheap serving metrics: counters, histograms, callback gauges.

The serving stack needed an observability surface: saturation was
anecdotal ("the bench said 48k qps once") because nothing in the process
could answer *what is this service doing right now*.  This module is the
one metrics registry threaded through :class:`~repro.serving.RoadService`,
the replica pools, and the engine stats — scraped by ``GET /metrics``
(:mod:`repro.serving.http`) in the Prometheus text exposition format and
mirrored into ``RoadService.stats()["metrics"]``.

Design constraints, in order:

* **Lock-cheap on the hot path.**  A counter increment or histogram
  observation is one uncontended ``threading.Lock`` acquire around a few
  arithmetic ops — no string formatting, no allocation beyond the int
  adds.  Rendering (the scrape path) pays the formatting cost instead,
  and samples each metric under the same tiny lock.
* **Stdlib only.**  No ``prometheus_client`` dependency: the exposition
  format is a few lines of text, and the repo's core is stdlib-only by
  contract.
* **Gauges are callbacks.**  Engine-side facts (resident bytes, mask
  cache occupancy, replica-pool liveness) already live in
  ``memory_stats()`` / ``replica_pool_stats()``; a gauge samples them at
  scrape time instead of duplicating state that would drift.  A callback
  that raises is skipped for that scrape (a half-closed engine must not
  turn ``/metrics`` into a 500) and counted in
  ``road_metrics_gauge_errors_total``.

Metric families follow Prometheus conventions: ``*_total`` counters,
``*_ms`` histograms (milliseconds), plain gauges.  Labels are static per
child — ``registry.counter(name, help, labels={...})`` returns one child
of the family per distinct label set — except labelled gauges, whose
callback returns a ``{label value: gauge value}`` mapping sampled per
scrape (per-directory resident bytes, per-kind patch counts).
"""

from __future__ import annotations

import re
import threading
from bisect import bisect_left
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

__all__ = [
    "BATCH_SIZE_BUCKETS",
    "LATENCY_BUCKETS_MS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricError",
    "MetricsRegistry",
]

#: Histogram bounds for per-query latency in milliseconds: sub-50us
#: coalesce hits through multi-second stalls.  The last bucket is the
#: implicit ``+Inf``.
LATENCY_BUCKETS_MS: Tuple[float, ...] = (
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    25.0,
    50.0,
    100.0,
    250.0,
    500.0,
    1000.0,
    2500.0,
)

#: Histogram bounds for admission batch sizes (powers of two up to the
#: largest ``max_batch`` any config uses in practice).
BATCH_SIZE_BUCKETS: Tuple[float, ...] = (
    1.0,
    2.0,
    4.0,
    8.0,
    16.0,
    32.0,
    64.0,
    128.0,
    256.0,
    512.0,
)

#: Prometheus metric / label name grammar.
_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: A frozen, sorted label set — the identity of one family child.
LabelSet = Tuple[Tuple[str, str], ...]

#: What a gauge callback may return: one value, or a mapping of label
#: values to values (one sample per entry).
GaugeValue = Union[float, int, Mapping[str, float]]

#: Scalar snapshot forms (``MetricsRegistry.snapshot()`` leaves).
Snapshot = Dict[str, object]


class MetricError(ValueError):
    """An invalid metric registration or observation."""


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise MetricError(f"invalid metric name {name!r}")
    return name


def _freeze_labels(labels: Optional[Mapping[str, str]]) -> LabelSet:
    if not labels:
        return ()
    for key in labels:
        if not _LABEL_RE.match(key):
            raise MetricError(f"invalid label name {key!r}")
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _escape(value: str) -> str:
    """Escape one label value per the exposition format."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _render_labels(labels: LabelSet) -> str:
    if not labels:
        return ""
    body = ",".join(f'{key}="{_escape(value)}"' for key, value in labels)
    return "{" + body + "}"


def _format_value(value: float) -> str:
    """Exposition-format number: integral values without the ``.0``."""
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


class Counter:
    """A monotonically increasing count (one family child)."""

    kind = "counter"

    __slots__ = ("labels", "_lock", "_value")

    def __init__(self, labels: LabelSet = ()) -> None:
        self.labels = labels
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (>= 0) to the count."""
        if amount < 0:
            raise MetricError(f"counters only go up (inc by {amount})")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def samples(self, name: str) -> List[Tuple[str, LabelSet, float]]:
        return [(name, self.labels, self.value)]

    def snapshot(self) -> object:
        return self.value


class Histogram:
    """Fixed-bucket latency/size distribution (one family child).

    ``observe`` is the hot-path entry: one lock, one bisect, three adds.
    ``percentile`` interpolates within the winning bucket — coarse, but
    scrape-side only; the benches compute exact percentiles from their
    own recorded samples.
    """

    kind = "histogram"

    __slots__ = ("bounds", "labels", "_counts", "_count", "_lock", "_sum")

    def __init__(
        self,
        bounds: Sequence[float] = LATENCY_BUCKETS_MS,
        labels: LabelSet = (),
    ) -> None:
        ordered = tuple(float(b) for b in bounds)
        if not ordered or list(ordered) != sorted(set(ordered)):
            raise MetricError(
                f"histogram bounds must be distinct and increasing, got {bounds!r}"
            )
        self.bounds = ordered
        self.labels = labels
        self._lock = threading.Lock()
        self._counts = [0] * (len(ordered) + 1)  # last bucket = +Inf
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        index = bisect_left(self.bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def percentile(self, fraction: float) -> float:
        """Estimated quantile (0 < fraction <= 1) from the buckets."""
        if not 0.0 < fraction <= 1.0:
            raise MetricError(f"fraction must be in (0, 1], got {fraction}")
        with self._lock:
            counts = list(self._counts)
            total = self._count
        if total == 0:
            return 0.0
        rank = fraction * total
        seen = 0.0
        for index, bucket_count in enumerate(counts):
            if not bucket_count:
                continue
            if seen + bucket_count >= rank:
                lower = 0.0 if index == 0 else self.bounds[index - 1]
                if index >= len(self.bounds):
                    return lower  # +Inf bucket: report its floor
                upper = self.bounds[index]
                return lower + (upper - lower) * ((rank - seen) / bucket_count)
            seen += bucket_count
        return self.bounds[-1]

    def samples(self, name: str) -> List[Tuple[str, LabelSet, float]]:
        with self._lock:
            counts = list(self._counts)
            total = self._count
            accumulated = self._sum
        out: List[Tuple[str, LabelSet, float]] = []
        cumulative = 0
        for bound, bucket_count in zip(self.bounds, counts):
            cumulative += bucket_count
            label = (("le", _format_value(bound)),)
            out.append((f"{name}_bucket", self.labels + label, float(cumulative)))
        out.append((f"{name}_bucket", self.labels + (("le", "+Inf"),), float(total)))
        out.append((f"{name}_sum", self.labels, accumulated))
        out.append((f"{name}_count", self.labels, float(total)))
        return out

    def snapshot(self) -> object:
        return {
            "count": self.count,
            "sum": self.sum,
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
            "p99": self.percentile(0.99),
        }


class Gauge:
    """A callback-sampled value (or labelled value family).

    ``fn`` runs at scrape time.  With ``label`` set, it must return a
    mapping of label values to floats (one sample per entry); without,
    one number.
    """

    kind = "gauge"

    __slots__ = ("fn", "label", "labels")

    def __init__(
        self,
        fn: Callable[[], GaugeValue],
        *,
        label: Optional[str] = None,
        labels: LabelSet = (),
    ) -> None:
        if label is not None and not _LABEL_RE.match(label):
            raise MetricError(f"invalid label name {label!r}")
        self.fn = fn
        self.label = label
        self.labels = labels

    def samples(self, name: str) -> List[Tuple[str, LabelSet, float]]:
        value = self.fn()
        if self.label is None:
            if isinstance(value, Mapping):
                raise MetricError(
                    f"gauge {name} returned a mapping but declared no label"
                )
            return [(name, self.labels, float(value))]
        if not isinstance(value, Mapping):
            raise MetricError(
                f"gauge {name} declared label {self.label!r} but returned "
                f"{type(value).__name__}, not a mapping"
            )
        return [
            (name, self.labels + ((self.label, str(key)),), float(item))
            for key, item in sorted(value.items())
        ]

    def snapshot(self) -> object:
        value = self.fn()
        if isinstance(value, Mapping):
            return {str(key): float(item) for key, item in value.items()}
        return float(value)


#: Any family child.
Metric = Union[Counter, Histogram, Gauge]


class _Family:
    """One metric family: a name, a help line, and its label children."""

    __slots__ = ("help", "kind", "children")

    def __init__(self, kind: str, help_text: str) -> None:
        self.kind = kind
        self.help = help_text
        self.children: Dict[LabelSet, Metric] = {}


class MetricsRegistry:
    """The process-local registry one serving stack scrapes.

    ``counter`` / ``histogram`` / ``gauge`` are get-or-create: asking for
    the same (name, labels) twice returns the same child, so the service
    and the HTTP app can both hold handles without coordination.
    Re-registering a name as a different kind raises — that is always a
    bug, never a feature.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: Dict[str, _Family] = {}

    # -- registration --------------------------------------------------
    def counter(
        self,
        name: str,
        help_text: str = "",
        *,
        labels: Optional[Mapping[str, str]] = None,
    ) -> Counter:
        """Get or create one counter child."""
        child = self._child(name, help_text, "counter", _freeze_labels(labels))
        assert isinstance(child, Counter)
        return child

    def histogram(
        self,
        name: str,
        help_text: str = "",
        *,
        buckets: Sequence[float] = LATENCY_BUCKETS_MS,
        labels: Optional[Mapping[str, str]] = None,
    ) -> Histogram:
        """Get or create one histogram child."""
        child = self._child(
            name,
            help_text,
            "histogram",
            _freeze_labels(labels),
            buckets=tuple(buckets),
        )
        assert isinstance(child, Histogram)
        return child

    def gauge(
        self,
        name: str,
        help_text: str,
        fn: Callable[[], GaugeValue],
        *,
        label: Optional[str] = None,
        labels: Optional[Mapping[str, str]] = None,
    ) -> Gauge:
        """Register (or replace) one callback gauge child."""
        label_set = _freeze_labels(labels)
        with self._lock:
            family = self._family(name, help_text, "gauge")
            gauge = Gauge(fn, label=label, labels=label_set)
            family.children[label_set] = gauge
            return gauge

    def _child(
        self,
        name: str,
        help_text: str,
        kind: str,
        label_set: LabelSet,
        *,
        buckets: Optional[Tuple[float, ...]] = None,
    ) -> Metric:
        with self._lock:
            family = self._family(name, help_text, kind)
            child = family.children.get(label_set)
            if child is None:
                if kind == "counter":
                    child = Counter(label_set)
                else:
                    child = Histogram(buckets or LATENCY_BUCKETS_MS, label_set)
                family.children[label_set] = child
            return child

    def _family(self, name: str, help_text: str, kind: str) -> _Family:
        family = self._families.get(_check_name(name))
        if family is None:
            family = _Family(kind, help_text)
            self._families[name] = family
        elif family.kind != kind:
            raise MetricError(
                f"metric {name} already registered as a {family.kind}, "
                f"cannot re-register as a {kind}"
            )
        if help_text and not family.help:
            family.help = help_text
        return family

    # -- scrape --------------------------------------------------------
    def render(self) -> str:
        """The registry in the Prometheus text exposition format."""
        lines: List[str] = []
        errors = 0
        for name, family in sorted(self._with_families()):
            samples: List[Tuple[str, LabelSet, float]] = []
            for child in list(family.children.values()):
                try:
                    samples.extend(child.samples(name))
                except Exception:  # noqa: BLE001 — a scrape must not 500
                    errors += 1
            if not samples:
                continue
            if family.help:
                lines.append(f"# HELP {name} {family.help}")
            lines.append(f"# TYPE {name} {family.kind}")
            for sample_name, labels, value in samples:
                rendered = _render_labels(labels)
                lines.append(f"{sample_name}{rendered} {_format_value(value)}")
        if errors:
            lines.append("# TYPE road_metrics_gauge_errors_total counter")
            lines.append(f"road_metrics_gauge_errors_total {errors}")
        return "\n".join(lines) + "\n"

    def snapshot(self) -> Snapshot:
        """Plain-dict view for ``RoadService.stats()`` and tests.

        Families with one unlabelled child collapse to their value;
        labelled families key children by their rendered label set.
        Gauge callbacks that raise are omitted (same contract as
        :meth:`render`).
        """
        out: Snapshot = {}
        for name, family in sorted(self._with_families()):
            children: Dict[str, object] = {}
            for label_set, child in list(family.children.items()):
                try:
                    value = child.snapshot()
                except Exception:  # noqa: BLE001 — a scrape must not raise
                    continue
                children[_render_labels(label_set) or ""] = value
            if not children:
                continue
            if list(children) == [""]:
                out[name] = children[""]
            else:
                out[name] = children
        return out

    def _with_families(self) -> List[Tuple[str, _Family]]:
        with self._lock:
            return list(self._families.items())
