"""JSON wire codecs for every registered query class (and results).

The HTTP tier (:mod:`repro.serving.http`) needs a serialization story
that keeps pace with the dispatch registry: every query class an engine
registers a handler for must round-trip through JSON, or the network
edge silently serves a subset of the API.  This module is the one
mapping between wire payloads and the dataclasses in
:mod:`repro.queries.types`:

* ``encode_query`` / ``decode_query`` — ``{"type": "knn", "node": 3,
  "k": 5, "predicate": {"type": "seafood"}}`` <-> :class:`KNNQuery`,
  dispatching on the ``type`` tag through a codec registry
  (:func:`register_wire`) mirroring ``@register_handler``;
* ``encode_result`` / ``decode_result`` — result lists as
  ``[{"object_id": ..., "distance": ...}, ...]``, exact float
  round-trip (JSON carries the ``repr`` of IEEE doubles); rows carry
  their shape in their keys (``source``/``target`` for OD cells —
  where an unreachable ``inf`` crosses as ``null``, since JSON has no
  infinities — ``bucket`` for service-area hits), so heterogeneous
  batch responses decode without a side channel;
* :class:`WireError` — every malformed payload raises this one typed
  error, which the HTTP tier maps to a 400.

The serving tests pair :func:`wire_types` with the dispatch registry's
``supported_queries`` to prove no query class can be registered for
execution without also being reachable over the wire.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, List, Mapping, Sequence, Tuple, Type

from repro.queries.types import (
    AggregateKNNQuery,
    KNNQuery,
    ODMatrixEntry,
    ODMatrixQuery,
    Predicate,
    RangeQuery,
    ResultEntry,
    ResultRow,
    RouteKNNQuery,
    ServiceAreaEntry,
    ServiceAreaQuery,
)

__all__ = [
    "WireError",
    "decode_query",
    "decode_result",
    "encode_query",
    "encode_result",
    "register_wire",
    "wire_kinds",
    "wire_types",
]


class WireError(ValueError):
    """A malformed wire payload (the HTTP tier answers 400)."""


#: One codec half each way: object -> JSON-safe body, body -> object.
Encoder = Callable[[Any], Dict[str, Any]]
Decoder = Callable[[Mapping[str, Any]], object]

#: kind tag -> (query class, decoder); query class -> (kind tag, encoder).
_DECODERS: Dict[str, Tuple[Type, Decoder]] = {}
_ENCODERS: Dict[Type, Tuple[str, Encoder]] = {}


def register_wire(
    query_type: Type,
    kind: str,
    *,
    encode: Encoder,
    decode: Decoder,
) -> None:
    """Register the JSON codec for one query class.

    Mirrors ``@register_handler``: a double registration (either of the
    class or of the ``kind`` tag) raises — two codecs fighting over one
    wire tag is always a bug.
    """
    if kind in _DECODERS:
        raise ValueError(f"wire kind {kind!r} already registered")
    if query_type in _ENCODERS:
        raise ValueError(f"wire codec for {query_type.__name__} already registered")
    _DECODERS[kind] = (query_type, decode)
    _ENCODERS[query_type] = (kind, encode)


def wire_kinds() -> Tuple[str, ...]:
    """Every registered wire tag, sorted."""
    return tuple(sorted(_DECODERS))


def wire_types() -> Tuple[Type, ...]:
    """Every query class with a codec (for registry-parity tests)."""
    return tuple(sorted(_ENCODERS, key=lambda qt: qt.__name__))


def encode_query(query: object) -> Dict[str, Any]:
    """One query object as its JSON-safe wire payload."""
    entry = _ENCODERS.get(type(query))
    if entry is None:
        raise WireError(
            f"no wire codec for query type {type(query).__name__} "
            f"(registered: {', '.join(wire_kinds()) or 'none'})"
        )
    kind, encode = entry
    payload = encode(query)
    payload["type"] = kind
    return payload


def decode_query(payload: object) -> object:
    """One wire payload back into its query object."""
    body = _require_mapping(payload, "query")
    kind = body.get("type")
    if not isinstance(kind, str):
        raise WireError("query payload needs a string 'type' tag")
    entry = _DECODERS.get(kind)
    if entry is None:
        raise WireError(
            f"unknown query type {kind!r} "
            f"(registered: {', '.join(wire_kinds()) or 'none'})"
        )
    _query_type, decode = entry
    try:
        return decode(body)
    except WireError:
        raise
    except (TypeError, ValueError) as exc:
        # Dataclass validation (k < 1, bad aggregate name, ...) speaks
        # ValueError; on the wire every rejection is one typed error.
        raise WireError(f"invalid {kind} query: {exc}") from exc


def _encode_row(entry: ResultRow) -> Dict[str, Any]:
    if isinstance(entry, ODMatrixEntry):
        # JSON has no infinities: an unreachable cell crosses as null.
        return {
            "source": entry.source,
            "target": entry.target,
            "distance": None if math.isinf(entry.distance) else entry.distance,
        }
    if isinstance(entry, ServiceAreaEntry):
        return {
            "object_id": entry.object_id,
            "distance": entry.distance,
            "bucket": entry.bucket,
        }
    return {"object_id": entry.object_id, "distance": entry.distance}


def encode_result(entries: Sequence[ResultRow]) -> List[Dict[str, Any]]:
    """One result list as its JSON-safe wire form."""
    return [_encode_row(entry) for entry in entries]


def _decode_row(body: Mapping[str, Any]) -> ResultRow:
    # A row's keys carry its shape: OD cells name source/target,
    # service-area hits add a bucket, plain entries carry neither.
    if "source" in body:
        raw = body.get("distance")
        distance = float("inf") if raw is None else _require_number(body, "distance")
        return ODMatrixEntry(
            source=_require_int(body, "source"),
            target=_require_int(body, "target"),
            distance=distance,
        )
    if "bucket" in body:
        return ServiceAreaEntry(
            object_id=_require_int(body, "object_id"),
            distance=_require_number(body, "distance"),
            bucket=_require_int(body, "bucket"),
        )
    return ResultEntry(
        object_id=_require_int(body, "object_id"),
        distance=_require_number(body, "distance"),
    )


def decode_result(payload: object) -> List[ResultRow]:
    """One wire result list back into its result-row objects."""
    if not isinstance(payload, Sequence) or isinstance(payload, (str, bytes)):
        raise WireError("result payload must be a list of entries")
    return [_decode_row(_require_mapping(item, "result entry")) for item in payload]


# ---------------------------------------------------------------------------
# Field helpers (shared by the codecs below and the maintenance endpoint)
# ---------------------------------------------------------------------------
def _require_mapping(value: object, what: str) -> Mapping[str, Any]:
    if not isinstance(value, Mapping):
        raise WireError(f"{what} must be a JSON object, got {type(value).__name__}")
    return value


def _require_int(body: Mapping[str, Any], field: str) -> int:
    value = body.get(field)
    # bool is an int subclass; "node": true is a malformed payload.
    if not isinstance(value, int) or isinstance(value, bool):
        raise WireError(f"field {field!r} must be an integer, got {value!r}")
    return value


def _require_number(body: Mapping[str, Any], field: str) -> float:
    value = body.get(field)
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise WireError(f"field {field!r} must be a number, got {value!r}")
    return float(value)


def _require_str(body: Mapping[str, Any], field: str) -> str:
    value = body.get(field)
    if not isinstance(value, str):
        raise WireError(f"field {field!r} must be a string, got {value!r}")
    return value


def _require_node_list(body: Mapping[str, Any], field: str) -> Tuple[int, ...]:
    raw = body.get(field)
    if not isinstance(raw, Sequence) or isinstance(raw, (str, bytes)):
        raise WireError(f"field {field!r} must be a list of node ids, got {raw!r}")
    nodes: List[int] = []
    for node in raw:
        if not isinstance(node, int) or isinstance(node, bool):
            raise WireError(f"field {field!r} must hold integers, got {node!r}")
        nodes.append(node)
    return tuple(nodes)


def _require_number_list(body: Mapping[str, Any], field: str) -> Tuple[float, ...]:
    raw = body.get(field)
    if not isinstance(raw, Sequence) or isinstance(raw, (str, bytes)):
        raise WireError(f"field {field!r} must be a list of numbers, got {raw!r}")
    values: List[float] = []
    for value in raw:
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise WireError(f"field {field!r} must hold numbers, got {value!r}")
        values.append(float(value))
    return tuple(values)


def _decode_predicate(body: Mapping[str, Any]) -> Predicate:
    raw = body.get("predicate")
    if raw is None:
        return Predicate()
    mapping = _require_mapping(raw, "predicate")
    for key, value in mapping.items():
        if not isinstance(key, str) or not isinstance(value, str):
            raise WireError(
                f"predicate entries must map strings to strings, got "
                f"{key!r}: {value!r}"
            )
    return Predicate.from_mapping(mapping)


def _encode_predicate(predicate: Predicate, payload: Dict[str, Any]) -> None:
    if not predicate.is_unconstrained:
        payload["predicate"] = predicate.as_dict()


# ---------------------------------------------------------------------------
# The built-in codecs, one per registered query class
# ---------------------------------------------------------------------------
def _encode_knn(query: KNNQuery) -> Dict[str, Any]:
    payload: Dict[str, Any] = {"node": query.node, "k": query.k}
    _encode_predicate(query.predicate, payload)
    return payload


def _decode_knn(body: Mapping[str, Any]) -> KNNQuery:
    return KNNQuery(
        node=_require_int(body, "node"),
        k=_require_int(body, "k"),
        predicate=_decode_predicate(body),
    )


def _encode_range(query: RangeQuery) -> Dict[str, Any]:
    payload: Dict[str, Any] = {"node": query.node, "radius": query.radius}
    _encode_predicate(query.predicate, payload)
    return payload


def _decode_range(body: Mapping[str, Any]) -> RangeQuery:
    return RangeQuery(
        node=_require_int(body, "node"),
        radius=_require_number(body, "radius"),
        predicate=_decode_predicate(body),
    )


def _encode_aggregate(query: AggregateKNNQuery) -> Dict[str, Any]:
    payload: Dict[str, Any] = {
        "nodes": list(query.nodes),
        "k": query.k,
        "agg": query.agg,
    }
    _encode_predicate(query.predicate, payload)
    return payload


def _decode_aggregate(body: Mapping[str, Any]) -> AggregateKNNQuery:
    agg = body.get("agg", "sum")
    if not isinstance(agg, str):
        raise WireError(f"field 'agg' must be a string, got {agg!r}")
    return AggregateKNNQuery(
        nodes=_require_node_list(body, "nodes"),
        k=_require_int(body, "k"),
        agg=agg,
        predicate=_decode_predicate(body),
    )


def _encode_od_matrix(query: ODMatrixQuery) -> Dict[str, Any]:
    return {"sources": list(query.sources), "targets": list(query.targets)}


def _decode_od_matrix(body: Mapping[str, Any]) -> ODMatrixQuery:
    return ODMatrixQuery(
        sources=_require_node_list(body, "sources"),
        targets=_require_node_list(body, "targets"),
    )


def _encode_service_area(query: ServiceAreaQuery) -> Dict[str, Any]:
    payload: Dict[str, Any] = {"node": query.node, "breaks": list(query.breaks)}
    _encode_predicate(query.predicate, payload)
    return payload


def _decode_service_area(body: Mapping[str, Any]) -> ServiceAreaQuery:
    return ServiceAreaQuery(
        node=_require_int(body, "node"),
        breaks=_require_number_list(body, "breaks"),
        predicate=_decode_predicate(body),
    )


def _encode_route_knn(query: RouteKNNQuery) -> Dict[str, Any]:
    payload: Dict[str, Any] = {"path": list(query.path), "k": query.k}
    _encode_predicate(query.predicate, payload)
    return payload


def _decode_route_knn(body: Mapping[str, Any]) -> RouteKNNQuery:
    return RouteKNNQuery(
        path=_require_node_list(body, "path"),
        k=_require_int(body, "k"),
        predicate=_decode_predicate(body),
    )


register_wire(KNNQuery, "knn", encode=_encode_knn, decode=_decode_knn)
register_wire(RangeQuery, "range", encode=_encode_range, decode=_decode_range)
register_wire(
    AggregateKNNQuery,
    "aggregate_knn",
    encode=_encode_aggregate,
    decode=_decode_aggregate,
)
register_wire(
    ODMatrixQuery,
    "od_matrix",
    encode=_encode_od_matrix,
    decode=_decode_od_matrix,
)
register_wire(
    ServiceAreaQuery,
    "service_area",
    encode=_encode_service_area,
    decode=_decode_service_area,
)
register_wire(
    RouteKNNQuery,
    "route_knn",
    encode=_encode_route_knn,
    decode=_decode_route_knn,
)
