"""``python -m repro.eval`` entry point."""

from repro.eval.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
