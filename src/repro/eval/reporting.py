"""Experiment result containers and paper-style table rendering."""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Union

Cell = Union[str, int, float]


@dataclass
class ExperimentResult:
    """One reproduced table/figure: rows of labelled measurements."""

    experiment_id: str
    title: str
    columns: List[str]
    rows: List[Dict[str, Cell]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, **cells: Cell) -> None:
        """Append one measurement row."""
        self.rows.append(cells)

    def column(self, name: str) -> List[Cell]:
        """All values of one column, in row order."""
        return [row.get(name, "") for row in self.rows]

    def note(self, text: str) -> None:
        """Attach a free-form observation (printed under the table)."""
        self.notes.append(text)

    def render(self) -> str:
        """Monospace table in the style of the paper's figures."""
        header = [self.columns]
        body = [
            [_format(row.get(col, "")) for col in self.columns]
            for row in self.rows
        ]
        widths = [
            max(len(str(line[i])) for line in header + body)
            for i in range(len(self.columns))
        ]
        parts = [f"== {self.experiment_id}: {self.title} =="]
        parts.append(
            "  ".join(str(c).ljust(w) for c, w in zip(self.columns, widths))
        )
        parts.append("  ".join("-" * w for w in widths))
        for line in body:
            parts.append("  ".join(c.ljust(w) for c, w in zip(line, widths)))
        for note in self.notes:
            parts.append(f"note: {note}")
        return "\n".join(parts)

    def save(self, directory: Union[str, Path]) -> Path:
        """Write the rendered table under ``directory``; return the path."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"{self.experiment_id}.txt"
        path.write_text(self.render() + "\n")
        return path

    def to_dict(self) -> Dict[str, Any]:
        """Machine-readable form (the ``BENCH_*.json`` artifact payload)."""
        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "columns": list(self.columns),
            "rows": [dict(row) for row in self.rows],
            "notes": list(self.notes),
        }

    def save_json(self, directory: Union[str, Path]) -> Path:
        """Write ``BENCH_<id>.json`` under ``directory``; return the path.

        CI uploads these as artifacts so the perf trajectory of every
        tracked benchmark accumulates run over run.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        payload = self.to_dict()
        payload["generated_at"] = time.strftime(
            "%Y-%m-%dT%H:%M:%SZ", time.gmtime()
        )
        path = directory / f"BENCH_{self.experiment_id}.json"
        path.write_text(json.dumps(payload, indent=2, default=str) + "\n")
        return path


def format_bytes(num_bytes: float) -> str:
    """Human-readable byte count (B / KiB / MiB, one decimal)."""
    value = float(num_bytes)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if abs(value) < 1024.0 or unit == "GiB":
            if unit == "B":
                return f"{value:.0f} {unit}"
            return f"{value:.1f} {unit}"
        value /= 1024.0
    raise AssertionError("unreachable")


def memory_note(stats: Dict[str, Any]) -> str:
    """One-line resident-memory summary of ``FrozenRoad.memory_stats()``.

    The standard way benches and reports cite a snapshot's footprint, so
    every artifact phrases backend memory the same way.
    """
    return (
        f"backend={stats['backend']}: "
        f"{format_bytes(stats['total_bytes'])} resident compiled arrays "
        f"({format_bytes(stats['payload_bytes'])} payload across "
        f"{stats['elements']:,} elements)"
    )


def _format(value: Cell) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def dominance(result: ExperimentResult, metric: str, by: str = "engine") -> str:
    """Which label has the smallest mean ``metric`` (winner summary)."""
    totals: Dict[str, List[float]] = {}
    for row in result.rows:
        label = str(row.get(by, "?"))
        value = row.get(metric)
        if isinstance(value, (int, float)):
            totals.setdefault(label, []).append(float(value))
    if not totals:
        return "n/a"
    means = {label: sum(vs) / len(vs) for label, vs in totals.items()}
    return min(means, key=means.__getitem__)
