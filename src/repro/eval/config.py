"""Evaluation parameters (Table 1) and scaling profiles.

The paper's Table 1:

    Network            CA (21,048 nodes / 21,693 edges) [default]
                       NA (175,813 / 179,179), SF (174,956 / 223,001)
    No. of objects     10, 50, 100*, 500, 1000
    Partition factor   p = 4
    No. of levels      l = 2..6 for CA (default 4), 6..10 for NA/SF (def. 8)
    Query              kNN* and range
    k                  1, 5*, 10
    Search range r     0.05, 0.1*, 0.2 of network diameter

Full-size networks are hours of pure-Python work, so the default profile is
a scaled replica (~1:10); set ``REPRO_SCALE=paper`` to run paper-sized
networks.  All relative comparisons (who wins, growth shapes) are preserved
— see DESIGN.md §3.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Tuple

#: Table 1 object cardinalities.
OBJECT_COUNTS: Tuple[int, ...] = (10, 50, 100, 500, 1000)
DEFAULT_OBJECTS = 100

#: Table 1 query parameters.
K_VALUES: Tuple[int, ...] = (1, 5, 10)
DEFAULT_K = 5
RANGE_FRACTIONS: Tuple[float, ...] = (0.05, 0.1, 0.2)
DEFAULT_RANGE_FRACTION = 0.1

#: Partition factor p (Table 1).
PARTITION_FANOUT = 4

#: Queries averaged per configuration (paper: 100).
PAPER_QUERIES_PER_RUN = 100


@dataclass(frozen=True)
class NetworkProfile:
    """Size and hierarchy parameters for one evaluation network.

    ``buffer_pages`` keeps the paper's buffer:data ratio at every scale:
    the full-size networks use the paper's 50-page LRU cache; the mini
    replicas shrink the buffer proportionally so queries still exercise
    real page replacement instead of running fully cached.
    """

    name: str
    num_nodes: int
    edge_ratio: float
    clusters: int
    seed: int
    default_levels: int
    level_sweep: Tuple[int, ...]
    buffer_pages: int = 50


#: The paper's full-size profiles.
PAPER_PROFILES: Dict[str, NetworkProfile] = {
    "CA": NetworkProfile("CA", 21048, 1.031, 0, 7, 4, (2, 3, 4, 5, 6), 50),
    "NA": NetworkProfile("NA", 175813, 1.019, 12, 11, 8, (6, 7, 8, 9, 10), 50),
    "SF": NetworkProfile("SF", 174956, 1.275, 0, 13, 8, (6, 7, 8, 9, 10), 50),
}

#: ~1:10 replicas: trends survive, pure-Python runtimes stay in minutes.
MINI_PROFILES: Dict[str, NetworkProfile] = {
    "CA": NetworkProfile("CA", 2100, 1.031, 0, 7, 4, (2, 3, 4, 5, 6), 6),
    "NA": NetworkProfile("NA", 4000, 1.019, 12, 11, 5, (3, 4, 5, 6, 7), 8),
    "SF": NetworkProfile("SF", 4000, 1.275, 0, 13, 5, (3, 4, 5, 6, 7), 8),
}


def scale_profile() -> str:
    """Active scale: ``mini`` (default) or ``paper`` via REPRO_SCALE."""
    scale = os.environ.get("REPRO_SCALE", "mini").lower()
    if scale not in ("mini", "paper"):
        raise ValueError(f"REPRO_SCALE must be 'mini' or 'paper', got {scale!r}")
    return scale


def profiles() -> Dict[str, NetworkProfile]:
    """Network profiles for the active scale."""
    return PAPER_PROFILES if scale_profile() == "paper" else MINI_PROFILES


def profile(name: str) -> NetworkProfile:
    """One network's profile for the active scale."""
    try:
        return profiles()[name]
    except KeyError:
        raise KeyError(f"unknown network {name!r}; choose from CA, NA, SF") from None


def queries_per_run() -> int:
    """Queries averaged per configuration (REPRO_QUERIES overrides)."""
    override = os.environ.get("REPRO_QUERIES")
    if override:
        return max(1, int(override))
    return PAPER_QUERIES_PER_RUN if scale_profile() == "paper" else 20


def table1_rows() -> list:
    """The rows of Table 1, for the parameter-sheet bench."""
    rows = []
    for name, prof in PAPER_PROFILES.items():
        rows.append(
            {
                "parameter": f"Network {name}",
                "values": f"{prof.num_nodes:,} nodes, "
                f"{int(prof.num_nodes * prof.edge_ratio):,} edges",
            }
        )
    rows.extend(
        [
            {"parameter": "No. of objects |O|", "values": "10, 50, 100*, 500, 1000"},
            {"parameter": "Partition factor p", "values": "4*"},
            {
                "parameter": "No. of levels l",
                "values": "2-6 for CA (4*), 6-10 for NA and SF (8*)",
            },
            {"parameter": "Query", "values": "kNN query* and range query"},
            {"parameter": "No. of NNs k", "values": "1, 5*, 10"},
            {
                "parameter": "Search range r",
                "values": "0.05, 0.1*, 0.2 of network diameter",
            },
        ]
    )
    return rows
