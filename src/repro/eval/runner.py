"""Engine construction helpers for the evaluation.

Engines are built through the serving stack: one
:class:`~repro.serving.ServiceConfig` (seeded from the ``REPRO_*``
environment overrides) selects the ROAD serving mode, maintenance
lifecycle and array backend, and :meth:`RoadService.build` constructs
the engine behind a service facade.  ``build_engine`` unwraps the bare
engine for the figure harness; ``build_service`` hands back the whole
facade (async front-end included) for serving-shaped callers.
"""

from __future__ import annotations

import warnings
from typing import Dict, Optional, Sequence

from repro.baselines import SearchEngine
from repro.eval.datasets import Dataset, dataset_levels
from repro.graph.network import RoadNetwork
from repro.objects.model import ObjectSet
from repro.objects.placement import place_uniform
from repro.serving import RoadService, ServiceConfig
from repro.storage.pager import PageManager

#: Engine labels in the order the figures list them.
ENGINE_ORDER = ("NetExp", "Euclidean", "DistIdx", "ROAD")


def road_mode() -> str:
    """Deprecated: read ``ServiceConfig.from_env().mode`` instead."""
    warnings.warn(
        "road-repro deprecated: road_mode() — use "
        "repro.serving.ServiceConfig.from_env().mode",
        DeprecationWarning,
        stacklevel=2,
    )
    return ServiceConfig.from_env().mode


def road_backend() -> Optional[str]:
    """Deprecated: read ``ServiceConfig.from_env().backend`` instead."""
    warnings.warn(
        "road-repro deprecated: road_backend() — use "
        "repro.serving.ServiceConfig.from_env().backend",
        DeprecationWarning,
        stacklevel=2,
    )
    return ServiceConfig.from_env().backend


def road_maintenance() -> str:
    """Deprecated: read ``ServiceConfig.from_env().maintenance`` instead."""
    warnings.warn(
        "road-repro deprecated: road_maintenance() — use "
        "repro.serving.ServiceConfig.from_env().maintenance",
        DeprecationWarning,
        stacklevel=2,
    )
    return ServiceConfig.from_env().maintenance


def make_objects(
    network: RoadNetwork, count: int, *, seed: int = 0
) -> ObjectSet:
    """The evaluation's object workload: uniform over the network."""
    return place_uniform(network, count, seed=seed)


def _buffer_for(network: RoadNetwork, buffer_pages: Optional[int]) -> int:
    """Buffer size preserving the paper's buffer:data ratio (see config)."""
    if buffer_pages is not None:
        return buffer_pages
    from repro.eval.config import profiles

    for prof in profiles().values():
        if abs(prof.num_nodes - network.num_nodes) <= prof.num_nodes * 0.2:
            return prof.buffer_pages
    return 50


def build_service(
    name: str,
    network: RoadNetwork,
    objects: ObjectSet,
    *,
    road_levels: Optional[int] = None,
    road_fanout: int = 4,
    buffer_pages: Optional[int] = None,
    road_mode_override: Optional[str] = None,
    road_backend_override: Optional[str] = None,
    road_directories_override: Optional[Sequence[str]] = None,
) -> RoadService:
    """A :class:`RoadService` over one engine and a private network copy.

    The config comes from :meth:`ServiceConfig.from_env` — the
    ``--engine`` / ``--maintenance`` / ``--backend`` / ``--directories``
    CLI switches and ``REPRO_*`` variables act as overrides — with the
    explicit ``road_*_override`` arguments beating both.
    """
    from repro.serving.service import ENGINE_NAMES

    if name not in ENGINE_NAMES:
        raise KeyError(f"unknown engine {name!r}")
    # The figure harness drives engines directly and never touches the
    # async front-end, so replica sharding is forced off here: a stray
    # REPRO_REPLICAS would otherwise crash baseline builds (replicas need
    # a ROAD) and silently freeze unused snapshots for ROAD ones.
    # Serving callers wanting shards pass ServiceConfig(replicas=N) to
    # RoadService.build themselves.
    overrides: Dict[str, object] = {"engine": name, "replicas": 0}
    if name == "ROAD":
        overrides.update(
            levels=road_levels if road_levels is not None else 4,
            fanout=road_fanout,
        )
    if road_mode_override:
        overrides["mode"] = road_mode_override
    if road_backend_override:
        overrides["backend"] = road_backend_override
    if road_directories_override:
        overrides["directories"] = tuple(road_directories_override)
    config = ServiceConfig.from_env(**overrides)
    private = network.copy()
    pager = PageManager(
        buffer_pages=_buffer_for(network, buffer_pages), name=name
    )
    return RoadService.build(private, objects, config=config, pager=pager)


def build_engine(
    name: str,
    network: RoadNetwork,
    objects: ObjectSet,
    *,
    road_levels: Optional[int] = None,
    road_fanout: int = 4,
    buffer_pages: Optional[int] = None,
    road_mode_override: Optional[str] = None,
    road_backend_override: Optional[str] = None,
    road_directories_override: Optional[Sequence[str]] = None,
) -> SearchEngine:
    """One bare engine over a private copy of the network (no cross-talk).

    The figure harness drives engines directly (cold-cache I/O
    accounting); serving-shaped callers should take
    :func:`build_service`'s facade instead.
    """
    return build_service(
        name,
        network,
        objects,
        road_levels=road_levels,
        road_fanout=road_fanout,
        buffer_pages=buffer_pages,
        road_mode_override=road_mode_override,
        road_backend_override=road_backend_override,
        road_directories_override=road_directories_override,
    ).executor


def build_engines(
    dataset: Dataset,
    objects: ObjectSet,
    *,
    engines: Sequence[str] = ENGINE_ORDER,
    road_levels: Optional[int] = None,
) -> Dict[str, SearchEngine]:
    """All requested engines over one dataset + object set."""
    from repro.eval.config import profile

    levels = road_levels if road_levels is not None else dataset_levels(dataset.name)
    buffer_pages = profile(dataset.name).buffer_pages
    return {
        name: build_engine(
            name,
            dataset.network,
            objects,
            road_levels=levels,
            buffer_pages=buffer_pages,
        )
        for name in engines
    }
