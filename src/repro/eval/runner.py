"""Engine construction helpers for the evaluation."""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence, Tuple

from repro.baselines import (
    DistanceIndexEngine,
    EuclideanEngine,
    NetworkExpansionEngine,
    ROADEngine,
    SearchEngine,
)
from repro.eval.datasets import Dataset, dataset_levels
from repro.graph.network import RoadNetwork
from repro.objects.model import ObjectSet
from repro.objects.placement import place_uniform
from repro.storage.pager import PageManager

#: Engine labels in the order the figures list them.
ENGINE_ORDER = ("NetExp", "Euclidean", "DistIdx", "ROAD")


def make_objects(
    network: RoadNetwork, count: int, *, seed: int = 0
) -> ObjectSet:
    """The evaluation's object workload: uniform over the network."""
    return place_uniform(network, count, seed=seed)


def _buffer_for(network: RoadNetwork, buffer_pages: Optional[int]) -> int:
    """Buffer size preserving the paper's buffer:data ratio (see config)."""
    if buffer_pages is not None:
        return buffer_pages
    from repro.eval.config import profiles

    for prof in profiles().values():
        if abs(prof.num_nodes - network.num_nodes) <= prof.num_nodes * 0.2:
            return prof.buffer_pages
    return 50


def build_engine(
    name: str,
    network: RoadNetwork,
    objects: ObjectSet,
    *,
    road_levels: Optional[int] = None,
    road_fanout: int = 4,
    buffer_pages: Optional[int] = None,
) -> SearchEngine:
    """One engine over a private copy of the network (no cross-talk)."""
    private = network.copy()
    pager = PageManager(
        buffer_pages=_buffer_for(network, buffer_pages), name=name
    )
    if name == "NetExp":
        return NetworkExpansionEngine(private, objects, pager)
    if name == "Euclidean":
        return EuclideanEngine(private, objects, pager)
    if name == "DistIdx":
        return DistanceIndexEngine(private, objects, pager)
    if name == "ROAD":
        return ROADEngine(
            private,
            objects,
            pager,
            levels=road_levels if road_levels is not None else 4,
            fanout=road_fanout,
        )
    raise KeyError(f"unknown engine {name!r}")


def build_engines(
    dataset: Dataset,
    objects: ObjectSet,
    *,
    engines: Sequence[str] = ENGINE_ORDER,
    road_levels: Optional[int] = None,
) -> Dict[str, SearchEngine]:
    """All requested engines over one dataset + object set."""
    from repro.eval.config import profile

    levels = road_levels if road_levels is not None else dataset_levels(dataset.name)
    buffer_pages = profile(dataset.name).buffer_pages
    return {
        name: build_engine(
            name,
            dataset.network,
            objects,
            road_levels=levels,
            buffer_pages=buffer_pages,
        )
        for name in engines
    }
