"""Engine construction helpers for the evaluation."""

from __future__ import annotations

import os
from typing import Dict, Optional, Sequence

from repro.baselines import (
    DistanceIndexEngine,
    EuclideanEngine,
    NetworkExpansionEngine,
    ROAD_MAINTENANCE_MODES,
    ROAD_MODES,
    ROADEngine,
    SearchEngine,
)
from repro.core.frozen_backends import BACKEND_ENV, validate_backend_name
from repro.eval.datasets import Dataset, dataset_levels
from repro.graph.network import RoadNetwork
from repro.objects.model import ObjectSet
from repro.objects.placement import place_uniform
from repro.storage.pager import PageManager

#: Engine labels in the order the figures list them.
ENGINE_ORDER = ("NetExp", "Euclidean", "DistIdx", "ROAD")


def road_mode() -> str:
    """The ROAD serving mode: ``charged`` (paper I/O model, default) or
    ``frozen`` (compiled in-memory fast path); REPRO_ENGINE overrides."""
    mode = os.environ.get("REPRO_ENGINE", "charged").lower()
    if mode not in ROAD_MODES:
        raise ValueError(
            f"REPRO_ENGINE must be one of {ROAD_MODES}, got {mode!r}"
        )
    return mode


def road_backend() -> Optional[str]:
    """The FrozenRoad array backend: ``list`` (pre-boxed, default),
    ``compact`` (stdlib typed buffers) or ``numpy`` (vectorised);
    REPRO_BACKEND / the ``--backend`` switch overrides.  Returns None
    when unset so engines defer to the library default."""
    name = os.environ.get(BACKEND_ENV)
    if name is None:
        return None
    return validate_backend_name(name, source=BACKEND_ENV)


def road_maintenance() -> str:
    """The frozen-snapshot maintenance lifecycle: ``patch`` (delta-apply
    MaintenanceReports, default) or ``refreeze`` (invalidate + lazy full
    re-freeze); REPRO_MAINTENANCE overrides."""
    mode = os.environ.get("REPRO_MAINTENANCE", "patch").lower()
    if mode not in ROAD_MAINTENANCE_MODES:
        raise ValueError(
            f"REPRO_MAINTENANCE must be one of {ROAD_MAINTENANCE_MODES}, "
            f"got {mode!r}"
        )
    return mode


def make_objects(
    network: RoadNetwork, count: int, *, seed: int = 0
) -> ObjectSet:
    """The evaluation's object workload: uniform over the network."""
    return place_uniform(network, count, seed=seed)


def _buffer_for(network: RoadNetwork, buffer_pages: Optional[int]) -> int:
    """Buffer size preserving the paper's buffer:data ratio (see config)."""
    if buffer_pages is not None:
        return buffer_pages
    from repro.eval.config import profiles

    for prof in profiles().values():
        if abs(prof.num_nodes - network.num_nodes) <= prof.num_nodes * 0.2:
            return prof.buffer_pages
    return 50


def build_engine(
    name: str,
    network: RoadNetwork,
    objects: ObjectSet,
    *,
    road_levels: Optional[int] = None,
    road_fanout: int = 4,
    buffer_pages: Optional[int] = None,
    road_mode_override: Optional[str] = None,
    road_backend_override: Optional[str] = None,
) -> SearchEngine:
    """One engine over a private copy of the network (no cross-talk).

    ``road_mode_override`` forces the ROAD serving mode for this engine;
    by default :func:`road_mode` (the ``--engine`` switch / REPRO_ENGINE)
    decides between the charged disk path and the frozen fast path.
    ``road_backend_override`` likewise forces the frozen array backend
    over :func:`road_backend` (``--backend`` / REPRO_BACKEND).
    """
    private = network.copy()
    pager = PageManager(
        buffer_pages=_buffer_for(network, buffer_pages), name=name
    )
    if name == "NetExp":
        return NetworkExpansionEngine(private, objects, pager)
    if name == "Euclidean":
        return EuclideanEngine(private, objects, pager)
    if name == "DistIdx":
        return DistanceIndexEngine(private, objects, pager)
    if name == "ROAD":
        return ROADEngine(
            private,
            objects,
            pager,
            levels=road_levels if road_levels is not None else 4,
            fanout=road_fanout,
            mode=road_mode_override if road_mode_override else road_mode(),
            maintenance_mode=road_maintenance(),
            backend=(
                road_backend_override
                if road_backend_override
                else road_backend()
            ),
        )
    raise KeyError(f"unknown engine {name!r}")


def build_engines(
    dataset: Dataset,
    objects: ObjectSet,
    *,
    engines: Sequence[str] = ENGINE_ORDER,
    road_levels: Optional[int] = None,
) -> Dict[str, SearchEngine]:
    """All requested engines over one dataset + object set."""
    from repro.eval.config import profile

    levels = road_levels if road_levels is not None else dataset_levels(dataset.name)
    buffer_pages = profile(dataset.name).buffer_pages
    return {
        name: build_engine(
            name,
            dataset.network,
            objects,
            road_levels=levels,
            buffer_pages=buffer_pages,
        )
        for name in engines
    }
