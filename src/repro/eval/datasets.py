"""Evaluation dataset registry.

Provides the CA / NA / SF replicas at the active scale, memoised per
process, with their estimated diameters (range radii are fractions of the
diameter, Table 1).  If the real Li-format files are available, point
``REPRO_DATA_DIR`` at a directory containing ``{CA,NA,SF}.cnode`` /
``.cedge`` and they will be used instead of the synthetic replicas.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from functools import lru_cache
from pathlib import Path
from typing import Optional

from repro.eval.config import profile
from repro.graph.generators import road_network
from repro.graph.io import load_network
from repro.graph.network import RoadNetwork
from repro.graph.shortest_path import estimate_diameter


@dataclass(frozen=True)
class Dataset:
    """A named evaluation network with its cached diameter."""

    name: str
    network: RoadNetwork
    diameter: float

    def radius(self, fraction: float) -> float:
        """A range-query radius as a fraction of the network diameter."""
        return self.diameter * fraction


@lru_cache(maxsize=8)
def load_dataset(name: str, num_nodes: Optional[int] = None) -> Dataset:
    """Load (or synthesise) one evaluation network.

    ``num_nodes`` overrides the profile size (used by heavyweight sweeps
    that need smaller replicas, documented per bench).
    """
    prof = profile(name)
    real = _real_files(name)
    if real is not None and num_nodes is None:
        network = load_network(*real)
    else:
        network = road_network(
            num_nodes if num_nodes is not None else prof.num_nodes,
            prof.edge_ratio,
            seed=prof.seed,
            clusters=prof.clusters,
        )
    return Dataset(name, network, estimate_diameter(network))


def dataset_levels(name: str) -> int:
    """The default Rnet hierarchy depth for a network (Table 1)."""
    return profile(name).default_levels


def _real_files(name: str):
    data_dir = os.environ.get("REPRO_DATA_DIR")
    if not data_dir:
        return None
    node_file = Path(data_dir) / f"{name}.cnode"
    edge_file = Path(data_dir) / f"{name}.cedge"
    if node_file.exists() and edge_file.exists():
        return node_file, edge_file
    return None
