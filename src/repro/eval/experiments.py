"""Per-figure experiment definitions (Section 6).

One function per table/figure of the evaluation; each builds the relevant
engines, runs the paper's workload shape, and returns an
:class:`~repro.eval.reporting.ExperimentResult` whose rows mirror the
figure's series.  The benchmark harness in ``benchmarks/`` drives these and
persists the rendered tables; EXPERIMENTS.md records paper-vs-measured.

All functions take explicit size knobs so the default run finishes in
minutes on the mini-scale datasets while ``REPRO_SCALE=paper`` reproduces
the full-size setting.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - annotations only
    import numpy as np

from repro.eval.config import (
    DEFAULT_K,
    DEFAULT_OBJECTS,
    DEFAULT_RANGE_FRACTION,
    K_VALUES,
    OBJECT_COUNTS,
    RANGE_FRACTIONS,
    queries_per_run,
    table1_rows,
)
from repro.eval.datasets import dataset_levels, load_dataset
from repro.eval.metrics import measure_query, run_workload, time_call
from repro.eval.reporting import ExperimentResult
from repro.eval.runner import ENGINE_ORDER, build_engine, build_engines, make_objects
from repro.objects.model import SpatialObject
from repro.queries.types import KNNQuery
from repro.queries.workload import knn_workload, range_workload


def _rng(seed: int) -> "np.random.RandomState":
    from repro._optional import require_numpy

    return require_numpy("the paper experiments").random.RandomState(seed)

MB = 1024 * 1024


def table1_parameters() -> ExperimentResult:
    """Table 1: the evaluation parameter sheet."""
    result = ExperimentResult(
        "table1", "Evaluation parameters (paper values; * = default)",
        ["parameter", "values"],
    )
    for row in table1_rows():
        result.add_row(**row)
    return result


def fig11_illustration(
    *, network: str = "CA", num_objects: int = 5, k: int = 3, seed: int = 0
) -> ExperimentResult:
    """Figure 11: anatomy of one 3NN query — time and I/O per approach."""
    dataset = load_dataset(network)
    objects = make_objects(dataset.network, num_objects, seed=seed)
    engines = build_engines(dataset, objects)
    rng = _rng(seed)
    nodes = sorted(dataset.network.node_ids())
    query = KNNQuery(nodes[rng.randint(len(nodes))], k)

    result = ExperimentResult(
        "fig11",
        f"{k}NN query anatomy on {network} (|O|={num_objects})",
        ["engine", "time_ms", "io_pages", "answers"],
    )
    reference = None
    for name in ENGINE_ORDER:
        m = measure_query(engines[name], query)
        result.add_row(
            engine=name, time_ms=m.elapsed_ms, io_pages=m.io_reads,
            answers=m.result_size,
        )
        answer = [e.object_id for e in engines[name].execute(query)]
        if reference is None:
            reference = answer
        elif answer != reference:
            result.note(f"{name} returned a different answer set: {answer}")
    result.note("paper: ROAD 475ms/230 pages beats NetExp 1203/297, "
                "Euclidean 8422/1729, DistIdx 625/285")
    return result


def fig13_index_vs_objects(
    *,
    network: str = "CA",
    object_counts: Sequence[int] = OBJECT_COUNTS,
    engines: Sequence[str] = ENGINE_ORDER,
    seed: int = 0,
) -> ExperimentResult:
    """Figure 13: index construction time and size vs object cardinality."""
    dataset = load_dataset(network)
    result = ExperimentResult(
        "fig13",
        f"Index construction vs |O| on {network}",
        ["engine", "objects", "build_s", "size_mb"],
    )
    for count in object_counts:
        objects = make_objects(dataset.network, count, seed=seed)
        for name in engines:
            engine, _ = time_call(
                build_engine, name, dataset.network, objects,
                road_levels=dataset_levels(network),
            )
            result.add_row(
                engine=name,
                objects=count,
                build_s=engine.build_seconds,
                size_mb=engine.index_size_bytes / MB,
            )
    result.note("paper: NetExp/Euclidean/ROAD flat in |O|; DistIdx grows "
                "drastically (242MB at |O|=1000 on CA)")
    return result


def fig14_index_vs_network(
    *,
    networks: Sequence[str] = ("CA", "NA", "SF"),
    num_objects: int = DEFAULT_OBJECTS,
    engines: Sequence[str] = ENGINE_ORDER,
    seed: int = 0,
) -> ExperimentResult:
    """Figure 14: index construction time and size vs network."""
    result = ExperimentResult(
        "fig14",
        f"Index construction vs network (|O|={num_objects})",
        ["engine", "network", "build_s", "size_mb"],
    )
    for network in networks:
        dataset = load_dataset(network)
        objects = make_objects(dataset.network, num_objects, seed=seed)
        for name in engines:
            engine = build_engine(
                name, dataset.network, objects,
                road_levels=dataset_levels(network),
            )
            result.add_row(
                engine=name,
                network=network,
                build_s=engine.build_seconds,
                size_mb=engine.index_size_bytes / MB,
            )
    result.note("paper: DistIdx >4h / >210MB on NA+SF; ROAD ~25% of its "
                "build time and ~33% of its size on SF")
    return result


def fig15_object_update(
    *,
    networks: Sequence[str] = ("CA", "NA", "SF"),
    num_objects: int = DEFAULT_OBJECTS,
    trials: int = 5,
    engines: Sequence[str] = ENGINE_ORDER,
    seed: int = 0,
) -> ExperimentResult:
    """Figure 15: object deletion/insertion time per network.

    The paper's protocol: delete a randomly picked object, re-add it at a
    random location; average over the trials.
    """
    result = ExperimentResult(
        "fig15",
        f"Object update time (|O|={num_objects}, {trials} trials)",
        ["engine", "network", "delete_s", "insert_s"],
    )
    for network in networks:
        dataset = load_dataset(network)
        objects = make_objects(dataset.network, num_objects, seed=seed)
        built = build_engines(dataset, objects, engines=engines)
        edges = sorted((u, v) for u, v, _ in dataset.network.edges())
        rng = _rng(seed)
        for name in engines:
            engine = built[name]
            delete_times: List[float] = []
            insert_times: List[float] = []
            for _ in range(trials):
                victim = engine.objects.ids()[
                    rng.randint(len(engine.objects.ids()))
                ]
                removed, elapsed = time_call(engine.delete_object, victim)
                delete_times.append(elapsed)
                u, v = edges[rng.randint(len(edges))]
                delta = float(
                    rng.uniform(0.0, dataset.network.edge_distance(u, v))
                )
                replacement = SpatialObject(victim, (u, v), delta, dict(removed.attrs))
                _, elapsed = time_call(engine.insert_object, replacement)
                insert_times.append(elapsed)
            result.add_row(
                engine=name,
                network=network,
                delete_s=sum(delete_times) / trials,
                insert_s=sum(insert_times) / trials,
            )
    result.note("paper: DistIdx orders of magnitude slower (~2 min on "
                "NA/SF); others within 0.1s")
    return result


def fig16_network_update(
    *,
    networks: Sequence[str] = ("CA", "NA", "SF"),
    num_objects: int = DEFAULT_OBJECTS,
    trials: int = 5,
    engines: Sequence[str] = ENGINE_ORDER,
    seed: int = 0,
) -> ExperimentResult:
    """Figure 16: edge deletion/insertion time per network.

    The paper's protocol: "randomly removing one edge by setting its edge
    distance to infinity and adding it back by recovering its original
    distance" — modelled with a huge finite distance so arithmetic stays
    clean.
    """
    huge = 1e12
    result = ExperimentResult(
        "fig16",
        f"Network update time (|O|={num_objects}, {trials} trials)",
        ["engine", "network", "delete_s", "insert_s"],
    )
    for network in networks:
        dataset = load_dataset(network)
        objects = make_objects(dataset.network, num_objects, seed=seed)
        built = build_engines(dataset, objects, engines=engines)
        rng = _rng(seed)
        for name in engines:
            engine = built[name]
            edges = sorted((u, v) for u, v, _ in engine.network.edges())
            delete_times: List[float] = []
            insert_times: List[float] = []
            for _ in range(trials):
                u, v = edges[rng.randint(len(edges))]
                original = engine.network.edge_distance(u, v)
                _, elapsed = time_call(engine.update_edge_distance, u, v, huge)
                delete_times.append(elapsed)
                _, elapsed = time_call(
                    engine.update_edge_distance, u, v, original
                )
                insert_times.append(elapsed)
            result.add_row(
                engine=name,
                network=network,
                delete_s=sum(delete_times) / trials,
                insert_s=sum(insert_times) / trials,
            )
    result.note("paper: DistIdx rewrites signatures network-wide; ROAD "
                "refreshes affected shortcuts only (<2s on NA/SF); "
                "NetExp/Euclidean near-zero")
    return result


def fig17a_knn_vs_k(
    *,
    network: str = "CA",
    num_objects: int = DEFAULT_OBJECTS,
    ks: Sequence[int] = K_VALUES,
    engines: Sequence[str] = ENGINE_ORDER,
    num_queries: Optional[int] = None,
    seed: int = 0,
) -> ExperimentResult:
    """Figure 17(a): kNN processing time vs k."""
    dataset = load_dataset(network)
    objects = make_objects(dataset.network, num_objects, seed=seed)
    built = build_engines(dataset, objects, engines=engines)
    count = num_queries if num_queries is not None else queries_per_run()
    result = ExperimentResult(
        "fig17a",
        f"kNN query vs k on {network} (|O|={num_objects})",
        ["engine", "k", "time_ms", "io_pages"],
    )
    for k in ks:
        queries = knn_workload(dataset.network, count, k, seed=seed + k)
        for name in engines:
            summary = run_workload(built[name], queries)
            result.add_row(
                engine=name, k=k,
                time_ms=summary.mean_ms, io_pages=summary.mean_io,
            )
    result.note("paper: ROAD best for every k; Euclidean worst on CA")
    return result


def fig17b_knn_vs_objects(
    *,
    network: str = "CA",
    object_counts: Sequence[int] = OBJECT_COUNTS,
    k: int = DEFAULT_K,
    engines: Sequence[str] = ENGINE_ORDER,
    num_queries: Optional[int] = None,
    seed: int = 0,
) -> ExperimentResult:
    """Figure 17(b): kNN processing time vs object cardinality."""
    dataset = load_dataset(network)
    count = num_queries if num_queries is not None else queries_per_run()
    result = ExperimentResult(
        "fig17b",
        f"kNN query vs |O| on {network} (k={k})",
        ["engine", "objects", "time_ms", "io_pages"],
    )
    for num_objects in object_counts:
        objects = make_objects(dataset.network, num_objects, seed=seed)
        built = build_engines(dataset, objects, engines=engines)
        queries = knn_workload(dataset.network, count, k, seed=seed)
        for name in engines:
            summary = run_workload(built[name], queries)
            result.add_row(
                engine=name, objects=num_objects,
                time_ms=summary.mean_ms, io_pages=summary.mean_io,
            )
    result.note("paper: NetExp and ROAD improve steadily with |O|; the "
                "ROAD-NetExp gap narrows (ROAD is expansion-based too)")
    return result


def fig17c_knn_vs_network(
    *,
    networks: Sequence[str] = ("CA", "NA", "SF"),
    num_objects: int = DEFAULT_OBJECTS,
    k: int = DEFAULT_K,
    engines: Sequence[str] = ENGINE_ORDER,
    num_queries: Optional[int] = None,
    seed: int = 0,
) -> ExperimentResult:
    """Figure 17(c): kNN processing time vs network."""
    count = num_queries if num_queries is not None else queries_per_run()
    result = ExperimentResult(
        "fig17c",
        f"kNN query vs network (|O|={num_objects}, k={k})",
        ["engine", "network", "time_ms", "io_pages"],
    )
    for network in networks:
        dataset = load_dataset(network)
        objects = make_objects(dataset.network, num_objects, seed=seed)
        built = build_engines(dataset, objects, engines=engines)
        queries = knn_workload(dataset.network, count, k, seed=seed)
        for name in engines:
            summary = run_workload(built[name], queries)
            result.add_row(
                engine=name, network=network,
                time_ms=summary.mean_ms, io_pages=summary.mean_io,
            )
    result.note("paper: ROAD best on every network; Euclidean suffers most "
                "where Euclidean distance approximates network distance "
                "poorly (NA)")
    return result


def fig18a_range_vs_radius(
    *,
    network: str = "CA",
    num_objects: int = DEFAULT_OBJECTS,
    fractions: Sequence[float] = RANGE_FRACTIONS,
    engines: Sequence[str] = ENGINE_ORDER,
    num_queries: Optional[int] = None,
    seed: int = 0,
) -> ExperimentResult:
    """Figure 18(a): range query processing time vs radius."""
    dataset = load_dataset(network)
    objects = make_objects(dataset.network, num_objects, seed=seed)
    built = build_engines(dataset, objects, engines=engines)
    count = num_queries if num_queries is not None else queries_per_run()
    result = ExperimentResult(
        "fig18a",
        f"Range query vs r on {network} (|O|={num_objects})",
        ["engine", "r_fraction", "time_ms", "io_pages"],
    )
    for fraction in fractions:
        radius = dataset.radius(fraction)
        queries = range_workload(dataset.network, count, radius, seed=seed)
        for name in engines:
            summary = run_workload(built[name], queries)
            result.add_row(
                engine=name, r_fraction=fraction,
                time_ms=summary.mean_ms, io_pages=summary.mean_io,
            )
    result.note("paper: all grow with r; ROAD consistently best; DistIdx "
                "degrades at large r (bulky signatures)")
    return result


def fig18b_range_vs_objects(
    *,
    network: str = "CA",
    object_counts: Sequence[int] = OBJECT_COUNTS,
    fraction: float = DEFAULT_RANGE_FRACTION,
    engines: Sequence[str] = ENGINE_ORDER,
    num_queries: Optional[int] = None,
    seed: int = 0,
) -> ExperimentResult:
    """Figure 18(b): range query processing time vs object cardinality."""
    dataset = load_dataset(network)
    radius = dataset.radius(fraction)
    count = num_queries if num_queries is not None else queries_per_run()
    result = ExperimentResult(
        "fig18b",
        f"Range query vs |O| on {network} (r={fraction} diameter)",
        ["engine", "objects", "time_ms", "io_pages"],
    )
    for num_objects in object_counts:
        objects = make_objects(dataset.network, num_objects, seed=seed)
        built = build_engines(dataset, objects, engines=engines)
        queries = range_workload(dataset.network, count, radius, seed=seed)
        for name in engines:
            summary = run_workload(built[name], queries)
            result.add_row(
                engine=name, objects=num_objects,
                time_ms=summary.mean_ms, io_pages=summary.mean_io,
            )
    result.note("paper: NetExp ~flat (fixed range); ROAD approaches NetExp "
                "as |O| grows; Euclidean/DistIdx degrade")
    return result


def fig18c_range_vs_network(
    *,
    networks: Sequence[str] = ("CA", "NA", "SF"),
    num_objects: int = DEFAULT_OBJECTS,
    fraction: float = DEFAULT_RANGE_FRACTION,
    engines: Sequence[str] = ENGINE_ORDER,
    num_queries: Optional[int] = None,
    seed: int = 0,
) -> ExperimentResult:
    """Figure 18(c): range query processing time vs network."""
    count = num_queries if num_queries is not None else queries_per_run()
    result = ExperimentResult(
        "fig18c",
        f"Range query vs network (|O|={num_objects}, r={fraction} diameter)",
        ["engine", "network", "time_ms", "io_pages"],
    )
    for network in networks:
        dataset = load_dataset(network)
        objects = make_objects(dataset.network, num_objects, seed=seed)
        built = build_engines(dataset, objects, engines=engines)
        radius = dataset.radius(fraction)
        queries = range_workload(dataset.network, count, radius, seed=seed)
        for name in engines:
            summary = run_workload(built[name], queries)
            result.add_row(
                engine=name, network=network,
                time_ms=summary.mean_ms, io_pages=summary.mean_io,
            )
    result.note("paper: same ordering as kNN; ROAD best everywhere")
    return result


def fig19_hierarchy_levels(
    *,
    networks: Sequence[str] = ("CA", "NA", "SF"),
    levels: Optional[Dict[str, Sequence[int]]] = None,
    num_objects: int = DEFAULT_OBJECTS,
    k: int = DEFAULT_K,
    num_queries: Optional[int] = None,
    seed: int = 0,
    network_sizes: Optional[Dict[str, int]] = None,
) -> ExperimentResult:
    """Figure 19: impact of hierarchy depth l on build and query time."""
    from repro.eval.config import profile

    count = num_queries if num_queries is not None else queries_per_run()
    result = ExperimentResult(
        "fig19",
        f"Rnet hierarchy level sweep (p=4, |O|={num_objects}, k={k})",
        ["network", "levels", "build_s", "query_ms", "io_pages"],
    )
    for network in networks:
        size = (network_sizes or {}).get(network)
        dataset = load_dataset(network, num_nodes=size)
        objects = make_objects(dataset.network, num_objects, seed=seed)
        sweep = (levels or {}).get(network) or profile(network).level_sweep
        queries = knn_workload(dataset.network, count, k, seed=seed)
        for depth in sweep:
            engine = build_engine(
                "ROAD", dataset.network, objects, road_levels=depth
            )
            summary = run_workload(engine, queries)
            result.add_row(
                network=network, levels=depth,
                build_s=engine.build_seconds,
                query_ms=summary.mean_ms, io_pages=summary.mean_io,
            )
    result.note("paper: index time rises with l, query time drops steeply "
                "then flattens (knee at l=4 for CA, l=8 for NA/SF)")
    return result
