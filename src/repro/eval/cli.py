"""Command-line experiment runner.

Regenerate any of the paper's tables/figures without pytest::

    python -m repro.eval fig17a
    python -m repro.eval fig17a --engine frozen
    python -m repro.eval fig19 --queries 10
    python -m repro.eval all --out results/
    python -m repro.eval list

Serving switches (``--engine`` / ``--maintenance`` / ``--backend``) set
the corresponding ``REPRO_*`` environment overrides, which the engine
builders read through
:meth:`repro.serving.ServiceConfig.from_env` — the typed config is the
primary API; the environment is the CLI's override channel into it.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Callable, Dict

from repro.baselines import ROAD_MAINTENANCE_MODES, ROAD_MODES
from repro.core.frozen_backends import BACKEND_ENV, BACKENDS
from repro.eval import ablations, experiments
from repro.eval.reporting import ExperimentResult
from repro.serving.service import REPLICA_MODE_ENV, REPLICA_MODES

#: Experiment name -> zero-argument callable producing an ExperimentResult.
REGISTRY: Dict[str, Callable[[], ExperimentResult]] = {
    "table1": experiments.table1_parameters,
    "fig11": experiments.fig11_illustration,
    "fig13": experiments.fig13_index_vs_objects,
    "fig14": experiments.fig14_index_vs_network,
    "fig15": experiments.fig15_object_update,
    "fig16": experiments.fig16_network_update,
    "fig17a": experiments.fig17a_knn_vs_k,
    "fig17b": experiments.fig17b_knn_vs_objects,
    "fig17c": experiments.fig17c_knn_vs_network,
    "fig18a": experiments.fig18a_range_vs_radius,
    "fig18b": experiments.fig18b_range_vs_objects,
    "fig18c": experiments.fig18c_range_vs_network,
    "fig19": experiments.fig19_hierarchy_levels,
    "ablation-lemma4": ablations.ablation_lemma4,
    "ablation-abstracts": ablations.ablation_abstracts,
    "ablation-partitioner": ablations.ablation_partitioner,
    "ablation-metric": ablations.ablation_metric,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.eval",
        description="Reproduce the evaluation of 'Fast Object Search on "
        "Road Networks' (EDBT 2009).",
    )
    parser.add_argument(
        "experiment",
        help="experiment id (see 'list'), 'all', or 'list'",
    )
    parser.add_argument(
        "--out",
        metavar="DIR",
        help="also save rendered tables under DIR",
    )
    parser.add_argument(
        "--queries",
        type=int,
        metavar="N",
        help="queries per configuration (sets REPRO_QUERIES)",
    )
    parser.add_argument(
        "--scale",
        choices=("mini", "paper"),
        help="dataset scale (sets REPRO_SCALE)",
    )
    parser.add_argument(
        "--engine",
        choices=ROAD_MODES,
        help="ROAD serving mode: charged disk path (paper I/O model) or "
        "frozen in-memory fast path (sets REPRO_ENGINE, a "
        "ServiceConfig.from_env override — library callers pass "
        "ServiceConfig(mode=...) instead)",
    )
    parser.add_argument(
        "--maintenance",
        choices=ROAD_MAINTENANCE_MODES,
        help="frozen-snapshot maintenance lifecycle: delta-patch from "
        "MaintenanceReports or full re-freeze (sets REPRO_MAINTENANCE, "
        "a ServiceConfig.from_env override)",
    )
    parser.add_argument(
        "--backend",
        choices=BACKENDS,
        help="FrozenRoad array backend: pre-boxed lists (fastest), "
        "compact stdlib typed buffers (~4x less memory), or numpy "
        "vectorised views (optional extra) (sets REPRO_BACKEND, a "
        "ServiceConfig.from_env override)",
    )
    parser.add_argument(
        "--replica-mode",
        choices=REPLICA_MODES,
        help="replica sharding mode: interpreter threads over per-replica "
        "snapshots or worker processes attached to one shared-memory "
        "snapshot (sets REPRO_REPLICA_MODE, a ServiceConfig.from_env "
        "override)",
    )
    parser.add_argument(
        "--directories",
        metavar="NAMES",
        help="comma-separated Association Directories frozen snapshots "
        "compile into one multi-directory FrozenRoad (default: all "
        "attached) (sets REPRO_DIRECTORIES, a ServiceConfig.from_env "
        "override)",
    )
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.queries is not None:
        os.environ["REPRO_QUERIES"] = str(args.queries)
    if args.scale is not None:
        os.environ["REPRO_SCALE"] = args.scale
    if args.engine is not None:
        os.environ["REPRO_ENGINE"] = args.engine
    if args.maintenance is not None:
        os.environ["REPRO_MAINTENANCE"] = args.maintenance
    if args.backend is not None:
        os.environ[BACKEND_ENV] = args.backend
    if args.replica_mode is not None:
        os.environ[REPLICA_MODE_ENV] = args.replica_mode
    if args.directories is not None:
        os.environ["REPRO_DIRECTORIES"] = args.directories

    if args.experiment == "list":
        for name in REGISTRY:
            print(name)
        return 0

    if args.experiment == "all":
        names = list(REGISTRY)
    elif args.experiment in REGISTRY:
        names = [args.experiment]
    else:
        print(
            f"unknown experiment {args.experiment!r}; "
            f"try: {', '.join(REGISTRY)}",
            file=sys.stderr,
        )
        return 2

    for name in names:
        result = REGISTRY[name]()
        print(result.render())
        print()
        if args.out:
            path = result.save(args.out)
            print(f"saved {path}", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
