"""Bench-regression gate: diff ``BENCH_*.json`` artifacts against baselines.

Every tracked benchmark writes a machine-readable ``BENCH_<id>.json``
(:meth:`repro.eval.reporting.ExperimentResult.save_json`).  CI runs the
smoke benches, then holds the perf trajectory to a ratchet::

    python -m repro.eval.compare

compares each ``BENCH_*_smoke.json`` under ``--current-dir`` against the
checked-in baseline of the same name under ``--baseline-dir``, matching
rows by their label column and collecting, per latency column (any column
ending in ``_ms``), the per-row ``current / baseline`` ratios.  The gate
fails when a column's **median** ratio exceeds ``1 + --threshold`` (default
25%).  Tail-percentile columns (``p50_ms``/``p95_ms``/``p99_ms`` — any
``p<digits>_ms``) are held to a stricter aggregation and a looser limit:
their gate is the **max** per-row ratio against ``1 + --tail-threshold``
(default 75%), so a single path's tail blow-up fails the gate even when
every other row is flat — a median would average it away, which is
precisely how tail regressions hide.  A trajectory table is printed and,
when ``$GITHUB_STEP_SUMMARY`` is set (or ``--summary`` given), appended to
the CI job summary as markdown.

Benchmarks without a baseline yet pass with a ``new`` status — commit the
current artifact under ``--baseline-dir`` to start ratcheting them.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import statistics
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional

#: Where the checked-in trajectory baselines live, relative to the repo.
DEFAULT_BASELINE_DIR = "benchmarks/results/baselines"
#: Where the benches write their artifacts.
DEFAULT_CURRENT_DIR = "benchmarks/results"
#: Which artifacts the gate tracks (smoke runs: sized for CI).
DEFAULT_PATTERN = "BENCH_*_smoke.json"
#: Allowed median-latency growth before the gate fails.
DEFAULT_THRESHOLD = 0.25
#: Allowed tail-percentile growth (max per-row ratio).  Looser than the
#: median gate: a smoke run's p99 rides on a handful of samples, and one
#: scheduler hiccup on a shared CI runner can double it honestly.
DEFAULT_TAIL_THRESHOLD = 0.75

#: Columns carrying a latency percentile (p50_ms, p95_ms, p99_ms, ...):
#: ratcheted on their worst row, not their middle one.
_TAIL_COLUMN_RE = re.compile(r"^p\d+_ms$")


@dataclass(frozen=True)
class ColumnVerdict:
    """One benchmark column's trajectory next to its baseline."""

    bench: str
    column: str
    baseline_ms: float  # median over matched rows
    current_ms: float
    ratio: Optional[float]  # aggregated per-row ratio; None = incomparable
    status: str  # "ok" | "REGRESSION" | "new" | "incomparable"
    #: How the per-row ratios were aggregated: "median" for plain latency
    #: columns, "max" for tail-percentile (p<digits>_ms) columns.
    aggregate: str = "median"

    @property
    def failed(self) -> bool:
        # "incomparable" fails closed: a baseline exists but nothing
        # could be ratioed against it (empty rows, renamed labels, a
        # dropped column) — the ratchet has silently detached from that
        # bench, which must surface as red, not as a green no-op.
        return self.status in ("REGRESSION", "incomparable")


def _load_rows(path: Path):
    payload = json.loads(path.read_text())
    columns = payload.get("columns", [])
    rows = payload.get("rows", [])
    if not columns or not rows:
        return None, [], []
    label_col = columns[0]
    latency_cols = [c for c in columns if c.endswith("_ms")]
    return label_col, latency_cols, rows


def _median(values: List[float]) -> float:
    return statistics.median(values) if values else 0.0


def _aggregate_for(column: str) -> str:
    return "max" if _TAIL_COLUMN_RE.match(column) else "median"


def compare_file(current: Path, baseline: Path) -> List[ColumnVerdict]:
    """Verdicts for every latency column of one benchmark artifact."""
    bench = current.stem.replace("BENCH_", "")
    if not baseline.exists():
        label_col, latency_cols, rows = _load_rows(current)
        return [
            ColumnVerdict(
                bench, col,
                baseline_ms=0.0,
                current_ms=_median(
                    [r[col] for r in rows if isinstance(r.get(col), (int, float))]
                ),
                ratio=None,
                status="new",
                aggregate=_aggregate_for(col),
            )
            for col in latency_cols
        ]
    label_col, latency_cols, cur_rows = _load_rows(current)
    base_label, base_latency, base_rows = _load_rows(baseline)
    if label_col is None or base_label is None:
        return [ColumnVerdict(bench, "-", 0.0, 0.0, None, "incomparable")]
    base_by_label = {str(r.get(base_label)): r for r in base_rows}
    verdicts = []
    for col in latency_cols:
        ratios: List[float] = []
        cur_values: List[float] = []
        base_values: List[float] = []
        for row in cur_rows:
            base_row = base_by_label.get(str(row.get(label_col)))
            if base_row is None:
                continue
            cur = row.get(col)
            base = base_row.get(col)
            if not isinstance(cur, (int, float)) or not isinstance(
                base, (int, float)
            ):
                continue
            cur_values.append(float(cur))
            base_values.append(float(base))
            if base > 0:
                ratios.append(float(cur) / float(base))
        aggregate = _aggregate_for(col)
        if not ratios:
            verdicts.append(
                ColumnVerdict(
                    bench, col, _median(base_values), _median(cur_values),
                    None, "incomparable", aggregate,
                )
            )
            continue
        # Tail columns regress on their *worst* row: one path's p99
        # doubling is a tail regression even if the other rows are flat.
        ratio = max(ratios) if aggregate == "max" else _median(ratios)
        verdicts.append(
            ColumnVerdict(
                bench, col, _median(base_values), _median(cur_values),
                ratio, "ok", aggregate,
            )
        )
    return verdicts


def _apply_threshold(
    verdicts: List[ColumnVerdict],
    threshold: float,
    tail_threshold: float = DEFAULT_TAIL_THRESHOLD,
) -> List[ColumnVerdict]:
    out = []
    for v in verdicts:
        limit = tail_threshold if v.aggregate == "max" else threshold
        if v.status == "ok" and v.ratio is not None and (
            v.ratio > 1.0 + limit
        ):
            out.append(
                ColumnVerdict(
                    v.bench, v.column, v.baseline_ms, v.current_ms,
                    v.ratio, "REGRESSION", v.aggregate,
                )
            )
        else:
            out.append(v)
    return out


def render_text(
    verdicts: List[ColumnVerdict],
    threshold: float,
    tail_threshold: float = DEFAULT_TAIL_THRESHOLD,
) -> str:
    """The trajectory table, monospace (stdout form)."""
    header = (
        "bench", "column", "baseline_ms", "current_ms", "ratio", "agg",
        "status",
    )
    lines = [_table_row(header)]
    lines.append(_table_row(tuple("-" * len(h) for h in header)))
    for v in verdicts:
        lines.append(_table_row(_cells(v)))
    lines.append(
        f"gate: fail when a column's median latency ratio exceeds "
        f"{1.0 + threshold:.2f}x its committed baseline "
        f"(tail p*_ms columns: max per-row ratio over "
        f"{1.0 + tail_threshold:.2f}x)"
    )
    return "\n".join(lines)


def render_markdown(
    verdicts: List[ColumnVerdict],
    threshold: float,
    tail_threshold: float = DEFAULT_TAIL_THRESHOLD,
) -> str:
    """The trajectory table as GitHub job-summary markdown."""
    lines = [
        "### Bench-regression trajectory",
        "",
        "| bench | column | baseline ms | current ms | ratio | agg | status |",
        "| --- | --- | ---: | ---: | ---: | --- | --- |",
    ]
    for v in verdicts:
        cells = _cells(v)
        lines.append("| " + " | ".join(cells) + " |")
    lines.append("")
    lines.append(
        f"Gate: fail when a column's median latency ratio exceeds "
        f"**{1.0 + threshold:.2f}x** its committed baseline; tail "
        f"``p*_ms`` columns fail on their **max** per-row ratio over "
        f"**{1.0 + tail_threshold:.2f}x**."
    )
    return "\n".join(lines) + "\n"


def _cells(v: ColumnVerdict):
    return (
        v.bench,
        v.column,
        f"{v.baseline_ms:.3f}" if v.status != "new" else "-",
        f"{v.current_ms:.3f}",
        f"{v.ratio:.2f}x" if v.ratio is not None else "-",
        v.aggregate,
        v.status,
    )


_WIDTHS = (28, 14, 12, 11, 7, 6, 10)


def _table_row(cells) -> str:
    return "  ".join(
        str(c).ljust(w) for c, w in zip(cells, _WIDTHS)
    ).rstrip()


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.eval.compare",
        description="Diff BENCH_*.json artifacts against committed "
        "baselines and fail on median-latency regressions.",
    )
    parser.add_argument(
        "--baseline-dir", default=DEFAULT_BASELINE_DIR, metavar="DIR",
        help=f"checked-in baseline artifacts (default: {DEFAULT_BASELINE_DIR})",
    )
    parser.add_argument(
        "--current-dir", default=DEFAULT_CURRENT_DIR, metavar="DIR",
        help=f"freshly generated artifacts (default: {DEFAULT_CURRENT_DIR})",
    )
    parser.add_argument(
        "--pattern", default=DEFAULT_PATTERN, metavar="GLOB",
        help=f"artifacts to track (default: {DEFAULT_PATTERN})",
    )
    parser.add_argument(
        "--threshold", type=float, default=DEFAULT_THRESHOLD, metavar="FRAC",
        help="allowed median-latency growth, e.g. 0.25 = +25%% "
        f"(default: {DEFAULT_THRESHOLD})",
    )
    parser.add_argument(
        "--tail-threshold", type=float, default=DEFAULT_TAIL_THRESHOLD,
        metavar="FRAC",
        help="allowed growth of the worst row of p*_ms percentile columns "
        f"(default: {DEFAULT_TAIL_THRESHOLD})",
    )
    parser.add_argument(
        "--summary", metavar="FILE",
        help="append the markdown trajectory table to FILE "
        "(default: $GITHUB_STEP_SUMMARY when set)",
    )
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    current_dir = Path(args.current_dir)
    baseline_dir = Path(args.baseline_dir)
    current_files = sorted(current_dir.glob(args.pattern))
    if not current_files:
        print(
            f"no {args.pattern} artifacts under {current_dir} — "
            f"run the smoke benches first",
            file=sys.stderr,
        )
        return 2
    verdicts: List[ColumnVerdict] = []
    for current in current_files:
        verdicts.extend(compare_file(current, baseline_dir / current.name))
    verdicts = _apply_threshold(verdicts, args.threshold, args.tail_threshold)
    print(render_text(verdicts, args.threshold, args.tail_threshold))
    summary_path = args.summary or os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        with open(summary_path, "a") as fh:
            fh.write(
                render_markdown(verdicts, args.threshold, args.tail_threshold)
            )
    failures = [v for v in verdicts if v.failed]
    if failures:
        print(
            f"{len(failures)} bench-regression failure(s) "
            f"(median +{args.threshold:.0%}, tail +{args.tail_threshold:.0%}):",
            file=sys.stderr,
        )
        for v in failures:
            if v.ratio is None:
                print(
                    f"  {v.bench}.{v.column}: incomparable with its "
                    f"baseline (no matching rows/values) — regenerate the "
                    f"baseline if the bench's shape changed on purpose",
                    file=sys.stderr,
                )
            else:
                print(
                    f"  {v.bench}.{v.column}: {v.aggregate} ratio "
                    f"{v.ratio:.2f}x baseline "
                    f"({v.baseline_ms:.3f} -> {v.current_ms:.3f} ms)",
                    file=sys.stderr,
                )
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    raise SystemExit(main())
