"""Ablations of ROAD's design choices (beyond the paper's figures).

DESIGN.md calls out four designed-in choices worth isolating:

* the Lemma-4 shortcut reduction (storage vs traversal trade-off),
* the object-abstract representation (Section 3.4 lists exact aggregates,
  Bloom filters and signatures),
* the partitioner (geometric+KL vs plain geometric vs semantic grid vs the
  object-based future-work variant),
* the distance metric (travel time breaks the Euclidean baseline while
  ROAD carries any positive metric).

Each function returns an :class:`~repro.eval.reporting.ExperimentResult`
like the figure experiments do.
"""

from __future__ import annotations

from typing import Optional


from repro.baselines import EngineError, NetworkExpansionEngine, ROADEngine
from repro.core.object_abstract import (
    bloom_abstract,
    counting_abstract,
    exact_abstract,
    signature_abstract,
)
from repro.eval.config import DEFAULT_K, DEFAULT_OBJECTS, profile, queries_per_run
from repro.eval.datasets import dataset_levels, load_dataset
from repro.eval.metrics import run_workload
from repro.eval.reporting import ExperimentResult
from repro.eval.runner import make_objects
from repro.graph.generators import travel_time_metric
from repro.objects.placement import place_uniform
from repro.partition.base import cut_nodes
from repro.partition.grid import grid_partition_tree
from repro.partition.hierarchy import (
    build_partition_tree,
    geometric_bisector,
    kl_bisector,
)
from repro.partition.object_based import build_object_based_tree
from repro.queries.types import Predicate
from repro.queries.workload import knn_workload
from repro.storage.pager import PageManager

MB = 1024 * 1024


def ablation_lemma4(
    *,
    network: str = "CA",
    num_objects: int = DEFAULT_OBJECTS,
    k: int = DEFAULT_K,
    num_queries: Optional[int] = None,
    seed: int = 0,
) -> ExperimentResult:
    """Lemma-4 shortcut reduction on vs off."""
    dataset = load_dataset(network)
    objects = make_objects(dataset.network, num_objects, seed=seed)
    count = num_queries if num_queries is not None else queries_per_run()
    queries = knn_workload(dataset.network, count, k, seed=seed)
    result = ExperimentResult(
        "ablation_lemma4",
        f"Lemma-4 shortcut reduction on {network} (|O|={num_objects})",
        ["reduction", "shortcuts_stored", "overlay_mb", "query_ms", "io_pages"],
    )
    for reduce in (True, False):
        engine = ROADEngine(
            dataset.network.copy(),
            objects,
            PageManager(buffer_pages=profile(network).buffer_pages),
            levels=dataset_levels(network),
            reduce_shortcuts=reduce,
        )
        summary = run_workload(engine, queries)
        result.add_row(
            reduction="on" if reduce else "off",
            shortcuts_stored=engine.road.shortcuts.total(stored=True),
            overlay_mb=engine.road.overlay.size_bytes / MB,
            query_ms=summary.mean_ms,
            io_pages=summary.mean_io,
        )
    result.note("reduction trades a smaller Route Overlay for extra "
                "transitive hops during bypass")
    return result


def ablation_abstracts(
    *,
    network: str = "CA",
    num_objects: int = DEFAULT_OBJECTS,
    k: int = DEFAULT_K,
    num_queries: Optional[int] = None,
    seed: int = 0,
) -> ExperimentResult:
    """Object-abstract representations under a selective predicate."""
    dataset = load_dataset(network)
    objects = place_uniform(
        dataset.network, num_objects, seed=seed,
        attr_choices={"type": ["hotel", "fuel", "food", "bank"]},
    )
    count = num_queries if num_queries is not None else queries_per_run()
    predicate = Predicate.of(type="hotel")
    queries = knn_workload(
        dataset.network, count, k, seed=seed, predicate=predicate
    )
    factories = {
        "exact": exact_abstract,
        "counting": counting_abstract,
        "bloom": bloom_abstract(num_bits=256),
        "signature": signature_abstract(),
    }
    result = ExperimentResult(
        "ablation_abstracts",
        f"Object abstract representations on {network} "
        f"(predicate type=hotel, |O|={num_objects})",
        ["abstract", "directory_mb", "query_ms", "io_pages"],
    )
    for label, factory in factories.items():
        engine = ROADEngine(
            dataset.network.copy(),
            objects,
            PageManager(buffer_pages=profile(network).buffer_pages),
            levels=dataset_levels(network),
            abstract_factory=factory,
        )
        summary = run_workload(engine, queries)
        result.add_row(
            abstract=label,
            directory_mb=engine.road.directory().size_bytes / MB,
            query_ms=summary.mean_ms,
            io_pages=summary.mean_io,
        )
    result.note("counting abstracts cannot prune on attributes: searches "
                "descend into Rnets holding only wrong-type objects")
    return result


def ablation_partitioner(
    *,
    network: str = "CA",
    num_objects: int = DEFAULT_OBJECTS,
    k: int = DEFAULT_K,
    num_queries: Optional[int] = None,
    seed: int = 0,
) -> ExperimentResult:
    """Partitioning strategies: KL refinement vs alternatives."""
    dataset = load_dataset(network)
    objects = make_objects(dataset.network, num_objects, seed=seed)
    levels = dataset_levels(network)
    count = num_queries if num_queries is not None else queries_per_run()
    queries = knn_workload(dataset.network, count, k, seed=seed)

    trees = {
        "geometric+KL": build_partition_tree(
            dataset.network, levels=levels, fanout=4, bisector=kl_bisector()
        ),
        "geometric": build_partition_tree(
            dataset.network, levels=levels, fanout=4,
            bisector=geometric_bisector(),
        ),
        "grid": grid_partition_tree(dataset.network, levels=levels),
        "object-based": build_object_based_tree(
            dataset.network,
            [obj.edge for obj in objects],
            levels=levels,
        ),
    }
    result = ExperimentResult(
        "ablation_partitioner",
        f"Partitioner comparison on {network} (l={levels}, |O|={num_objects})",
        ["partitioner", "level1_borders", "build_s", "query_ms", "io_pages"],
    )
    for label, tree in trees.items():
        borders = len(cut_nodes([set(c.edges) for c in tree.children]))
        engine = ROADEngine(
            dataset.network.copy(),
            objects,
            PageManager(buffer_pages=profile(network).buffer_pages),
            partition_tree=tree,
        )
        summary = run_workload(engine, queries)
        result.add_row(
            partitioner=label,
            level1_borders=borders,
            build_s=engine.road.build_report.total_seconds,
            query_ms=summary.mean_ms,
            io_pages=summary.mean_io,
        )
    result.note("KL refinement minimises border nodes (fewer shortcuts to "
                "store and traverse); the paper names object-based "
                "partitioning as future work")
    return result


def ablation_metric(
    *,
    network: str = "CA",
    num_objects: int = DEFAULT_OBJECTS,
    k: int = DEFAULT_K,
    num_queries: Optional[int] = None,
    seed: int = 0,
) -> ExperimentResult:
    """Travel-time metric: ROAD works, the Euclidean baseline cannot."""
    dataset = load_dataset(network)
    timed = travel_time_metric(dataset.network, seed=seed)
    objects = make_objects(timed, num_objects, seed=seed)
    count = num_queries if num_queries is not None else queries_per_run()
    queries = knn_workload(timed, count, k, seed=seed)
    buffer_pages = profile(network).buffer_pages

    result = ExperimentResult(
        "ablation_metric",
        f"Travel-time metric on {network} (|O|={num_objects})",
        ["engine", "status", "query_ms", "io_pages"],
    )
    road = ROADEngine(
        timed.copy(), objects, PageManager(buffer_pages=buffer_pages),
        levels=dataset_levels(network),
    )
    netexp = NetworkExpansionEngine(
        timed.copy(), objects, PageManager(buffer_pages=buffer_pages)
    )
    road_summary = run_workload(road, queries)
    netexp_summary = run_workload(netexp, queries)
    # Cross-check: both engines agree on the re-weighted network.
    agreement = all(
        [e.object_id for e in road.knn(q.node, q.k)]
        == [e.object_id for e in netexp.knn(q.node, q.k)]
        for q in queries[: min(5, len(queries))]
    )
    result.add_row(
        engine="ROAD", status="ok" if agreement else "MISMATCH",
        query_ms=road_summary.mean_ms, io_pages=road_summary.mean_io,
    )
    result.add_row(
        engine="NetExp", status="ok",
        query_ms=netexp_summary.mean_ms, io_pages=netexp_summary.mean_io,
    )
    try:
        from repro.baselines import EuclideanEngine

        EuclideanEngine(timed.copy(), objects)
        result.add_row(engine="Euclidean", status="UNEXPECTEDLY BUILT",
                       query_ms=0.0, io_pages=0)
    except EngineError:
        result.add_row(engine="Euclidean", status="refused (unsound bound)",
                       query_ms=0.0, io_pages=0)
    result.note("Section 2: Euclidean bounds 'cannot be used to estimate "
                "some distance metrics (e.g., trip time, travel cost)'; "
                "ROAD shortcuts simply carry the metric")
    return result
