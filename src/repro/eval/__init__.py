"""Evaluation harness reproducing the paper's Section 6."""

from repro.eval.config import (
    DEFAULT_K,
    DEFAULT_OBJECTS,
    DEFAULT_RANGE_FRACTION,
    K_VALUES,
    OBJECT_COUNTS,
    PARTITION_FANOUT,
    RANGE_FRACTIONS,
    profile,
    profiles,
    queries_per_run,
    scale_profile,
)
from repro.eval.datasets import Dataset, dataset_levels, load_dataset
from repro.eval.metrics import (
    QueryMeasurement,
    WorkloadSummary,
    measure_query,
    run_workload,
    time_call,
)
from repro.eval.reporting import ExperimentResult, dominance
from repro.eval.runner import (
    ENGINE_ORDER,
    build_engine,
    build_engines,
    build_service,
    make_objects,
)

__all__ = [
    "DEFAULT_K",
    "DEFAULT_OBJECTS",
    "DEFAULT_RANGE_FRACTION",
    "Dataset",
    "ENGINE_ORDER",
    "ExperimentResult",
    "K_VALUES",
    "OBJECT_COUNTS",
    "PARTITION_FANOUT",
    "QueryMeasurement",
    "RANGE_FRACTIONS",
    "WorkloadSummary",
    "build_engine",
    "build_engines",
    "build_service",
    "dataset_levels",
    "dominance",
    "load_dataset",
    "make_objects",
    "measure_query",
    "profile",
    "profiles",
    "queries_per_run",
    "run_workload",
    "scale_profile",
    "time_call",
]
