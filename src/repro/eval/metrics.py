"""Measurement primitives: wall time + page I/O per operation.

The paper reports processing time per query (cold cache: "In every run, a
query is initialized with an empty cache") and illustrates per-query page
I/O (Figure 11).  These helpers standardise that protocol across engines.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from repro.baselines.engine import SearchEngine
from repro.queries.types import ResultEntry


@dataclass(frozen=True)
class QueryMeasurement:
    """One query's cost."""

    elapsed_ms: float
    io_reads: int
    io_total: int
    result_size: int


@dataclass
class WorkloadSummary:
    """Aggregate over a workload (the averages the figures plot)."""

    label: str
    measurements: List[QueryMeasurement] = field(default_factory=list)

    @property
    def count(self) -> int:
        return len(self.measurements)

    @property
    def mean_ms(self) -> float:
        """Average processing time in milliseconds."""
        if not self.measurements:
            return 0.0
        return statistics.fmean(m.elapsed_ms for m in self.measurements)

    @property
    def median_ms(self) -> float:
        if not self.measurements:
            return 0.0
        return statistics.median(m.elapsed_ms for m in self.measurements)

    @property
    def mean_io(self) -> float:
        """Average pages read per query."""
        if not self.measurements:
            return 0.0
        return statistics.fmean(m.io_reads for m in self.measurements)

    @property
    def mean_result_size(self) -> float:
        if not self.measurements:
            return 0.0
        return statistics.fmean(m.result_size for m in self.measurements)


def measure_query(engine: SearchEngine, query) -> QueryMeasurement:
    """Run one query cold (empty cache) and capture time + I/O."""
    engine.reset_io()
    start = time.perf_counter()
    result: List[ResultEntry] = engine.execute(query)
    elapsed = time.perf_counter() - start
    stats = engine.io_snapshot()
    return QueryMeasurement(
        elapsed_ms=elapsed * 1000.0,
        io_reads=stats.reads,
        io_total=stats.total_io,
        result_size=len(result),
    )


def run_workload(
    engine: SearchEngine, queries: Sequence, label: str = ""
) -> WorkloadSummary:
    """Measure a whole workload (each query starts cold, per the paper)."""
    summary = WorkloadSummary(label or engine.name)
    for query in queries:
        summary.measurements.append(measure_query(engine, query))
    return summary


def time_call(fn: Callable, *args, **kwargs):
    """(result, seconds) of one call — used for build/update timings."""
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - start


def snapshot_divergences(
    rnd,
    patched,
    fresh,
    *,
    probes: int = 3,
    k: int = 5,
    max_radius: float = 30.0,
    directory: Optional[str] = None,
) -> List[str]:
    """Probe two FrozenRoad snapshots for byte-identity; return divergences.

    The single definition of the incremental-freeze equivalence contract —
    a patched snapshot must match a fresh ``freeze()`` on results *and*
    SearchStats, including predicate-filtered queries (the patched mask /
    abstract state) and aggregate queries (the patched incremental
    iterator).  The patch property suite asserts the returned list is
    empty; the maintenance bench counts its length as violations, so the
    two can never enforce different contracts.

    ``directory`` routes the probes on ``patched`` to one directory of a
    multi-directory snapshot (``fresh`` answers from its own default), so
    a combined snapshot can be held byte-identical to the per-directory
    single freezes it replaces.  ``None`` probes ``patched``'s default.
    """
    from repro.core.search import SearchStats
    from repro.queries.types import Predicate

    # Only pass directory= through when asked: the probes then also run
    # unchanged against snapshots predating the multi-directory layout.
    kw = {} if directory is None else {"directory": directory}

    # A predicate matching at least one snapshotted object, if any carries
    # attributes — exercises the patched _rnet/_obj masks and abstracts.
    predicate = None
    refs = (
        patched.object_refs(directory)
        if hasattr(patched, "object_refs")
        else getattr(patched, "_obj_ref", [])
    )
    for obj in refs:
        if obj.attrs:
            key, value = sorted(obj.attrs.items())[0]
            predicate = Predicate.of(**{key: value})
            break

    divergences: List[str] = []
    for _ in range(probes):
        node = patched.node_ids[rnd.randrange(patched.num_nodes)]
        s_patched, s_fresh = SearchStats(), SearchStats()
        got = patched.knn(node, k, stats=s_patched, **kw)
        want = fresh.knn(node, k, stats=s_fresh)
        if got != want:
            divergences.append(f"knn({node}, {k}): {got} != {want}")
        if s_patched != s_fresh:
            divergences.append(
                f"knn({node}, {k}) stats: {s_patched} != {s_fresh}"
            )
        radius = rnd.uniform(0.0, max_radius)
        s_patched, s_fresh = SearchStats(), SearchStats()
        if patched.range(node, radius, stats=s_patched, **kw) != fresh.range(
            node, radius, stats=s_fresh
        ):
            divergences.append(f"range({node}, {radius:.3f}) diverged")
        if s_patched != s_fresh:
            divergences.append(f"range({node}, {radius:.3f}) stats diverged")
        if predicate is not None:
            s_patched, s_fresh = SearchStats(), SearchStats()
            if patched.knn(
                node, k, predicate, stats=s_patched, **kw
            ) != fresh.knn(node, k, predicate, stats=s_fresh):
                divergences.append(f"knn({node}, {k}, {predicate}) diverged")
            if s_patched != s_fresh:
                divergences.append(
                    f"knn({node}, {k}, {predicate}) stats diverged"
                )
        other = patched.node_ids[rnd.randrange(patched.num_nodes)]
        s_patched, s_fresh = SearchStats(), SearchStats()
        if patched.aggregate_knn(
            [node, other], k, stats=s_patched, **kw
        ) != fresh.aggregate_knn([node, other], k, stats=s_fresh):
            divergences.append(f"aggregate_knn([{node}, {other}]) diverged")
        if s_patched != s_fresh:
            divergences.append(
                f"aggregate_knn([{node}, {other}]) stats diverged"
            )
        # Network-workload probes (hasattr-guarded so the function still
        # accepts snapshots predating the multi-source kernel).  Each
        # compares SearchStats too: the visit-set footprints drive
        # result-cache invalidation, so a patched snapshot reporting a
        # different footprint than a fresh freeze is a divergence even
        # when the answers agree.
        if hasattr(patched, "od_matrix"):
            s_patched, s_fresh = SearchStats(), SearchStats()
            got_od = patched.od_matrix(
                [node, other], [other, node], stats=s_patched, **kw
            )
            if got_od != fresh.od_matrix(
                [node, other], [other, node], stats=s_fresh
            ):
                divergences.append(f"od_matrix([{node}, {other}]) diverged")
            if s_patched != s_fresh:
                divergences.append(
                    f"od_matrix([{node}, {other}]) stats diverged"
                )
        if hasattr(patched, "service_area"):
            breaks = (max_radius / 2.0, max_radius)
            s_patched, s_fresh = SearchStats(), SearchStats()
            if patched.service_area(
                node, breaks, stats=s_patched, **kw
            ) != fresh.service_area(node, breaks, stats=s_fresh):
                divergences.append(f"service_area({node}, {breaks}) diverged")
            if s_patched != s_fresh:
                divergences.append(
                    f"service_area({node}, {breaks}) stats diverged"
                )
        if hasattr(patched, "route_knn"):
            s_patched, s_fresh = SearchStats(), SearchStats()
            if patched.route_knn(
                [node, other], k, stats=s_patched, **kw
            ) != fresh.route_knn([node, other], k, stats=s_fresh):
                divergences.append(f"route_knn([{node}, {other}]) diverged")
            if s_patched != s_fresh:
                divergences.append(
                    f"route_knn([{node}, {other}]) stats diverged"
                )
    return divergences
