"""Network partitioning: geometric + KL bisection, hierarchies, variants."""

from repro.partition.base import (
    PartitionError,
    balance_ratio,
    cut_nodes,
    incident_nodes,
    validate_partition,
)
from repro.partition.geometric import edge_midpoint, geometric_bisection
from repro.partition.grid import grid_partition_tree
from repro.partition.hierarchy import (
    PartitionNode,
    build_partition_tree,
    geometric_bisector,
    kl_bisector,
)
from repro.partition.kl import refine_bisection
from repro.partition.object_based import build_object_based_tree, object_weights

__all__ = [
    "PartitionError",
    "PartitionNode",
    "balance_ratio",
    "build_object_based_tree",
    "build_partition_tree",
    "cut_nodes",
    "edge_midpoint",
    "geometric_bisection",
    "geometric_bisector",
    "grid_partition_tree",
    "incident_nodes",
    "kl_bisector",
    "object_weights",
    "refine_bisection",
    "validate_partition",
]
