"""Edge-partition primitives shared by all partitioners.

Rnet partitioning (Definition 4) splits an Rnet's *edges* into disjoint
child edge sets; nodes incident to edges of several children — or to edges
outside the partitioned Rnet — become border nodes.  These helpers compute
incident/border node sets and validate the three conditions of Definition 4.
"""

from __future__ import annotations

from typing import Dict, Iterable, Sequence, Set

from repro.graph.network import EdgeKey


class PartitionError(Exception):
    """Raised when a partition violates Definition 4."""


def incident_nodes(edges: Iterable[EdgeKey]) -> Set[int]:
    """All endpoints of the given edges (``N_R`` of Definition 1)."""
    nodes: Set[int] = set()
    for u, v in edges:
        nodes.add(u)
        nodes.add(v)
    return nodes


def cut_nodes(parts: Sequence[Set[EdgeKey]]) -> Set[int]:
    """Nodes incident to edges of two or more parts.

    For a full partitioning of a parent Rnet these are exactly the border
    nodes the children introduce among themselves (Definition 4, cond. 3).
    """
    owner: Dict[int, int] = {}
    cut: Set[int] = set()
    for index, part in enumerate(parts):
        for node in incident_nodes(part):
            previous = owner.setdefault(node, index)
            if previous != index:
                cut.add(node)
    return cut


def edge_weights_uniform(edges: Iterable[EdgeKey]) -> Dict[EdgeKey, float]:
    """Unit weight per edge — the paper's object-independent balancing."""
    return {edge: 1.0 for edge in edges}


def validate_partition(
    parent_edges: Set[EdgeKey], parts: Sequence[Set[EdgeKey]]
) -> None:
    """Check Definition 4's structural conditions; raise on violation.

    1. child edge sets are pairwise disjoint,
    2. their union is exactly the parent edge set,
    3. every part is non-empty and there are at least two parts.
    (Condition 2 of the definition — endpoints belong to the child's node
    set — holds by construction since node sets are derived from edges.)
    """
    if len(parts) < 2:
        raise PartitionError(f"need >= 2 parts, got {len(parts)}")
    union: Set[EdgeKey] = set()
    total = 0
    for index, part in enumerate(parts):
        if not part:
            raise PartitionError(f"part {index} is empty")
        total += len(part)
        union |= part
    if total != len(union):
        raise PartitionError("child edge sets overlap")
    if union != parent_edges:
        missing = parent_edges - union
        extra = union - parent_edges
        raise PartitionError(
            f"children do not cover parent: missing={len(missing)}, "
            f"extra={len(extra)}"
        )


def balance_ratio(parts: Sequence[Set[EdgeKey]]) -> float:
    """max part size / ideal size — 1.0 is perfectly balanced."""
    sizes = [len(part) for part in parts]
    ideal = sum(sizes) / len(sizes)
    return max(sizes) / ideal if ideal else 1.0
