"""Kernighan–Lin refinement of an edge bisection.

Section 3.3: the "KL algorithm is then used to fine tune the two result
Rnets by exchanging edges between them until further exchanges do not reduce
the number of border nodes" [12].  We implement the linear-time
Fiduccia–Mattheyses formulation of KL passes — single edge moves chosen by
gain, every edge moved at most once per pass, rollback to the best prefix —
which optimises exactly the paper's objective: the number of *border nodes*
(nodes incident to edges of both halves) under an edge-count balance
constraint.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Set, Tuple

from repro.graph.network import EdgeKey, RoadNetwork
from repro.partition.base import PartitionError


class _BisectionState:
    """Incremental cut-node bookkeeping for a 2-way edge partition."""

    def __init__(
        self,
        left: Set[EdgeKey],
        right: Set[EdgeKey],
        weights: Optional[Dict[EdgeKey, float]],
    ) -> None:
        self.side: Dict[EdgeKey, int] = {}
        self.counts: Dict[int, List[int]] = {}
        self.part_weight = [0.0, 0.0]
        self.weights = weights
        for side, edges in ((0, left), (1, right)):
            for edge in edges:
                self.side[edge] = side
                self.part_weight[side] += self._weight(edge)
                for node in edge:
                    self.counts.setdefault(node, [0, 0])[side] += 1
        self.cut = sum(1 for c in self.counts.values() if c[0] > 0 and c[1] > 0)
        self.part_sizes = [len(left), len(right)]

    def _weight(self, edge: EdgeKey) -> float:
        return 1.0 if self.weights is None else self.weights[edge]

    def gain(self, edge: EdgeKey) -> int:
        """Cut-node reduction if ``edge`` switches sides."""
        source = self.side[edge]
        target = 1 - source
        gain = 0
        for node in edge:
            counts = self.counts[node]
            before = counts[0] > 0 and counts[1] > 0
            # After the move the node certainly touches `target`; it stays
            # cut iff it still touches `source` through another edge.
            after = counts[source] > 1
            gain += int(before) - int(after)
        return gain

    def move(self, edge: EdgeKey) -> None:
        """Switch ``edge`` to the other side, updating cut incrementally."""
        source = self.side[edge]
        target = 1 - source
        for node in edge:
            counts = self.counts[node]
            was_cut = counts[0] > 0 and counts[1] > 0
            counts[source] -= 1
            counts[target] += 1
            now_cut = counts[0] > 0 and counts[1] > 0
            self.cut += int(now_cut) - int(was_cut)
        self.side[edge] = target
        weight = self._weight(edge)
        self.part_weight[source] -= weight
        self.part_weight[target] += weight
        self.part_sizes[source] -= 1
        self.part_sizes[target] += 1

    def halves(self) -> Tuple[Set[EdgeKey], Set[EdgeKey]]:
        left = {e for e, s in self.side.items() if s == 0}
        right = {e for e, s in self.side.items() if s == 1}
        return left, right


def refine_bisection(
    network: RoadNetwork,
    left: Set[EdgeKey],
    right: Set[EdgeKey],
    *,
    weights: Optional[Dict[EdgeKey, float]] = None,
    balance_tol: float = 0.1,
    max_passes: int = 8,
) -> Tuple[Set[EdgeKey], Set[EdgeKey], int]:
    """Refine a bisection to minimise border nodes.

    Parameters
    ----------
    network:
        The network the edges belong to (unused beyond sanity checks; the
        cut objective only needs edge endpoints).
    left, right:
        Initial halves (typically from geometric bisection).
    weights:
        Optional per-edge balance weights (object-based partitioning).
    balance_tol:
        Each half may exceed the ideal half-weight by this fraction.
    max_passes:
        Upper bound on KL passes; iteration stops earlier when a full pass
        yields no improvement ("until further exchanges do not reduce the
        number of border nodes").

    Returns
    -------
    (left, right, border_count):
        The refined halves and their cut-node count.
    """
    if not left or not right:
        raise PartitionError("both halves must be non-empty")
    state = _BisectionState(left, right, weights)
    total_weight = state.part_weight[0] + state.part_weight[1]
    max_side_weight = (total_weight / 2.0) * (1.0 + balance_tol)

    for _ in range(max_passes):
        improved = _kl_pass(state, max_side_weight)
        if not improved:
            break
    refined_left, refined_right = state.halves()
    return refined_left, refined_right, state.cut


def _kl_pass(state: _BisectionState, max_side_weight: float) -> bool:
    """One FM pass; returns True if the cut strictly improved."""
    start_cut = state.cut
    locked: Set[EdgeKey] = set()
    heap: List[Tuple[int, EdgeKey]] = [
        (-state.gain(edge), edge) for edge in state.side
    ]
    heapq.heapify(heap)

    moves: List[EdgeKey] = []
    cut_after_move: List[int] = []

    while heap:
        neg_gain, edge = heapq.heappop(heap)
        if edge in locked:
            continue
        current_gain = state.gain(edge)
        if -neg_gain != current_gain:
            heapq.heappush(heap, (-current_gain, edge))  # stale entry
            continue
        source = state.side[edge]
        target = 1 - source
        weight = state._weight(edge)
        if state.part_sizes[source] <= 1:
            continue  # a half may never become empty
        if state.part_weight[target] + weight > max_side_weight:
            continue  # move would break balance
        # Neighbouring edges' gains change after a move; the stale-entry
        # check on pop refreshes them lazily, so no eager update is needed.
        state.move(edge)
        locked.add(edge)
        moves.append(edge)
        cut_after_move.append(state.cut)

    if not moves:
        return False

    best_index = min(range(len(moves)), key=lambda i: cut_after_move[i])
    if cut_after_move[best_index] >= start_cut:
        # No prefix beat the starting cut: roll back the whole pass.
        for edge in reversed(moves):
            state.move(edge)
        return False
    # Roll back the moves after the best prefix.
    for edge in reversed(moves[best_index + 1 :]):
        state.move(edge)
    return state.cut < start_cut
