"""Grid (semantic) partitioner.

Section 3.3 notes that "partitioning can be based on network semantics",
e.g. administrative regions.  A regular spatial grid is the simplest such
semantic scheme: edges are assigned to cells by midpoint.  It serves as an
ablation baseline against geometric+KL partitioning — cheap to compute but
with more border nodes.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Set, Tuple

from repro.graph.network import EdgeKey, RoadNetwork
from repro.partition.base import PartitionError
from repro.partition.geometric import edge_midpoint
from repro.partition.hierarchy import PartitionNode


def grid_partition_tree(
    network: RoadNetwork, *, levels: int, fanout: int = 4
) -> PartitionNode:
    """Partition by recursively splitting each region into a 2x2 grid.

    ``fanout`` must be 4 (a 2x2 grid per level); levels follow the same
    semantics as :func:`repro.partition.hierarchy.build_partition_tree`.
    """
    if fanout != 4:
        raise PartitionError("grid partitioner only supports fanout=4 (2x2)")
    if levels < 1:
        raise PartitionError("levels must be >= 1")
    ids = itertools.count()
    all_edges = frozenset((u, v) for u, v, _ in network.edges())
    root = PartitionNode(next(ids), 0, all_edges)
    frontier = [root]
    for level in range(1, levels + 1):
        next_frontier: List[PartitionNode] = []
        for node in frontier:
            cells = _quad_split(network, set(node.edges))
            if len(cells) < 2:
                continue  # degenerate region stays a leaf
            for cell in cells:
                child = PartitionNode(next(ids), level, frozenset(cell))
                node.children.append(child)
                next_frontier.append(child)
        frontier = next_frontier
        if not frontier:
            break
    return root


def _quad_split(network: RoadNetwork, edges: Set[EdgeKey]) -> List[Set[EdgeKey]]:
    """Split edges into the non-empty quadrants of their bounding box."""
    if len(edges) < 2:
        return [edges]
    midpoints = {edge: edge_midpoint(network, edge) for edge in edges}
    xs = sorted(m[0] for m in midpoints.values())
    ys = sorted(m[1] for m in midpoints.values())
    # Median split keeps quadrants balanced on clustered layouts.
    cx = xs[len(xs) // 2]
    cy = ys[len(ys) // 2]
    quadrants: Dict[Tuple[bool, bool], Set[EdgeKey]] = {}
    for edge, (x, y) in midpoints.items():
        quadrants.setdefault((x < cx, y < cy), set()).add(edge)
    return [cell for cell in quadrants.values() if cell]
