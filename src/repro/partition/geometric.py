"""Geometric edge bisection.

Section 3.3: "The geometric approach first coarsely partitions a network
into two by dividing a set of edges spatially such that these two result
subnets have equal numbers of edges" [8].  We sort edges by midpoint along
the axis with the larger spread and cut at the weighted median, which keeps
parts spatially contiguous — the property that makes the follow-up KL
refinement converge quickly.
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

from repro.graph.network import EdgeKey, RoadNetwork
from repro.partition.base import PartitionError


def edge_midpoint(network: RoadNetwork, edge: EdgeKey) -> Tuple[float, float]:
    """Midpoint of an edge's endpoints (the edge's spatial proxy)."""
    ux, uy = network.coords(edge[0])
    vx, vy = network.coords(edge[1])
    return (ux + vx) / 2.0, (uy + vy) / 2.0


def geometric_bisection(
    network: RoadNetwork,
    edges: Set[EdgeKey],
    *,
    weights: Optional[Dict[EdgeKey, float]] = None,
) -> Tuple[Set[EdgeKey], Set[EdgeKey]]:
    """Split ``edges`` spatially into two equal-weight halves.

    ``weights`` defaults to unit weight per edge (equal edge counts); the
    object-based partitioner passes object-loaded weights instead.
    """
    if len(edges) < 2:
        raise PartitionError("cannot bisect fewer than 2 edges")

    midpoints = {edge: edge_midpoint(network, edge) for edge in edges}
    xs = [m[0] for m in midpoints.values()]
    ys = [m[1] for m in midpoints.values()]
    axis = 0 if (max(xs) - min(xs)) >= (max(ys) - min(ys)) else 1

    # Sort with the off-axis coordinate and edge id as tie-breakers so the
    # cut is deterministic even on degenerate layouts.
    ordered = sorted(
        edges, key=lambda e: (midpoints[e][axis], midpoints[e][1 - axis], e)
    )
    total = (
        float(len(ordered))
        if weights is None
        else sum(weights[e] for e in ordered)
    )
    left: Set[EdgeKey] = set()
    acc = 0.0
    for edge in ordered:
        if acc >= total / 2.0 and left:
            break
        left.add(edge)
        acc += 1.0 if weights is None else weights[edge]
    if len(left) == len(ordered):  # everything in one half: force a cut
        left.discard(ordered[-1])
    right = edges - left
    return left, right
