"""Object-based network partitioning (the paper's stated future work).

Section 3.3: "the network partitioning could be based on the distributed
objects ... We will study the object-based network partitioning in our
future work."  This module implements that extension: edges are weighted by
``1 + objects_on_edge * emphasis`` so the bisection balances *object load*
rather than raw edge counts.  Object-dense districts then split into more,
smaller Rnets — which increases the number of object-free Rnets elsewhere
and therefore the bypass opportunities during search.
"""

from __future__ import annotations

from typing import Dict, Iterable

from repro.graph.network import EdgeKey, RoadNetwork, edge_key
from repro.partition.hierarchy import (
    PartitionNode,
    build_partition_tree,
    kl_bisector,
)


def object_weights(
    network: RoadNetwork,
    object_edges: Iterable[EdgeKey],
    *,
    emphasis: float = 4.0,
) -> Dict[EdgeKey, float]:
    """Edge weights biased by object placement.

    ``object_edges`` lists the edge of every object (repeats allowed — an
    edge hosting three objects weighs ``1 + 3 * emphasis``).
    """
    weights: Dict[EdgeKey, float] = {
        edge_key(u, v): 1.0 for u, v, _ in network.edges()
    }
    for u, v in object_edges:
        key = edge_key(u, v)
        if key not in weights:
            raise KeyError(f"object edge {key} not in network")
        weights[key] += emphasis
    return weights


def build_object_based_tree(
    network: RoadNetwork,
    object_edges: Iterable[EdgeKey],
    *,
    levels: int,
    fanout: int = 4,
    emphasis: float = 4.0,
    balance_tol: float = 0.25,
) -> PartitionNode:
    """Partition tree balancing object load instead of edge counts.

    The looser default ``balance_tol`` lets object-heavy regions shrink
    spatially, which is the point of object-based partitioning.
    """
    weights = object_weights(network, object_edges, emphasis=emphasis)
    return build_partition_tree(
        network,
        levels=levels,
        fanout=fanout,
        bisector=kl_bisector(weights=weights, balance_tol=balance_tol),
    )
