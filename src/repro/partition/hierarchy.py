"""Recursive Rnet partitioning.

Section 3.3: "We set p_i to be power of 2 (i.e., p_i = 2^x ...) and
recursively apply this binary partitioning until p_i Rnets are formed" —
each binary step being geometric bisection followed by KL refinement.  The
result here is a tree of edge sets; :mod:`repro.core.rnet` turns it into the
Rnet hierarchy with border nodes per Definitions 1 and 4.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Set

from repro.graph.network import EdgeKey, RoadNetwork
from repro.partition.base import PartitionError, validate_partition
from repro.partition.geometric import geometric_bisection
from repro.partition.kl import refine_bisection

#: A bisector takes (network, edges) and returns two non-empty halves.
Bisector = Callable[[RoadNetwork, Set[EdgeKey]], "tuple[Set[EdgeKey], Set[EdgeKey]]"]


@dataclass
class PartitionNode:
    """One Rnet-to-be: an edge set and its child partitions."""

    part_id: int
    level: int
    edges: FrozenSet[EdgeKey]
    children: List["PartitionNode"] = field(default_factory=list)

    @property
    def is_leaf(self) -> bool:
        """True for finest Rnets (no further partitioning)."""
        return not self.children

    def descendants(self) -> List["PartitionNode"]:
        """This node and every node below it, depth-first."""
        out = [self]
        for child in self.children:
            out.extend(child.descendants())
        return out

    def leaves(self) -> List["PartitionNode"]:
        """All finest partitions under this node."""
        return [node for node in self.descendants() if node.is_leaf]


def kl_bisector(
    *, weights: Optional[Dict[EdgeKey, float]] = None,
    balance_tol: float = 0.1,
    max_passes: int = 8,
) -> Bisector:
    """The paper's bisector: geometric split + KL border-node refinement."""

    def bisect(network: RoadNetwork, edges: Set[EdgeKey]):
        part_weights = (
            None if weights is None else {e: weights[e] for e in edges}
        )
        left, right = geometric_bisection(network, edges, weights=part_weights)
        left, right, _ = refine_bisection(
            network,
            left,
            right,
            weights=part_weights,
            balance_tol=balance_tol,
            max_passes=max_passes,
        )
        return left, right

    return bisect


def geometric_bisector() -> Bisector:
    """Geometric split only (no KL) — the ablation baseline partitioner."""

    def bisect(network: RoadNetwork, edges: Set[EdgeKey]):
        return geometric_bisection(network, edges)

    return bisect


def build_partition_tree(
    network: RoadNetwork,
    *,
    levels: int,
    fanout: int = 4,
    bisector: Optional[Bisector] = None,
    min_edges: int = 2,
) -> PartitionNode:
    """Partition a network into an ``levels``-deep tree of edge sets.

    Parameters
    ----------
    network:
        The road network to partition (level-0 Rnet).
    levels:
        Number of partitioning levels ``l``; level 0 is the whole network.
    fanout:
        Children per Rnet ``p`` — must be a power of two (Section 3.3).
    bisector:
        Binary splitting strategy; defaults to geometric + KL.
    min_edges:
        Parts with fewer edges stop splitting early (a 1-edge Rnet cannot
        be bisected), producing a ragged but valid hierarchy.

    Returns
    -------
    The root :class:`PartitionNode` (level 0, all edges).
    """
    if levels < 1:
        raise PartitionError("levels must be >= 1")
    if fanout < 2 or fanout & (fanout - 1):
        raise PartitionError(f"fanout must be a power of two, got {fanout}")
    if network.num_edges < 1:
        raise PartitionError("cannot partition an empty network")
    bisect = bisector if bisector is not None else kl_bisector()
    ids = itertools.count()

    all_edges = frozenset((u, v) for u, v, _ in network.edges())
    root = PartitionNode(next(ids), 0, all_edges)
    frontier = [root]
    for level in range(1, levels + 1):
        next_frontier: List[PartitionNode] = []
        for node in frontier:
            if len(node.edges) < max(min_edges, 2):
                continue  # too small to split further; stays a leaf
            parts = _split_into(network, set(node.edges), fanout, bisect)
            validate_partition(set(node.edges), parts)
            for part in parts:
                child = PartitionNode(next(ids), level, frozenset(part))
                node.children.append(child)
                next_frontier.append(child)
        frontier = next_frontier
        if not frontier:
            break
    return root


def _split_into(
    network: RoadNetwork,
    edges: Set[EdgeKey],
    fanout: int,
    bisect: Bisector,
) -> List[Set[EdgeKey]]:
    """Recursive binary splitting of ``edges`` into up to ``fanout`` parts."""
    parts: List[Set[EdgeKey]] = [edges]
    while len(parts) < fanout:
        # Split the largest part next so sizes stay balanced even when some
        # part becomes too small to bisect.
        parts.sort(key=len, reverse=True)
        largest = parts[0]
        if len(largest) < 2:
            break
        left, right = bisect(network, largest)
        if not left or not right:
            raise PartitionError("bisector returned an empty half")
        parts = [left, right] + parts[1:]
    return parts
