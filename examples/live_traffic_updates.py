#!/usr/bin/env python
"""Live traffic maintenance (Section 5): congestion without rebuilds.

A navigation service keeps one ROAD index while road conditions change all
day: edge travel costs rise with congestion, accidents close streets, and
new connections open.  Each change runs the paper's filtering-and-
refreshing scheme — only the shortcuts whose Rnets are affected get
recomputed — and every query stays exact afterwards.

Run with::

    python examples/live_traffic_updates.py
"""

import random

from repro import ROAD
from repro.graph import ca_like, dijkstra_distances
from repro.objects import place_clustered


def nearest_station(road, query_node):
    entry = road.knn(query_node, k=1)[0]
    return entry.object_id, entry.distance


def verify_exact(road, query_node, k=3) -> bool:
    """Cross-check a kNN answer against fresh Dijkstra (the oracle)."""
    network = road.network
    objects = road.directory().objects
    dist = dijkstra_distances(network.neighbours, query_node)
    truth = []
    for obj in objects:
        u, v = obj.edge
        edge_distance = network.edge_distance(u, v)
        candidates = [
            dist[n] + obj.offset_from(n, edge_distance)
            for n in (u, v)
            if n in dist
        ]
        if candidates:
            truth.append((min(candidates), obj.object_id))
    truth.sort()
    got = [e.object_id for e in road.knn(query_node, k)]
    return got == [i for _, i in truth[:k]]


def main() -> None:
    rnd = random.Random(7)
    highways = ca_like(num_nodes=1200, seed=5)
    road = ROAD.build(highways, levels=3, fanout=4)

    # Fuel stations cluster around a few towns (the uneven distribution
    # footnote 3 of the paper says ROAD benefits from).
    stations = place_clustered(highways, 30, clusters=4, seed=6)
    road.attach_objects(stations)

    commuter = 400
    station, distance = nearest_station(road, commuter)
    print(f"morning: nearest station {station} at {distance:.0f} m")

    # --- Rush hour: congestion multiplies segment costs. -----------------
    edges = sorted((u, v) for u, v, _ in highways.edges())
    refreshed = 0
    for _ in range(25):
        u, v = edges[rnd.randrange(len(edges))]
        factor = rnd.uniform(1.5, 4.0)
        report = road.update_edge_distance(
            u, v, highways.edge_distance(u, v) * factor
        )
        refreshed += report.refreshed_rnets
    print(f"rush hour: 25 congested segments, {refreshed} Rnet shortcut "
          f"sets refreshed (filter-and-refresh)")
    station, distance = nearest_station(road, commuter)
    print(f"rush hour: nearest station {station} at {distance:.0f} m")
    assert verify_exact(road, commuter), "query diverged from ground truth!"

    # --- An accident closes a street entirely. ----------------------------
    for u, v in edges:
        # pick a closable edge: no objects on it, network stays connected
        if road.directory().objects.on_edge(u, v):
            continue
        probe = highways.copy()
        probe.remove_edge(u, v)
        if probe.connected():
            report = road.remove_edge(u, v)
            print(f"accident: closed ({u}, {v}); demoted borders: "
                  f"{report.demoted_borders or 'none'}")
            break
    station, distance = nearest_station(road, commuter)
    print(f"after closure: nearest station {station} at {distance:.0f} m")
    assert verify_exact(road, commuter)

    # --- A new bypass road opens between two districts. -------------------
    a, b = 100, 900
    if not highways.has_edge(a, b):
        report = road.add_edge(a, b, 500.0)
        print(f"new bypass ({a}, {b}); promoted borders: "
              f"{report.promoted_borders or 'none'}")
    station, distance = nearest_station(road, commuter)
    print(f"after bypass: nearest station {station} at {distance:.0f} m")
    assert verify_exact(road, commuter)
    print("all answers verified against fresh Dijkstra ground truth")


if __name__ == "__main__":
    main()
