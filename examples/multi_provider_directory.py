#!/usr/bin/env python
"""Multiple content providers on one map (Sections 1 and 3.4).

The Web-LBS deployment model the paper motivates: a map service provider
maintains the network (one Route Overlay), while independent content
providers map their own objects onto it on the fly — each in its own
Association Directory.  "Depending on application needs, other objects can
be placed into the same Association Directory or in a separate [one] ...
multiple Association Directories that carry different types of objects can
be accessed simultaneously."

Queries go through one :class:`repro.serving.RoadService` front door:
``directory=`` selects the provider on every engine uniformly, and a
directory nobody attached raises a typed ``UnknownDirectoryError``
instead of being silently ignored.  Run with::

    python examples/multi_provider_directory.py
"""

from repro import (
    KNNQuery,
    Predicate,
    RangeQuery,
    ROAD,
    RoadService,
    UnknownDirectoryError,
)
from repro.core.object_abstract import bloom_abstract
from repro.graph import na_like
from repro.objects import place_clustered, place_uniform


def main() -> None:
    # The map provider's asset: network + Route Overlay, built once.
    atlas = na_like(num_nodes=2000, seed=21)
    road = ROAD.build(atlas, levels=4, fanout=4)
    service = RoadService(road)
    print(f"map service: {atlas.num_nodes} nodes indexed, "
          f"{road.overlay.page_count} overlay pages")

    # Provider 1: a hotel-booking site (typed inventory, exact abstracts).
    hotels = place_clustered(
        atlas, 60, clusters=5, seed=1,
        attr_choices={"stars": ["2", "3", "4", "5"]},
    )
    road.attach_objects(hotels, name="hotels")

    # Provider 2: an EV-charging operator (Bloom-filter abstracts: compact,
    # fine for append-mostly inventories).
    chargers = place_uniform(
        atlas, 40, seed=2, attr_choices={"plug": ["ccs", "chademo", "type2"]},
    )
    road.attach_objects(
        chargers, name="chargers", abstract_factory=bloom_abstract(num_bits=512)
    )

    # Provider 3: a roadside-assistance fleet (tiny, volatile).
    fleet = place_uniform(atlas, 8, seed=3)
    road.attach_objects(fleet, name="assistance")

    print(f"providers attached: {', '.join(sorted(road.directory_names))}")

    traveller = 1200

    # Each provider's data is queried independently over the same overlay
    # — same query objects, same service, different ``directory=``.
    print("\nnearest 4-star-or-better hotels:")
    for stars in ("4", "5"):
        query = KNNQuery(traveller, 2, Predicate.of(stars=stars))
        for entry in service.run(query, directory="hotels"):
            print(f"  {stars}* hotel {entry.object_id}: {entry.distance:.0f} m")

    print("\nCCS chargers within 15 km:")
    query = RangeQuery(traveller, 15_000.0, Predicate.of(plug="ccs"))
    found = service.run(query, directory="chargers")
    for entry in found[:5]:
        print(f"  charger {entry.object_id}: {entry.distance:.0f} m")
    print(f"  ({len(found)} total)")

    print("\nclosest assistance vehicle:")
    entry = service.run(KNNQuery(traveller, 1), directory="assistance")[0]
    print(f"  vehicle {entry.object_id}: {entry.distance:.0f} m")

    # Providers update independently: the fleet moves, hotels re-price,
    # chargers come online — the Route Overlay is never touched.
    vehicle = road.directory("assistance").objects.ids()[0]
    u, v, d = next(atlas.edges())
    road.directory("assistance").relocate(vehicle, (u, v), d / 2)
    road.update_object_attrs(
        road.directory("hotels").objects.ids()[0], {"stars": "1"},
        directory="hotels",
    )
    print("\nfleet relocated + hotel re-rated; overlay untouched "
          f"({road.overlay.page_count} pages, unchanged)")

    # Serving tier: compile ALL providers into ONE frozen snapshot.  The
    # Route Overlay entry arrays — the memory that scales with the map —
    # are built once and shared; each provider adds only its object spans
    # and abstract slots.  Compare against per-provider snapshots:
    snapshot = road.freeze(backend="compact")
    combined = snapshot.memory_stats()
    singles = sum(
        road.freeze(directory=name, backend="compact").memory_stats()[
            "total_bytes"
        ]
        for name in road.directory_names
    )
    print(f"\none frozen snapshot for {len(snapshot.directory_names)} "
          f"providers: {combined['total_bytes'] / 1024:.0f} KiB resident "
          f"vs {singles / 1024:.0f} KiB as separate snapshots "
          f"({singles / combined['total_bytes']:.1f}x saved)")
    for name, breakdown in combined["directories"].items():
        print(f"  {name}: {breakdown['object_array_bytes']} B object "
              f"arrays, {breakdown['object_refs']} slots")
    entry = snapshot.knn(traveller, 1, directory="chargers")[0]
    print(f"  (snapshot serves every provider: nearest charger "
          f"{entry.object_id} at {entry.distance:.0f} m)")

    # One provider leaving does not disturb the others — and asking for
    # it afterwards fails loudly, on every serving path.
    road.detach_objects("assistance")
    print(f"assistance provider detached; remaining: "
          f"{', '.join(sorted(road.directory_names))}")
    try:
        service.run(KNNQuery(traveller, 1), directory="assistance")
    except UnknownDirectoryError as exc:
        print(f"querying the departed provider: {exc}")
    assert service.run(KNNQuery(traveller, 1), directory="hotels")


if __name__ == "__main__":
    main()
