#!/usr/bin/env python
"""The paper's motivating scenario (Section 1): conference travel planning.

Q1: "find the nearest bus station to the conference venue"
Q2: "find hotels within 10-minute walk from the conference venue"

Q2 is a range query under a *travel-time* metric — exactly the case where
Euclidean-bound methods break (straight-line distance does not lower-bound
minutes) while ROAD's shortcuts simply carry the metric.

Run with::

    python examples/conference_travel_planner.py
"""

from repro import ROAD, Predicate
from repro.graph import sf_like, travel_time_metric
from repro.objects import place_uniform


def main() -> None:
    # A dense urban street network (San-Francisco-like), reweighted from
    # metres to walking minutes with per-street speeds.
    streets = sf_like(num_nodes=1500, seed=3)
    walk_net = travel_time_metric(streets, seed=4, speed_range=(60.0, 90.0))
    print(f"city: {walk_net.num_nodes} intersections, metric = "
          f"{walk_net.metric!r} (minutes)")

    road = ROAD.build(walk_net, levels=3, fanout=4)

    # City POIs tagged by content providers on the shared map: bus
    # stations, hotels, and restaurants, mixed in one directory.
    pois = place_uniform(
        walk_net,
        120,
        seed=9,
        attr_choices={"type": ["bus_station", "hotel", "restaurant"]},
    )
    road.attach_objects(pois)

    venue = 700  # the conference venue's nearest intersection

    # Q1 — 1NN with predicate type=bus_station.
    q1 = road.knn(venue, k=1, predicate=Predicate.of(type="bus_station"))
    station = q1[0]
    print(f"\nQ1: nearest bus station is object {station.object_id}, "
          f"{station.distance:.1f} min walk")

    # Q2 — range query: hotels within a 10-minute walk.
    q2 = road.range(venue, 10.0, Predicate.of(type="hotel"))
    print(f"\nQ2: {len(q2)} hotel(s) within a 10-minute walk:")
    for entry in q2:
        print(f"  hotel {entry.object_id}: {entry.distance:.1f} min")
    if not q2:
        nearest = road.knn(venue, k=1, predicate=Predicate.of(type="hotel"))
        if nearest:
            print(f"  (closest hotel is {nearest[0].distance:.1f} min away)")

    # Why ROAD here: the Euclidean baseline refuses this metric outright.
    from repro.baselines import EngineError, EuclideanEngine

    try:
        EuclideanEngine(walk_net, pois)
    except EngineError as exc:
        print(f"\nEuclidean baseline refuses travel time: {exc}")


if __name__ == "__main__":
    main()
