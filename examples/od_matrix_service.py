#!/usr/bin/env python
"""The network-analysis workloads end to end: a delivery dispatcher's day.

A fleet operator on a city street network asks three questions the
classic LDSQ menu cannot:

* "what does it cost to send any of my 4 depots to any of my 6 drops?"
  — an :class:`ODMatrixQuery` (one batched multi-source sweep, not 24
  point-to-point queries);
* "which restaurants can each depot reach in 5 / 10 / 15 minutes?"
  — a :class:`ServiceAreaQuery` (multi-break isochrone);
* "what's the nearest fuel stop along a driver's route?"
  — a :class:`RouteKNNQuery` (k best objects by detour distance).

All three run through the same dispatch registry as kNN/range, so they
get the frozen fast path, admission batching, replica shards, and the
JSON wire codecs for free.  The example drives each surface: sync
``run``/``run_many``, the async admission path, and a wire round-trip.

Run with::

    python examples/od_matrix_service.py
"""

import asyncio

from repro.graph import sf_like, travel_time_metric
from repro.objects import place_uniform
from repro.queries import (
    ODMatrixQuery,
    Predicate,
    RouteKNNQuery,
    ServiceAreaQuery,
)
from repro.serving import RoadService, ServiceConfig
from repro.serving.wire import decode_result, encode_query, encode_result


def main() -> None:
    # A city street network in travel-time minutes, with tagged POIs.
    streets = sf_like(num_nodes=1200, seed=11)
    minutes = travel_time_metric(streets, seed=12, speed_range=(250.0, 400.0))
    pois = place_uniform(
        minutes,
        90,
        seed=13,
        attr_choices={"type": ["restaurant", "fuel", "parking"]},
    )
    service = RoadService.build(
        minutes,
        pois,
        config=ServiceConfig(mode="frozen", levels=3, replicas=2),
    )
    nodes = sorted(minutes.node_ids())
    depots = tuple(nodes[:: len(nodes) // 4][:4])
    drops = tuple(nodes[7 :: len(nodes) // 6][:6])

    # -- OD cost matrix: 4 depots x 6 drops in one sweep ----------------
    matrix = service.run(ODMatrixQuery(depots, drops))
    print(f"OD matrix: {len(depots)}x{len(drops)} = {len(matrix)} cells")
    for row_start in range(0, len(matrix), len(drops)):
        row = matrix[row_start : row_start + len(drops)]
        cells = " ".join(f"{cell.distance:6.1f}" for cell in row)
        print(f"  depot {row[0].source:4d} -> {cells}")
    best = min(matrix, key=lambda cell: cell.distance)
    print(
        f"cheapest assignment: depot {best.source} -> drop {best.target} "
        f"({best.distance:.1f} min)\n"
    )

    # -- Service area: restaurants reachable in 5/10/15 minutes ---------
    breaks = (5.0, 10.0, 15.0)
    area = service.run(
        ServiceAreaQuery(depots[0], breaks, Predicate.of(type="restaurant"))
    )
    print(f"service area of depot {depots[0]} (breaks {breaks}):")
    for bucket, limit in enumerate(breaks):
        hits = [entry for entry in area if entry.bucket == bucket]
        print(f"  <= {limit:4.0f} min: {len(hits)} restaurants")
    print()

    # -- In-route kNN: fuel stops along a delivery route ----------------
    route = tuple(nodes[:: len(nodes) // 8][:8])
    stops = service.run(RouteKNNQuery(route, 3, Predicate.of(type="fuel")))
    print(f"nearest fuel stops along a {len(route)}-node route:")
    for entry in stops:
        print(f"  object {entry.object_id}: {entry.distance:.1f} min detour")
    print()

    # -- The async admission path answers identically -------------------
    queries = [
        ODMatrixQuery(depots, drops),
        ServiceAreaQuery(depots[0], breaks),
        RouteKNNQuery(route, 3),
    ]

    async def drive():
        return await asyncio.gather(*(service.submit(q) for q in queries))

    assert asyncio.run(drive()) == service.run_many(queries)
    print("async admission path: byte-identical to the sync primary")

    # -- And everything crosses the JSON wire losslessly ----------------
    for query in queries:
        payload = encode_query(query)
        rows = service.run(query)
        assert decode_result(encode_result(rows)) == rows
        print(f"wire round-trip ok: {payload['type']}")

    service.close()


if __name__ == "__main__":
    main()
