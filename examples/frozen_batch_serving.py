#!/usr/bin/env python
"""Serving-shaped usage: freeze the index and answer query batches.

The charged ROAD index models the paper's disk-resident storage; a server
handling heavy traffic compiles it once into a :class:`FrozenRoad` and
answers batches of mixed queries with zero simulated I/O.  Run with::

    python examples/frozen_batch_serving.py
"""

import time

from repro import ROAD, Predicate, SpatialObject
from repro.graph import grid_network
from repro.objects.placement import place_uniform
from repro.queries import mixed_workload


def main() -> None:
    # 1. A city grid with a fleet of service points on its streets.
    network = grid_network(14, 14, spacing=100.0, seed=3)
    objects = place_uniform(
        network, 60, seed=9,
        attr_choices={"type": ["cafe", "pharmacy", "fuel"]},
    )
    road = ROAD.build(network, levels=3, fanout=4)
    road.attach_objects(objects)
    print(f"index: {network.num_nodes} nodes, {len(objects)} objects")

    # 2. Freeze: compile Route Overlay + Association Directory into flat
    #    in-memory arrays.  One-off cost, reported here for scale.
    start = time.perf_counter()
    frozen = road.freeze()
    freeze_ms = (time.perf_counter() - start) * 1000.0
    print(f"freeze: {freeze_ms:.1f} ms -> {frozen.nbytes / 1024:.0f} KiB "
          f"of compiled arrays")

    # 3. A server-shaped batch: interleaved kNN and range queries over a
    #    couple of predicates.  execute_many shares the per-predicate
    #    pruning masks across the whole batch.
    queries = mixed_workload(
        network, 200, k=3, radius=600.0, seed=17,
        predicates=[Predicate.of(type="cafe"), Predicate.of(type="pharmacy")],
    )

    start = time.perf_counter()
    frozen_answers = frozen.execute_many(queries)
    frozen_ms = (time.perf_counter() - start) * 1000.0

    start = time.perf_counter()
    charged_answers = road.execute_many(queries)
    charged_ms = (time.perf_counter() - start) * 1000.0

    assert frozen_answers == charged_answers  # byte-identical, by design
    answered = sum(1 for a in frozen_answers if a)
    print(f"batch of {len(queries)} queries: frozen {frozen_ms:.1f} ms vs "
          f"charged {charged_ms:.1f} ms "
          f"({charged_ms / frozen_ms:.1f}x), identical answers, "
          f"{answered} queries non-empty")

    # 4. Serving under churn: the snapshot lifecycle.  Every maintenance
    #    call returns a MaintenanceReport naming exactly what it touched;
    #    FrozenRoad.apply() delta-patches only those CSR spans, so the
    #    server keeps answering from the *same* snapshot without ever
    #    paying a full O(network) re-freeze for a local change.
    start = time.perf_counter()
    report = road.update_edge_distance(1, 2, network.edge_distance(1, 2) * 2.5)
    outcome = frozen.apply(report)  # congestion: weights rewritten in place
    new_id = objects.next_id()
    report = road.insert_object(
        SpatialObject(new_id, (5, 6), 20.0, {"type": "fuel"})
    )
    frozen.apply(report)            # new listing: object spans spliced
    patch_ms = (time.perf_counter() - start) * 1000.0
    print(f"2 updates patched into the snapshot in {patch_ms:.2f} ms "
          f"(first outcome: {outcome}; full re-freeze was {freeze_ms:.1f} ms)")

    nearest = frozen.knn(0, 1, Predicate.of(type="fuel"))
    if nearest:
        obj = road.directory().get_object(nearest[0].object_id)
        print(f"after congestion + patch: nearest fuel from node 0 is "
              f"object {obj.object_id} at {nearest[0].distance:.0f} m")
    assert frozen.knn(0, 3) == road.knn(0, 3)  # still byte-identical

    # 5. Structural changes (new roads, closures) change border sets; the
    #    patcher detects that from the report and falls back to a full
    #    recompile by itself — apply() always leaves the snapshot exact.
    report = road.add_edge(0, network.num_nodes - 1, 950.0)
    print(f"opening a road across town: apply() -> {frozen.apply(report)}")
    assert frozen.knn(network.num_nodes - 1, 2) == road.knn(
        network.num_nodes - 1, 2
    )


if __name__ == "__main__":
    main()
