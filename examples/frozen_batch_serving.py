#!/usr/bin/env python
"""Serving-shaped usage: one RoadService front door, three serving paths.

The charged ROAD index models the paper's disk-resident storage; a server
handling heavy traffic wraps it in a :class:`repro.serving.RoadService`:
a typed :class:`ServiceConfig` selects the frozen in-memory fast path,
the async front-end admission-batches concurrent queries (coalescing
duplicates), and read-only snapshot replicas serve from worker threads —
all byte-identical to the charged path.  Run with::

    python examples/frozen_batch_serving.py
"""

import asyncio
import time

from repro import KNNQuery, Predicate, RoadService, ServiceConfig, SpatialObject
from repro.graph import grid_network
from repro.objects.placement import place_uniform
from repro.queries import mixed_workload


def main() -> None:
    # 1. A city grid with a fleet of service points on its streets.
    network = grid_network(14, 14, spacing=100.0, seed=3)
    objects = place_uniform(
        network, 60, seed=9,
        attr_choices={"type": ["cafe", "pharmacy", "fuel"]},
    )

    # 2. One config instead of REPRO_* env sprawl: frozen serving mode,
    #    patch maintenance, two read-only replicas for the worker pool.
    config = ServiceConfig(mode="frozen", levels=3, replicas=2, max_batch=256)
    start = time.perf_counter()
    service = RoadService.build(network, objects, config=config)
    build_ms = (time.perf_counter() - start) * 1000.0
    print(f"service up in {build_ms:.0f} ms: {network.num_nodes} nodes, "
          f"{len(objects)} objects, {len(service.replicas)} frozen replicas")

    # 3. A server-shaped moment: 200 in-flight queries from many users,
    #    heavily overlapping (popular predicates repeat).  The sync path
    #    batches them in one call; the async path admission-batches the
    #    same queries per predicate and coalesces duplicates.
    queries = mixed_workload(
        network, 200, k=3, radius=600.0, seed=17,
        predicates=[Predicate.of(type="cafe"), Predicate.of(type="pharmacy")],
    )

    start = time.perf_counter()
    sync_answers = service.run_many(queries)
    sync_ms = (time.perf_counter() - start) * 1000.0

    async def serve_concurrently():
        return await asyncio.gather(*(service.submit(q) for q in queries))

    start = time.perf_counter()
    async_answers = asyncio.run(serve_concurrently())
    async_ms = (time.perf_counter() - start) * 1000.0

    assert async_answers == sync_answers  # byte-identical, by design
    counters = service.stats()["service"]
    print(f"{len(queries)} concurrent queries: sync batch {sync_ms:.1f} ms, "
          f"async admission-batched {async_ms:.1f} ms on "
          f"{len(service.replicas)} replicas "
          f"({counters['coalesced']} duplicates coalesced, "
          f"{counters['batches']} execute_many calls)")

    # 4. Serving under churn: maintenance goes through the service, which
    #    patch-broadcasts each MaintenanceReport to every replica — the
    #    shards never drift, and nobody pays a full re-freeze.
    start = time.perf_counter()
    service.update_edge_distance(1, 2, network.edge_distance(1, 2) * 2.5)
    service.insert_object(
        SpatialObject(objects.next_id(), (5, 6), 20.0, {"type": "fuel"})
    )
    patch_ms = (time.perf_counter() - start) * 1000.0
    print(f"2 updates patched into engine + {len(service.replicas)} replicas "
          f"in {patch_ms:.2f} ms")

    nearest = service.run(KNNQuery(0, 1, Predicate.of(type="fuel")))
    if nearest:
        print(f"after congestion + patch: nearest fuel from node 0 is "
              f"object {nearest[0].object_id} at {nearest[0].distance:.0f} m")

    # 5. Still byte-identical across paths after maintenance.
    post_sync = service.run_many(queries)
    post_async = asyncio.run(serve_concurrently())
    assert post_async == post_sync
    print("post-maintenance answers identical across sync and async paths")
    service.close()


if __name__ == "__main__":
    main()
