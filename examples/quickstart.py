#!/usr/bin/env python
"""Quickstart: build a ROAD index, attach objects, run both LDSQs.

Run with::

    python examples/quickstart.py
"""

from repro import ROAD, Predicate, SpatialObject
from repro.graph import grid_network
from repro.objects import ObjectSet


def main() -> None:
    # 1. A road network: a 12x12 city grid (ids are row-major; edge weights
    #    are street lengths in metres).  Any `RoadNetwork` works here —
    #    load real files with `repro.graph.load_network`.
    network = grid_network(12, 12, spacing=100.0, seed=42)
    print(f"network: {network.num_nodes} intersections, "
          f"{network.num_edges} road segments")

    # 2. Build the ROAD framework: a 3-level hierarchy of Rnets (p=4),
    #    shortcuts between border nodes, and the Route Overlay index.
    road = ROAD.build(network, levels=3, fanout=4)
    stats = road.stats()
    print(f"index: {stats['rnets']} Rnets over {stats['levels']} levels, "
          f"{stats['shortcuts_stored']} stored shortcuts, "
          f"built in {stats['build_seconds']:.2f}s")

    # 3. Objects from a content provider: restaurants placed on edges, with
    #    attributes the attribute predicate `A` can match on.
    restaurants = ObjectSet(
        [
            SpatialObject(1, (0, 1), 40.0, {"type": "seafood", "name": "Wharf"}),
            SpatialObject(2, (40, 41), 10.0, {"type": "sushi", "name": "Ebisu"}),
            SpatialObject(3, (77, 78), 55.0, {"type": "seafood", "name": "Pier"}),
            SpatialObject(4, (100, 101), 5.0, {"type": "diner", "name": "Mel's"}),
            SpatialObject(5, (130, 131), 80.0, {"type": "sushi", "name": "Kama"}),
        ]
    )
    road.attach_objects(restaurants)

    # 4. kNN query: the three nearest restaurants from intersection 65.
    query_node = 65
    print(f"\n3 nearest restaurants from node {query_node}:")
    for entry in road.knn(query_node, k=3):
        obj = road.directory().get_object(entry.object_id)
        print(f"  {obj.attr('name'):>6} ({obj.attr('type')}), "
              f"{entry.distance:.0f} m away")

    # 5. Range query with an attribute predicate: seafood within 800 m.
    print(f"\nseafood within 800 m of node {query_node}:")
    for entry in road.range(query_node, 800.0, Predicate.of(type="seafood")):
        obj = road.directory().get_object(entry.object_id)
        print(f"  {obj.attr('name'):>6}, {entry.distance:.0f} m away")

    # 6. Everything stays correct under updates: a road doubles in length
    #    (congestion), an object moves.
    road.update_edge_distance(65, 66, network.edge_distance(65, 66) * 2)
    road.directory().relocate(4, (64, 65), 20.0)
    print(f"\nafter updates, nearest is: ", end="")
    entry = road.knn(query_node, k=1)[0]
    obj = road.directory().get_object(entry.object_id)
    print(f"{obj.attr('name')} at {entry.distance:.0f} m")


if __name__ == "__main__":
    main()
