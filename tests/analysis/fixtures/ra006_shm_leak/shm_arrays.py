"""RA006 seeded violations inside the gate module itself.

Two segment-owning classes with broken lifecycles: one whose ``close``
never drops the mapping, and one that unlinks without an owner guard.
"""

from multiprocessing.shared_memory import SharedMemory

HEADER_BYTES = 16


class LeakyVector:
    """Mapping leak: ``close`` releases the view but not the segment."""

    def __init__(self, size):
        self._shm = SharedMemory(create=True, size=size)
        self._head = self._shm.buf[:HEADER_BYTES]

    def close(self):
        # BAD: no .close() on the segment; the mapping outlives the
        # vector until process exit.
        self._head = None
        if self._shm is not None:
            self._shm.unlink()


class EagerVector:
    """Destroys the shared name even when this process only attached."""

    def __init__(self, size):
        self._shm = SharedMemory(create=True, size=size)

    def close(self):
        self._shm.close()
        # BAD: unguarded unlink — an attacher destroys the segment under
        # the owner and every sibling worker.
        self._shm.unlink()
