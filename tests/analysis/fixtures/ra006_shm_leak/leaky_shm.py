"""RA006 seeded violation: a raw segment created outside the storage layer.

Ad-hoc ``SharedMemory`` segments bypass ``ShmVector``'s single
close/unlink path — nothing tracks who owns them, and the process pool's
reload protocol never sees their names change.
"""

from multiprocessing.shared_memory import SharedMemory


def scratch_segment(nbytes):
    # BAD: raw segment constructed outside the gated shm storage module.
    return SharedMemory(create=True, size=nbytes)
