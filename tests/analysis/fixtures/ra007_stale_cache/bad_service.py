"""Seeded RA007 violations: maintenance entry points that skip the cache.

``update_edge_distance`` and ``insert_object`` route through the
invalidation helper — the clean shape.  ``delete_object``, ``add_edge``
and ``_rebuild_replicas`` mutate what cached answers were computed from
without ever reaching an invalidator: three findings.
"""


class ResultCache:
    def __init__(self):
        self._entries = {}

    def invalidate_report(self, report):
        self._entries = {}

    def invalidate_directory(self, directory):
        self._entries = {}

    def clear_all(self):
        self._entries = {}


class MiniService:
    def __init__(self, executor):
        self._executor = executor
        self._cache = ResultCache()
        self._shards = []

    def update_edge_distance(self, u, v, distance):
        report = self._executor.reweigh(u, v, distance)
        self._invalidate(report)
        return report

    def insert_object(self, obj):
        report = self._executor.list_object(obj)
        self._invalidate(report)
        return report

    def delete_object(self, object_id):  # BUG: cached answers keep it
        return self._executor.delist_object(object_id)

    def add_edge(self, u, v, distance):  # BUG: structural, still cached
        return self._executor.open_segment(u, v, distance)

    def _rebuild_replicas(self):  # BUG: new snapshots, old answers
        self._shards = [self._executor.refreeze()]

    def _invalidate(self, report):
        self._cache.invalidate_report(report)
