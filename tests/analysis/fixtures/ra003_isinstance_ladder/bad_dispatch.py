"""RA003 seeded violation: a per-engine ``isinstance`` dispatch ladder.

The shape PR 4 removed — each branch silently falls through when a new
query type is added instead of raising ``UnsupportedQueryError``.
"""


class KNNQuery:
    pass


class RangeQuery:
    pass


def execute(engine, query):
    # BAD: dispatch must go through @register_handler / lookup_handler.
    if isinstance(query, KNNQuery):
        return engine.knn(query.node, query.k)
    if isinstance(query, (RangeQuery, tuple)):
        return engine.range(query.node, query.radius)
    raise TypeError(query)
