"""RA004 seeded violations: buffer views outliving a resizing patch.

Two breaches: ``apply`` runs a resizing step without dropping the cached
views first (a live export makes the splice raise ``BufferError``), and
an ad-hoc ``memoryview`` is built outside the registered view factories,
invisible to ``_drop_views``.
"""


class FrozenRoad:
    def __init__(self):
        self._views = None

    def apply(self, report, road=None):
        # BAD: resizing recompile with cached views still alive.
        self._recompile(road)
        return "recompiled"

    def _drop_views(self):
        self._views = None

    def _recompile(self, road):
        pass


def peek_first_slot(arr):
    # BAD: ad-hoc zero-copy view outside the registered factories.
    return memoryview(arr)[0]
