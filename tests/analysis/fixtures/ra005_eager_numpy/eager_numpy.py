"""RA005 seeded violation: a top-level numpy import outside the gate.

This module is never imported (only parsed); the eager import would
break every numpy-less install that transitively imports it.
"""

import numpy as np  # BAD: must go through repro._optional.require_numpy


def accelerate(values):
    return np.asarray(values).sum()
