"""RA002 seeded violations: replica state touched without its lock.

Three distinct breaches of the serving layer's lock discipline, one per
clause of the rule: an unlocked element write, a wholesale rebind
outside setup, and loop-confined admission state written while holding
a replica lock.
"""

import threading


class BadService:
    def __init__(self):
        self._replicas = [None]
        self._replica_locks = [threading.Lock()]
        self._pending_count = 0

    def hot_swap(self, index, snapshot):
        # BAD: element write without `with self._replica_locks[index]:`.
        self._replicas[index] = snapshot

    def grow_pool(self, snapshot):
        # BAD: container rebind outside __init__/_init_replicas.
        self._replicas = [*self._replicas, snapshot]

    def drain(self, index):
        with self._replica_locks[index]:
            # BAD: admission state is event-loop-confined; a worker
            # thread holding a replica lock must not touch it.
            self._pending_count = 0

    def locked_swap(self, index, snapshot):
        # GOOD: the shape the rule accepts — must NOT be flagged.
        with self._replica_locks[index]:
            self._replicas[index] = snapshot
