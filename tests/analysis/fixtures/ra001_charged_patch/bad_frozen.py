"""RA001 seeded violation: a patch path that calls a charged accessor.

``apply`` reaches ``_recompile`` (self-call), whose bulk export goes
through the charged ``export_entries`` instead of ``peek_entries`` —
exactly the drift the rule exists to catch.  ``_drop_views`` is called
first so this fixture trips RA001 and only RA001.
"""


class FrozenRoad:
    def __init__(self):
        self._views = None

    def apply(self, report, road=None):
        self._drop_views()
        self._recompile(road)
        return "recompiled"

    def _drop_views(self):
        self._views = None

    def _recompile(self, road):
        # BAD: charged bulk export on the uncharged patch path.
        return road.directory("objects").export_entries()
