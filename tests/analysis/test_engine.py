"""Engine/framework checks: registry, explain text, project model."""

from pathlib import Path

import pytest

from repro.analysis import (
    AnalysisError,
    Finding,
    Project,
    Rule,
    all_rules,
    get_rule,
    register_rule,
    run_rules,
)

EXPECTED_RULES = (
    "RA001", "RA002", "RA003", "RA004", "RA005", "RA006", "RA007"
)


def test_all_rules_registered_in_report_order():
    assert tuple(rule.id for rule in all_rules()) == EXPECTED_RULES


def test_get_rule_is_case_insensitive():
    assert get_rule("ra004").id == "RA004"
    assert get_rule("RA004") is get_rule("ra004")


def test_get_rule_unknown_raises_analysis_error():
    with pytest.raises(AnalysisError, match="RA999"):
        get_rule("RA999")


def test_double_registration_raises():
    class Duplicate(Rule):
        id = "RA001"
        title = "impostor"

        def check(self, project):
            return []

    with pytest.raises(AnalysisError, match="RA001"):
        register_rule(Duplicate)


def test_every_rule_explains_why_and_how():
    for rule in all_rules():
        text = rule.explain()
        assert "Why:" in text, rule.id
        assert "How it checks" in text, rule.id
        assert "How to fix" in text, rule.id


def test_finding_format_is_path_line_rule_message():
    finding = Finding("RA001", "core/frozen.py", 42, "boom")
    assert finding.format() == "core/frozen.py:42: RA001 boom"


def test_run_rules_filters_by_rule_id(tmp_path):
    (tmp_path / "mod.py").write_text("import numpy\n")
    project = Project.load(tmp_path)
    assert {f.rule for f in run_rules(project)} == {"RA005"}
    assert run_rules(project, rule_ids=["RA001"]) == []


# ---------------------------------------------------------------------------
# Project model: module naming and the approximate call graph.
# ---------------------------------------------------------------------------

def test_project_load_derives_package_dotted_names():
    import repro

    project = Project.load(Path(repro.__file__).parent)
    assert "repro.core.frozen" in project.modules
    assert "repro.serving.dispatch" in project.modules
    assert "repro" in project.modules  # the package __init__


def test_call_graph_reaches_through_self_calls(tmp_path):
    (tmp_path / "m.py").write_text(
        "class C:\n"
        "    def top(self):\n"
        "        self.middle()\n"
        "    def middle(self):\n"
        "        helper()\n"
        "def helper():\n"
        "    pass\n"
    )
    project = Project.load(tmp_path)
    roots = project.find_methods("C", ["top"])
    came_from = project.reachable(roots)
    assert "m:helper" in came_from
    assert project.trace(came_from, "m:helper") == [
        "m:C.top",
        "m:C.middle",
        "m:helper",
    ]


def test_call_graph_skips_generic_and_rule_supplied_names(tmp_path):
    (tmp_path / "m.py").write_text(
        "class A:\n"
        "    def items(self):\n"
        "        pass\n"
        "    def custom(self):\n"
        "        pass\n"
        "class B:\n"
        "    def root(self):\n"
        "        x.items()\n"
        "        x.custom()\n"
    )
    project = Project.load(tmp_path)
    roots = project.find_methods("B", ["root"])
    # `items` is generic (never followed); `custom` resolves by name.
    assert "m:A.custom" in project.reachable(roots)
    assert "m:A.items" not in project.reachable(roots)
    # A rule-supplied skip name prunes the edge.
    assert "m:A.custom" not in project.reachable(roots, skip_names=["custom"])


def test_nested_defs_shadow_module_functions(tmp_path):
    (tmp_path / "m.py").write_text(
        "def helper():\n"
        "    pass\n"
        "def outer():\n"
        "    def helper():\n"
        "        pass\n"
        "    helper()\n"
    )
    project = Project.load(tmp_path)
    fn = project.functions["m:outer"]
    (resolved,) = project.resolve_call(fn, fn.calls[0])
    assert resolved.qualname == "m:outer.helper"
