"""Per-rule checks: each seeded-violation fixture trips its rule (and
only its rule), and the matching clean shape passes.

The fixtures under ``tests/analysis/fixtures/`` are the executable
specification of what every rule catches; the CLI suite re-runs them
through ``python -m repro.analysis`` to pin the exit codes.
"""

from pathlib import Path

import pytest

from repro.analysis import analyze_path

FIXTURES = Path(__file__).parent / "fixtures"

#: fixture directory -> (rule expected to fire, findings it must seed).
SEEDED = {
    "ra001_charged_patch": ("RA001", 1),
    "ra002_unlocked_write": ("RA002", 3),
    "ra003_isinstance_ladder": ("RA003", 2),
    "ra004_missing_drop": ("RA004", 2),
    "ra005_eager_numpy": ("RA005", 1),
    "ra006_shm_leak": ("RA006", 3),
    "ra007_stale_cache": ("RA007", 3),
}


@pytest.mark.parametrize("fixture", sorted(SEEDED))
def test_fixture_trips_exactly_its_rule(fixture):
    rule_id, count = SEEDED[fixture]
    findings = analyze_path(FIXTURES / fixture)
    assert len(findings) == count, [f.format() for f in findings]
    assert {f.rule for f in findings} == {rule_id}


@pytest.mark.parametrize("fixture", sorted(SEEDED))
def test_fixture_is_quiet_under_every_other_rule(fixture):
    rule_id, _ = SEEDED[fixture]
    others = sorted(set(r for r, _ in SEEDED.values()) - {rule_id})
    assert analyze_path(FIXTURES / fixture, rule_ids=others) == []


def test_findings_carry_fixture_relative_paths_and_lines():
    findings = analyze_path(FIXTURES / "ra002_unlocked_write")
    assert [f.path for f in findings] == ["bad_service.py"] * 3
    assert [f.line for f in findings] == sorted(f.line for f in findings)
    for finding in findings:
        assert finding.format().startswith(f"bad_service.py:{finding.line}: RA002 ")


# ---------------------------------------------------------------------------
# Clean counterparts: the locked/gated/registered shapes must not fire.
# ---------------------------------------------------------------------------

def _check(tmp_path, source, rule_id):
    (tmp_path / "module.py").write_text(source)
    return analyze_path(tmp_path, rule_ids=[rule_id])


def test_ra001_peek_family_is_pure(tmp_path):
    assert _check(
        tmp_path,
        "class FrozenRoad:\n"
        "    def apply(self, report, road=None):\n"
        "        self._recompile(road)\n"
        "    def _recompile(self, road):\n"
        "        return road.directory('objects').peek_entries()\n",
        "RA001",
    ) == []


def test_ra002_locked_writes_pass(tmp_path):
    assert _check(
        tmp_path,
        "class Service:\n"
        "    def __init__(self):\n"
        "        self._replicas = [None]\n"
        "        self._replica_locks = [object()]\n"
        "    def swap(self, index, snapshot):\n"
        "        with self._replica_locks[index]:\n"
        "            self._replicas[index] = snapshot\n",
        "RA002",
    ) == []


def test_ra002_ignores_classes_without_replica_locks(tmp_path):
    assert _check(
        tmp_path,
        "class Plain:\n"
        "    def __init__(self):\n"
        "        self._replicas = [None]\n"
        "    def swap(self, index, snapshot):\n"
        "        self._replicas[index] = snapshot\n",
        "RA002",
    ) == []


def test_ra003_non_query_isinstance_passes(tmp_path):
    assert _check(
        tmp_path,
        "def coerce(value):\n"
        "    if isinstance(value, str):\n"
        "        return value\n"
        "    return str(value)\n",
        "RA003",
    ) == []


def test_ra004_drop_before_resize_passes(tmp_path):
    assert _check(
        tmp_path,
        "class FrozenRoad:\n"
        "    def apply(self, report):\n"
        "        self._drop_views()\n"
        "        self._recompile(report)\n"
        "    def _drop_views(self):\n"
        "        self._views = None\n"
        "    def _recompile(self, report):\n"
        "        pass\n",
        "RA004",
    ) == []


def test_ra006_owner_guarded_lifecycle_passes(tmp_path):
    (tmp_path / "shm_arrays.py").write_text(
        "from multiprocessing.shared_memory import SharedMemory\n"
        "class Vector:\n"
        "    def __init__(self, size):\n"
        "        self._shm = SharedMemory(create=True, size=size)\n"
        "        self._owner = True\n"
        "    def close(self):\n"
        "        self._shm.close()\n"
        "        if self._owner:\n"
        "            self._shm.unlink()\n"
    )
    assert analyze_path(tmp_path, rule_ids=["RA006"]) == []


def test_ra007_invalidating_entry_points_pass(tmp_path):
    assert _check(
        tmp_path,
        "class ResultCache:\n"
        "    def invalidate_report(self, report): pass\n"
        "    def invalidate_directory(self, directory): pass\n"
        "    def clear_all(self): pass\n"
        "class Service:\n"
        "    def __init__(self):\n"
        "        self._cache = ResultCache()\n"
        "    def add_edge(self, u, v, distance):\n"
        "        report = self._executor.open_segment(u, v, distance)\n"
        "        self._invalidate(report)\n"
        "        return report\n"
        "    def _rebuild_replicas(self):\n"
        "        self._cache.clear_all()\n"
        "    def _invalidate(self, report):\n"
        "        self._cache.invalidate_report(report)\n",
        "RA007",
    ) == []


def test_ra007_cacheless_classes_are_exempt(tmp_path):
    # Engines and pools have maintenance entry points but no cache to
    # invalidate — the rule only binds classes that hold one.
    assert _check(
        tmp_path,
        "class ResultCache:\n"
        "    def invalidate_report(self, report): pass\n"
        "    def clear_all(self): pass\n"
        "class Engine:\n"
        "    def add_edge(self, u, v, distance):\n"
        "        return self._network.open_segment(u, v, distance)\n",
        "RA007",
    ) == []


def test_ra007_inert_without_a_result_cache(tmp_path):
    assert _check(
        tmp_path,
        "class Service:\n"
        "    def add_edge(self, u, v, distance):\n"
        "        return self._executor.open_segment(u, v, distance)\n",
        "RA007",
    ) == []


def test_ra005_type_checking_guard_passes(tmp_path):
    assert _check(
        tmp_path,
        "from typing import TYPE_CHECKING\n"
        "if TYPE_CHECKING:\n"
        "    import numpy as np\n",
        "RA005",
    ) == []


def test_ra005_gate_module_is_allowed(tmp_path):
    (tmp_path / "_optional.py").write_text("import numpy\n")
    assert analyze_path(tmp_path, rule_ids=["RA005"]) == []


# ---------------------------------------------------------------------------
# The real tree: every invariant the rules encode actually holds.
# ---------------------------------------------------------------------------

def test_real_package_is_clean():
    import repro

    root = Path(repro.__file__).parent
    findings = analyze_path(root)
    assert findings == [], [f.format() for f in findings]
