"""CLI contract of ``python -m repro.analysis`` — the CI gate's surface.

Exit codes are the contract CI leans on: 0 clean, 1 findings, 2 usage
errors.  Every seeded-violation fixture must drive the real CLI to a
nonzero exit.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

import repro

FIXTURES = Path(__file__).parent / "fixtures"
PACKAGE_ROOT = Path(repro.__file__).parent


def run_cli(*args):
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis", *map(str, args)],
        capture_output=True,
        text=True,
    )


def test_real_tree_exits_zero():
    result = run_cli(PACKAGE_ROOT)
    assert result.returncode == 0, result.stdout + result.stderr
    assert "clean" in result.stdout


@pytest.mark.parametrize(
    "fixture", sorted(p.name for p in FIXTURES.iterdir() if p.is_dir())
)
def test_each_seeded_fixture_exits_nonzero(fixture):
    result = run_cli(FIXTURES / fixture)
    assert result.returncode == 1, result.stdout + result.stderr
    rule_id = fixture.split("_")[0].upper()
    assert rule_id in result.stdout


def test_rule_filter_selects_one_rule():
    fixture = FIXTURES / "ra002_unlocked_write"
    assert run_cli(fixture, "--rule", "RA002").returncode == 1
    assert run_cli(fixture, "--rule", "RA001").returncode == 0


def test_json_output_is_machine_readable():
    result = run_cli(FIXTURES / "ra005_eager_numpy", "--json")
    assert result.returncode == 1
    (finding,) = json.loads(result.stdout)
    assert finding["rule"] == "RA005"
    assert finding["path"] == "eager_numpy.py"
    assert finding["line"] == 7


def test_explain_prints_rationale_and_exits_zero():
    result = run_cli("--explain", "RA001")
    assert result.returncode == 0
    assert "Why:" in result.stdout
    assert "How to fix" in result.stdout


def test_list_names_every_rule():
    result = run_cli("--list")
    assert result.returncode == 0
    for rule_id in ("RA001", "RA002", "RA003", "RA004", "RA005"):
        assert rule_id in result.stdout


def test_unknown_rule_is_a_usage_error():
    assert run_cli("--explain", "RA999").returncode == 2
    assert run_cli(PACKAGE_ROOT, "--rule", "NOPE").returncode == 2


def test_missing_root_is_a_usage_error(tmp_path):
    assert run_cli(tmp_path / "does-not-exist").returncode == 2
