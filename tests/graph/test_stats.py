"""Network statistics summary."""

import pytest

from repro.graph.generators import chain_network, grid_network
from repro.graph.stats import network_stats


class TestNetworkStats:
    def test_grid_stats(self):
        net = grid_network(4, 4, seed=0)
        stats = network_stats(net)
        assert stats.num_nodes == 16
        assert stats.num_edges == 24
        assert stats.edge_node_ratio == pytest.approx(1.5)
        assert stats.avg_degree == pytest.approx(3.0)
        assert stats.max_degree == 4
        assert stats.connected

    def test_chain_diameter(self):
        stats = network_stats(chain_network(10, spacing=5.0))
        assert stats.diameter == pytest.approx(45.0)
        assert stats.total_length == pytest.approx(45.0)

    def test_disconnected_flag(self):
        net = grid_network(3, 3, seed=0)
        net.add_node(100)
        assert not network_stats(net).connected

    def test_describe_mentions_counts(self):
        text = network_stats(grid_network(3, 3, seed=0)).describe()
        assert "9 nodes" in text
        assert "12 edges" in text
