"""Shortest paths: Dijkstra and A* against networkx oracles."""

import math
import random

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.network import RoadNetwork
from repro.graph.shortest_path import (
    Unreachable,
    astar,
    dijkstra,
    dijkstra_distances,
    estimate_diameter,
    euclidean_heuristic,
    network_distance,
    reconstruct_path,
    shortest_path,
)
from tests.conftest import random_connected_network


def to_networkx(network: RoadNetwork) -> nx.Graph:
    g = nx.Graph()
    for u, v, d in network.edges():
        g.add_edge(u, v, weight=d)
    for n in network.node_ids():
        g.add_node(n)
    return g


@pytest.fixture
def diamond() -> RoadNetwork:
    """Two routes from 1 to 4: 1-2-4 (cost 3) and 1-3-4 (cost 4)."""
    net = RoadNetwork()
    for i, (x, y) in enumerate([(0, 0), (1, 1), (1, -1), (2, 0)], start=1):
        net.add_node(i, x, y)
    net.add_edge(1, 2, 1.0)
    net.add_edge(2, 4, 2.0)
    net.add_edge(1, 3, 1.5)
    net.add_edge(3, 4, 2.5)
    return net


class TestDijkstra:
    def test_distances_on_diamond(self, diamond):
        dist = dijkstra_distances(diamond.neighbours, 1)
        assert dist == pytest.approx({1: 0.0, 2: 1.0, 3: 1.5, 4: 3.0})

    def test_predecessors_reconstruct_path(self, diamond):
        dist, pred = dijkstra(diamond.neighbours, 1)
        assert reconstruct_path(pred, 1, 4) == [1, 2, 4]

    def test_early_exit_on_targets(self, diamond):
        dist, _ = dijkstra(diamond.neighbours, 1, targets={2})
        assert 2 in dist
        # Early exit stops settling once targets are done; node 4 (farther
        # than 2) must not be settled.
        assert 4 not in dist

    def test_cutoff_excludes_far_nodes(self, diamond):
        dist = dijkstra_distances(diamond.neighbours, 1, cutoff=1.6)
        assert set(dist) == {1, 2, 3}

    def test_cutoff_zero_keeps_source_only(self, diamond):
        assert set(dijkstra_distances(diamond.neighbours, 1, cutoff=0.0)) == {1}

    def test_unreachable_node_absent(self, diamond):
        diamond.add_node(99)
        dist = dijkstra_distances(diamond.neighbours, 1)
        assert 99 not in dist

    def test_shortest_path_distance_and_sequence(self, diamond):
        distance, path = shortest_path(diamond, 1, 4)
        assert distance == pytest.approx(3.0)
        assert path == [1, 2, 4]

    def test_shortest_path_unreachable_raises(self, diamond):
        diamond.add_node(99)
        with pytest.raises(Unreachable):
            shortest_path(diamond, 1, 99)

    def test_network_distance(self, diamond):
        assert network_distance(diamond, 1, 4) == pytest.approx(3.0)

    def test_matches_networkx_on_random_networks(self, rng):
        for _trial in range(5):
            net = random_connected_network(rng, 60, 40)
            source = rng.randrange(60)
            ours = dijkstra_distances(net.neighbours, source)
            theirs = nx.single_source_dijkstra_path_length(
                to_networkx(net), source
            )
            assert set(ours) == set(theirs)
            for node, d in theirs.items():
                assert ours[node] == pytest.approx(d)


class TestAStar:
    def test_astar_equals_dijkstra_with_euclidean_heuristic(self, rng):
        for _trial in range(5):
            net = random_connected_network(rng, 50, 30)
            # make weights dominate Euclidean so the heuristic is admissible
            for u, v, _ in list(net.edges()):
                net.update_edge(u, v, net.euclidean(u, v) + rng.uniform(0.1, 5.0))
            s, t = rng.randrange(50), rng.randrange(50)
            expected = dijkstra_distances(net.neighbours, s, targets={t})[t]
            got, path = astar(
                net.neighbours, s, t, euclidean_heuristic(net, t)
            )
            assert got == pytest.approx(expected)
            assert path[0] == s and path[-1] == t

    def test_astar_zero_heuristic_is_dijkstra(self, diamond):
        got, path = astar(diamond.neighbours, 1, 4, lambda n: 0.0)
        assert got == pytest.approx(3.0)
        assert path == [1, 2, 4]

    def test_astar_unreachable_raises(self, diamond):
        diamond.add_node(99)
        with pytest.raises(Unreachable):
            astar(diamond.neighbours, 1, 99, lambda n: 0.0)

    def test_astar_path_edges_exist(self, diamond):
        _, path = astar(diamond.neighbours, 1, 4, euclidean_heuristic(diamond, 4))
        for a, b in zip(path, path[1:]):
            assert diamond.has_edge(a, b)


class TestDiameter:
    def test_chain_diameter_exact(self, chain13):
        assert estimate_diameter(chain13) == pytest.approx(12 * 100.0)

    def test_estimate_lower_bounds_true_diameter(self, rng):
        net = random_connected_network(rng, 40, 20)
        estimate = estimate_diameter(net, sweeps=3)
        g = to_networkx(net)
        true_diameter = max(
            max(lengths.values())
            for _, lengths in nx.all_pairs_dijkstra_path_length(g)
        )
        assert estimate <= true_diameter + 1e-9
        assert estimate >= 0.5 * true_diameter  # double sweep is a good bound

    def test_empty_network(self):
        assert estimate_diameter(RoadNetwork()) == 0.0


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_dijkstra_property_vs_networkx(seed):
    """Property: distances equal networkx on random connected networks."""
    rnd = random.Random(seed)
    net = random_connected_network(rnd, 30, 15)
    source = rnd.randrange(30)
    ours = dijkstra_distances(net.neighbours, source)
    theirs = nx.single_source_dijkstra_path_length(to_networkx(net), source)
    assert set(ours) == set(theirs)
    for node, d in theirs.items():
        assert math.isclose(ours[node], d, rel_tol=1e-9, abs_tol=1e-9)
