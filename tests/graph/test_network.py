"""RoadNetwork model: construction rules, mutation, derived views."""

import pytest

from repro.graph.network import NetworkError, RoadNetwork, edge_key


@pytest.fixture
def triangle() -> RoadNetwork:
    net = RoadNetwork()
    net.add_node(1, 0, 0)
    net.add_node(2, 3, 0)
    net.add_node(3, 0, 4)
    net.add_edge(1, 2, 3.0)
    net.add_edge(1, 3, 4.0)
    net.add_edge(2, 3, 5.0)
    return net


class TestConstruction:
    def test_counts(self, triangle):
        assert triangle.num_nodes == 3
        assert triangle.num_edges == 3

    def test_duplicate_node_rejected(self, triangle):
        with pytest.raises(NetworkError):
            triangle.add_node(1)

    def test_duplicate_edge_rejected(self, triangle):
        with pytest.raises(NetworkError):
            triangle.add_edge(2, 1, 9.0)  # same undirected edge

    def test_self_loop_rejected(self, triangle):
        with pytest.raises(NetworkError):
            triangle.add_edge(1, 1, 1.0)

    def test_non_positive_distance_rejected(self, triangle):
        triangle.add_node(4)
        with pytest.raises(NetworkError):
            triangle.add_edge(1, 4, 0.0)
        with pytest.raises(NetworkError):
            triangle.add_edge(1, 4, -2.0)

    def test_edge_to_missing_node_rejected(self, triangle):
        with pytest.raises(NetworkError):
            triangle.add_edge(1, 99, 1.0)

    def test_edge_key_is_canonical(self):
        assert edge_key(5, 2) == edge_key(2, 5) == (2, 5)

    def test_metric_label(self):
        assert RoadNetwork(metric="travel_time").metric == "travel_time"


class TestAccess:
    def test_neighbours_symmetric(self, triangle):
        assert dict(triangle.neighbours(1)) == {2: 3.0, 3: 4.0}
        assert dict(triangle.neighbours(2)) == {1: 3.0, 3: 5.0}

    def test_degree(self, triangle):
        assert triangle.degree(1) == 2

    def test_edge_distance_both_directions(self, triangle):
        assert triangle.edge_distance(1, 2) == 3.0
        assert triangle.edge_distance(2, 1) == 3.0

    def test_edges_iterates_each_once(self, triangle):
        edges = list(triangle.edges())
        assert len(edges) == 3
        assert all(u < v for u, v, _ in edges)

    def test_missing_node_access_raises(self, triangle):
        with pytest.raises(NetworkError):
            triangle.neighbours(99)
        with pytest.raises(NetworkError):
            triangle.degree(99)
        with pytest.raises(NetworkError):
            triangle.coords(99)

    def test_missing_edge_distance_raises(self, triangle):
        triangle.add_node(4)
        with pytest.raises(NetworkError):
            triangle.edge_distance(1, 4)

    def test_euclidean(self, triangle):
        assert triangle.euclidean(2, 3) == pytest.approx(5.0)

    def test_bounding_box(self, triangle):
        assert triangle.bounding_box() == (0, 0, 3, 4)

    def test_empty_bounding_box_raises(self):
        with pytest.raises(NetworkError):
            RoadNetwork().bounding_box()

    def test_total_edge_distance(self, triangle):
        assert triangle.total_edge_distance() == pytest.approx(12.0)


class TestMutation:
    def test_update_edge_returns_old(self, triangle):
        old = triangle.update_edge(1, 2, 10.0)
        assert old == 3.0
        assert triangle.edge_distance(2, 1) == 10.0

    def test_update_missing_edge_raises(self, triangle):
        triangle.add_node(4)
        with pytest.raises(NetworkError):
            triangle.update_edge(1, 4, 5.0)

    def test_update_rejects_non_positive(self, triangle):
        with pytest.raises(NetworkError):
            triangle.update_edge(1, 2, 0.0)

    def test_remove_edge_returns_distance(self, triangle):
        assert triangle.remove_edge(1, 2) == 3.0
        assert not triangle.has_edge(1, 2)
        assert triangle.num_edges == 2

    def test_remove_missing_edge_raises(self, triangle):
        triangle.remove_edge(1, 2)
        with pytest.raises(NetworkError):
            triangle.remove_edge(1, 2)

    def test_remove_node_drops_incident_edges(self, triangle):
        triangle.remove_node(1)
        assert triangle.num_nodes == 2
        assert triangle.num_edges == 1
        assert not triangle.has_node(1)

    def test_set_coords(self, triangle):
        triangle.set_coords(1, 10.0, 20.0)
        assert triangle.coords(1) == (10.0, 20.0)


class TestDerivedViews:
    def test_copy_is_independent(self, triangle):
        dup = triangle.copy()
        dup.update_edge(1, 2, 99.0)
        assert triangle.edge_distance(1, 2) == 3.0
        assert dup.num_nodes == triangle.num_nodes

    def test_edge_subgraph(self, triangle):
        sub = triangle.edge_subgraph([(1, 2), (1, 3)])
        assert sub.num_nodes == 3
        assert sub.num_edges == 2
        assert not sub.has_edge(2, 3)

    def test_connected_detection(self, triangle):
        assert triangle.connected()
        triangle.add_node(99)
        assert not triangle.connected()

    def test_empty_network_is_connected(self):
        assert RoadNetwork().connected()

    def test_components(self, triangle):
        triangle.add_node(50)
        triangle.add_node(51)
        triangle.add_edge(50, 51, 1.0)
        comps = sorted(triangle.components(), key=len)
        assert len(comps) == 2
        assert comps[0] == {50, 51}
        assert comps[1] == {1, 2, 3}
