"""Network file I/O: round-trips and format errors."""

import pytest

from repro.graph.generators import grid_network
from repro.graph.io import NetworkFormatError, load_network, save_network


class TestRoundTrip:
    def test_save_load_round_trip(self, tmp_path):
        original = grid_network(5, 5, seed=9)
        node_file = tmp_path / "test.cnode"
        edge_file = tmp_path / "test.cedge"
        save_network(original, node_file, edge_file)
        loaded = load_network(node_file, edge_file)
        assert loaded.num_nodes == original.num_nodes
        assert loaded.num_edges == original.num_edges
        for u, v, d in original.edges():
            assert loaded.edge_distance(u, v) == pytest.approx(d, abs=1e-5)
        for n in original.node_ids():
            ox, oy = original.coords(n)
            lx, ly = loaded.coords(n)
            assert (lx, ly) == pytest.approx((ox, oy), abs=1e-5)

    def test_metric_label_passed_through(self, tmp_path):
        original = grid_network(3, 3, seed=1)
        save_network(original, tmp_path / "n", tmp_path / "e")
        loaded = load_network(tmp_path / "n", tmp_path / "e", metric="toll")
        assert loaded.metric == "toll"


class TestFormat:
    def test_blank_lines_ignored(self, tmp_path):
        (tmp_path / "n").write_text("0 0.0 0.0\n\n1 1.0 0.0\n")
        (tmp_path / "e").write_text("\n0 0 1 1.0\n")
        net = load_network(tmp_path / "n", tmp_path / "e")
        assert net.num_nodes == 2
        assert net.num_edges == 1

    def test_duplicate_direction_edges_collapsed(self, tmp_path):
        """Real Li files list both directions; loader keeps one."""
        (tmp_path / "n").write_text("0 0.0 0.0\n1 1.0 0.0\n")
        (tmp_path / "e").write_text("0 0 1 1.0\n1 1 0 1.0\n")
        net = load_network(tmp_path / "n", tmp_path / "e")
        assert net.num_edges == 1

    def test_short_node_line_raises(self, tmp_path):
        (tmp_path / "n").write_text("0 0.0\n")
        (tmp_path / "e").write_text("")
        with pytest.raises(NetworkFormatError):
            load_network(tmp_path / "n", tmp_path / "e")

    def test_bad_node_number_raises(self, tmp_path):
        (tmp_path / "n").write_text("zero 0.0 0.0\n")
        (tmp_path / "e").write_text("")
        with pytest.raises(NetworkFormatError):
            load_network(tmp_path / "n", tmp_path / "e")

    def test_short_edge_line_raises(self, tmp_path):
        (tmp_path / "n").write_text("0 0.0 0.0\n1 1.0 0.0\n")
        (tmp_path / "e").write_text("0 0 1\n")
        with pytest.raises(NetworkFormatError):
            load_network(tmp_path / "n", tmp_path / "e")

    def test_bad_edge_number_raises(self, tmp_path):
        (tmp_path / "n").write_text("0 0.0 0.0\n1 1.0 0.0\n")
        (tmp_path / "e").write_text("0 0 1 fast\n")
        with pytest.raises(NetworkFormatError):
            load_network(tmp_path / "n", tmp_path / "e")
