"""Generators: connectivity, target ratios, determinism, metric variants."""

import pytest

from repro.graph.generators import (
    GeneratorError,
    ca_like,
    chain_network,
    grid_network,
    na_like,
    road_network,
    sf_like,
    travel_time_metric,
)


class TestRoadNetwork:
    def test_connected_and_sized(self):
        net = road_network(200, 1.2, seed=1)
        assert net.num_nodes == 200
        assert net.connected()

    def test_edge_ratio_hit_within_tolerance(self):
        net = road_network(500, 1.25, seed=2)
        assert net.num_edges / net.num_nodes == pytest.approx(1.25, abs=0.02)

    def test_deterministic_under_seed(self):
        a = road_network(100, 1.1, seed=5)
        b = road_network(100, 1.1, seed=5)
        assert sorted(a.edges()) == sorted(b.edges())
        assert [a.coords(n) for n in a.node_ids()] == [
            b.coords(n) for n in b.node_ids()
        ]

    def test_different_seeds_differ(self):
        a = road_network(100, 1.1, seed=5)
        b = road_network(100, 1.1, seed=6)
        assert sorted(a.edges()) != sorted(b.edges())

    def test_weights_dominate_euclidean(self):
        net = road_network(150, 1.2, seed=3)
        for u, v, d in net.edges():
            assert d >= net.euclidean(u, v) - 1e-9

    def test_clustered_generation(self):
        net = road_network(300, 1.05, seed=4, clusters=5)
        assert net.connected()
        assert net.num_nodes == 300

    def test_too_few_nodes_rejected(self):
        with pytest.raises(GeneratorError):
            road_network(2, 1.0)

    def test_sub_tree_ratio_rejected(self):
        with pytest.raises(GeneratorError):
            road_network(100, 0.5)


class TestDatasetProfiles:
    def test_ca_profile(self):
        net = ca_like(num_nodes=400, seed=1)
        assert net.connected()
        assert net.num_edges / net.num_nodes == pytest.approx(1.031, abs=0.03)

    def test_na_profile(self):
        net = na_like(num_nodes=400, seed=1)
        assert net.connected()
        assert net.num_edges / net.num_nodes == pytest.approx(1.019, abs=0.03)

    def test_sf_profile_denser_than_na(self):
        sf = sf_like(num_nodes=400, seed=1)
        na = na_like(num_nodes=400, seed=1)
        assert sf.num_edges > na.num_edges


class TestGridChain:
    def test_grid_dimensions(self):
        net = grid_network(4, 6, seed=0)
        assert net.num_nodes == 24
        assert net.num_edges == 4 * 5 + 6 * 3  # rows*(cols-1) + cols*(rows-1)
        assert net.connected()

    def test_grid_removal_keeps_connected(self):
        net = grid_network(8, 8, seed=1, removal_prob=0.3)
        assert net.connected()
        assert net.num_edges < 2 * 7 * 8

    def test_grid_too_small_rejected(self):
        with pytest.raises(GeneratorError):
            grid_network(1, 5)

    def test_chain_structure(self):
        net = chain_network(5, spacing=10.0)
        assert net.num_nodes == 5
        assert net.num_edges == 4
        assert net.edge_distance(2, 3) == 10.0

    def test_chain_too_small_rejected(self):
        with pytest.raises(GeneratorError):
            chain_network(1)


class TestTravelTimeMetric:
    def test_reweighting_preserves_topology(self):
        base = grid_network(5, 5, seed=2)
        timed = travel_time_metric(base, seed=3)
        assert timed.metric == "travel_time"
        assert sorted((u, v) for u, v, _ in timed.edges()) == sorted(
            (u, v) for u, v, _ in base.edges()
        )

    def test_travel_time_breaks_euclidean_bound(self):
        """With fast roads, travel time < Euclidean length for some edge."""
        base = grid_network(5, 5, seed=2)
        timed = travel_time_metric(base, seed=3, speed_range=(50.0, 120.0))
        assert any(d < timed.euclidean(u, v) for u, v, d in timed.edges())

    def test_invalid_speed_range(self):
        base = grid_network(3, 3, seed=0)
        with pytest.raises(GeneratorError):
            travel_time_metric(base, speed_range=(0.0, 10.0))
        with pytest.raises(GeneratorError):
            travel_time_metric(base, speed_range=(10.0, 5.0))
