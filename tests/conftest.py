"""Shared fixtures and hypothesis profiles for the test suite."""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, settings

from repro.graph import RoadNetwork, chain_network, grid_network

# Keep property-based tests fast and robust inside CI containers.
settings.register_profile(
    "repro",
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
settings.load_profile("repro")


@pytest.fixture
def small_grid() -> RoadNetwork:
    """5x5 perturbed street grid — enough structure for partition tests."""
    return grid_network(5, 5, seed=42)


@pytest.fixture
def medium_grid() -> RoadNetwork:
    """10x10 grid used by integration tests."""
    return grid_network(10, 10, seed=7)


@pytest.fixture
def chain13() -> RoadNetwork:
    """13-node chain mirroring the Figure 8 running example."""
    return chain_network(13)


@pytest.fixture
def rng() -> random.Random:
    """Deterministic RNG for tests that sample."""
    return random.Random(0xC0FFEE)


def random_connected_network(
    rnd: random.Random, num_nodes: int, extra_edges: int
) -> RoadNetwork:
    """Random connected network: spanning tree + random extra edges.

    Shared by property-based tests across packages (imported from conftest).
    """
    network = RoadNetwork()
    for node_id in range(num_nodes):
        network.add_node(node_id, rnd.uniform(0, 100), rnd.uniform(0, 100))
    nodes = list(range(num_nodes))
    rnd.shuffle(nodes)
    for i in range(1, num_nodes):
        u = nodes[i]
        v = nodes[rnd.randrange(i)]
        network.add_edge(u, v, rnd.uniform(0.1, 10.0))
    for _ in range(extra_edges):
        u, v = rnd.randrange(num_nodes), rnd.randrange(num_nodes)
        if u != v and not network.has_edge(u, v):
            network.add_edge(u, v, rnd.uniform(0.1, 10.0))
    return network
