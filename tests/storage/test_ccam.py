"""CCAM network store: layout quality, charged access, maintenance."""

import pytest

from repro.graph import grid_network
from repro.storage.ccam import NetworkStore
from repro.storage.pager import PageManager


@pytest.fixture
def stored_grid():
    network = grid_network(10, 10, seed=3)
    pager = PageManager(buffer_pages=4)
    store = NetworkStore(network, pager)
    return network, pager, store


class TestLayout:
    def test_every_node_stored(self, stored_grid):
        network, _, store = stored_grid
        assert sorted(store.node_ids()) == sorted(network.node_ids())
        assert all(store.has_node(n) for n in network.node_ids())

    def test_adjacency_matches_network(self, stored_grid):
        network, _, store = stored_grid
        for node in network.node_ids():
            assert sorted(store.neighbours(node)) == sorted(network.neighbours(node))

    def test_coords_match_network(self, stored_grid):
        network, _, store = stored_grid
        for node in list(network.node_ids())[:10]:
            assert store.coords(node) == network.coords(node)

    def test_bfs_layout_has_good_locality(self, stored_grid):
        _, _, store = stored_grid
        # BFS packing should co-locate most grid neighbours.
        assert store.locality() > 0.5

    def test_pages_respect_capacity(self, stored_grid):
        _, pager, store = stored_grid
        from repro.storage.pager import PAGE_HEADER_SIZE, PAGE_SIZE

        for page in pager.iter_pages(store.name):
            assert page.payload.nbytes <= PAGE_SIZE - PAGE_HEADER_SIZE

    def test_unknown_node_raises(self, stored_grid):
        _, _, store = stored_grid
        with pytest.raises(KeyError):
            store.neighbours(10_000)


class TestChargedAccess:
    def test_cold_access_charges_read(self, stored_grid):
        _, pager, store = stored_grid
        pager.drop_cache()
        pager.reset_stats()
        store.neighbours(0)
        assert pager.stats.reads == 1

    def test_local_traversal_reuses_page(self, stored_grid):
        network, pager, store = stored_grid
        pager.drop_cache()
        pager.reset_stats()
        frontier = [0]
        seen = {0}
        for _ in range(10):  # local expansion around node 0
            node = frontier.pop(0)
            for neighbour, _ in store.neighbours(node):
                if neighbour not in seen:
                    seen.add(neighbour)
                    frontier.append(neighbour)
        # Far fewer page reads than nodes touched thanks to clustering.
        assert pager.stats.reads < len(seen)


class TestMaintenance:
    def test_update_edge_distance(self, stored_grid):
        network, _, store = stored_grid
        u, v, _ = next(network.edges())
        store.update_edge_distance(u, v, 123.0)
        assert dict(store.neighbours(u))[v] == 123.0
        assert dict(store.neighbours(v))[u] == 123.0

    def test_update_missing_edge_raises(self, stored_grid):
        _, _, store = stored_grid
        with pytest.raises(KeyError):
            store.update_edge_distance(0, 99, 1.0)

    def test_remove_edge(self, stored_grid):
        network, _, store = stored_grid
        u, v, _ = next(network.edges())
        store.remove_edge(u, v)
        assert v not in dict(store.neighbours(u))
        assert u not in dict(store.neighbours(v))

    def test_remove_missing_edge_raises(self, stored_grid):
        _, _, store = stored_grid
        with pytest.raises(KeyError):
            store.remove_edge(0, 99)

    def test_add_edge(self, stored_grid):
        network, _, store = stored_grid
        # grid nodes 0 and 99 are definitely not adjacent
        store.add_edge(0, 99, 7.0)
        assert dict(store.neighbours(0))[99] == 7.0
        assert dict(store.neighbours(99))[0] == 7.0

    def test_add_duplicate_edge_raises(self, stored_grid):
        network, _, store = stored_grid
        u, v, d = next(network.edges())
        with pytest.raises(KeyError):
            store.add_edge(u, v, d)

    def test_add_node(self, stored_grid):
        _, _, store = stored_grid
        store.add_node(500, 1.0, 2.0)
        assert store.has_node(500)
        assert store.neighbours(500) == []
        assert store.coords(500) == (1.0, 2.0)
        store.add_edge(500, 0, 3.0)
        assert dict(store.neighbours(500))[0] == 3.0

    def test_add_existing_node_raises(self, stored_grid):
        _, _, store = stored_grid
        with pytest.raises(KeyError):
            store.add_node(0, 0.0, 0.0)

    def test_dijkstra_over_store_matches_network(self, stored_grid):
        """The charged adjacency function returns the same shortest paths."""
        from repro.graph.shortest_path import dijkstra_distances

        network, _, store = stored_grid
        via_store = dijkstra_distances(store.neighbours, 0)
        via_memory = dijkstra_distances(network.neighbours, 0)
        assert via_store.keys() == via_memory.keys()
        for node in via_memory:
            assert via_store[node] == pytest.approx(via_memory[node])
