"""Codecs: byte round-trips and size accounting."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.storage import codecs


class TestPrimitives:
    def test_int_round_trip(self):
        data = codecs.encode_int(-1234567890123)
        value, offset = codecs.decode_int(data)
        assert value == -1234567890123
        assert offset == codecs.INT_SIZE

    def test_float_round_trip(self):
        data = codecs.encode_float(3.14159)
        value, _ = codecs.decode_float(data)
        assert value == pytest.approx(3.14159)

    def test_str_round_trip_unicode(self):
        data = codecs.encode_str("café ☕")
        value, _ = codecs.decode_str(data)
        assert value == "café ☕"

    def test_str_size_matches_encoding(self):
        assert codecs.str_size("café ☕") == len(codecs.encode_str("café ☕"))

    def test_str_too_long_raises(self):
        with pytest.raises(codecs.CodecError):
            codecs.encode_str("x" * 70000)

    def test_truncated_int_raises(self):
        with pytest.raises(codecs.CodecError):
            codecs.decode_int(b"\x01\x02")

    def test_truncated_str_raises(self):
        data = codecs.encode_str("hello")[:-2]
        with pytest.raises(codecs.CodecError):
            codecs.decode_str(data)

    @given(st.integers(min_value=-(2**63), max_value=2**63 - 1))
    def test_int_round_trip_property(self, value):
        decoded, _ = codecs.decode_int(codecs.encode_int(value))
        assert decoded == value

    @given(st.lists(st.integers(min_value=0, max_value=2**40), max_size=50))
    def test_int_list_round_trip(self, values):
        data = codecs.encode_int_list(values)
        decoded, offset = codecs.decode_int_list(data)
        assert decoded == values
        assert offset == len(data) == codecs.int_list_size(len(values))


class TestGraphRecords:
    def test_node_record_round_trip(self):
        data = codecs.encode_node_record(42, 1.5, -2.5)
        (node_id, x, y), offset = codecs.decode_node_record(data)
        assert (node_id, x, y) == (42, 1.5, -2.5)
        assert offset == codecs.NODE_RECORD_SIZE == len(data)

    def test_adjacency_round_trip(self):
        neighbours = [(1, 10.0), (2, 20.5), (7, 0.25)]
        data = codecs.encode_adjacency(5, neighbours)
        (node_id, decoded), offset = codecs.decode_adjacency(data)
        assert node_id == 5
        assert decoded == neighbours
        assert offset == len(data) == codecs.adjacency_size(3)

    def test_adjacency_size_grows_linearly(self):
        assert (
            codecs.adjacency_size(4) - codecs.adjacency_size(3)
            == codecs.EDGE_RECORD_SIZE
        )


class TestShortcutRecords:
    def test_shortcut_round_trip(self):
        data = codecs.encode_shortcut(9, 123.5, 3, [4, 5, 6])
        (target, rnet, dist, via), offset = codecs.decode_shortcut(data)
        assert (target, rnet, dist, via) == (9, 3, 123.5, [4, 5, 6])
        assert offset == len(data) == codecs.shortcut_size(3)

    def test_shortcut_without_vias(self):
        data = codecs.encode_shortcut(9, 1.0, 0, [])
        (_, _, _, via), _ = codecs.decode_shortcut(data)
        assert via == []
        assert len(data) == codecs.shortcut_size(0)


class TestObjectRecords:
    def test_object_record_round_trip(self):
        attrs = {"type": "seafood", "name": "Pier 39"}
        data = codecs.encode_object_record(7, 11, 3.5, attrs)
        (oid, node, delta, decoded), offset = codecs.decode_object_record(data)
        assert (oid, node, delta) == (7, 11, 3.5)
        assert decoded == attrs
        assert offset == len(data)
        assert len(data) == codecs.object_record_size(codecs.attrs_size(attrs))

    def test_object_record_empty_attrs(self):
        data = codecs.encode_object_record(1, 2, 0.0, {})
        (_, _, _, attrs), _ = codecs.decode_object_record(data)
        assert attrs == {}
        assert len(data) == codecs.object_record_size(0)

    @given(
        st.dictionaries(
            st.text(min_size=1, max_size=8),
            st.text(max_size=12),
            max_size=5,
        )
    )
    def test_object_record_attrs_property(self, attrs):
        data = codecs.encode_object_record(3, 4, 1.25, attrs)
        (_, _, _, decoded), _ = codecs.decode_object_record(data)
        assert decoded == attrs


class TestSpatialRecords:
    def test_mbr_entry_round_trip(self):
        data = codecs.encode_mbr_entry(0.0, 1.0, 2.0, 3.0, 99)
        (xmin, ymin, xmax, ymax, ref), offset = codecs.decode_mbr_entry(data)
        assert (xmin, ymin, xmax, ymax, ref) == (0.0, 1.0, 2.0, 3.0, 99)
        assert offset == len(data) == codecs.RTREE_ENTRY_SIZE

    def test_signature_entry_round_trip(self):
        data = codecs.encode_signature_entry(12, 45.5, 3)
        (oid, dist, hop), offset = codecs.decode_signature_entry(data)
        assert (oid, dist, hop) == (12, 45.5, 3)
        assert offset == len(data) == codecs.signature_entry_size()
