"""R-tree: geometry, window queries vs brute force, incremental NN."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.pager import PageManager
from repro.storage.rtree import Rect, RTree


@pytest.fixture
def rtree() -> RTree:
    return RTree(PageManager(buffer_pages=32), max_entries=6)


def random_points(n: int, seed: int = 0):
    rnd = random.Random(seed)
    return [(rnd.uniform(0, 100), rnd.uniform(0, 100)) for _ in range(n)]


class TestRect:
    def test_point_is_zero_area(self):
        assert Rect.point(3, 4).area == 0.0

    def test_union_covers_both(self):
        a, b = Rect(0, 0, 1, 1), Rect(2, 2, 3, 3)
        assert a.union(b) == Rect(0, 0, 3, 3)

    def test_intersects_on_boundary(self):
        assert Rect(0, 0, 1, 1).intersects(Rect(1, 1, 2, 2))

    def test_disjoint_rects_do_not_intersect(self):
        assert not Rect(0, 0, 1, 1).intersects(Rect(1.1, 0, 2, 1))

    def test_contains_point_boundary(self):
        rect = Rect(0, 0, 2, 2)
        assert rect.contains_point(0, 0)
        assert rect.contains_point(1, 1)
        assert not rect.contains_point(2.01, 1)

    def test_enlargement_zero_when_covered(self):
        assert Rect(0, 0, 10, 10).enlargement(Rect(1, 1, 2, 2)) == 0.0

    def test_min_dist_inside_is_zero(self):
        assert Rect(0, 0, 2, 2).min_dist(1, 1) == 0.0

    def test_min_dist_to_corner(self):
        assert Rect(0, 0, 1, 1).min_dist(4, 5) == pytest.approx(5.0)


class TestInsertSearch:
    def test_empty_tree_queries(self, rtree):
        assert rtree.window(Rect(0, 0, 100, 100)) == []
        assert rtree.nearest(0, 0, k=1) == []
        assert len(rtree) == 0

    def test_insert_and_window(self, rtree):
        rtree.insert(Rect.point(5, 5), 1)
        rtree.insert(Rect.point(50, 50), 2)
        hits = rtree.window(Rect(0, 0, 10, 10))
        assert [ref for _, ref in hits] == [1]

    def test_window_matches_brute_force(self, rtree):
        points = random_points(300, seed=4)
        for i, (x, y) in enumerate(points):
            rtree.insert(Rect.point(x, y), i)
        rtree.validate()
        query = Rect(20, 20, 60, 70)
        got = sorted(ref for _, ref in rtree.window(query))
        expected = sorted(
            i for i, (x, y) in enumerate(points) if query.contains_point(x, y)
        )
        assert got == expected

    def test_nearest_matches_brute_force(self, rtree):
        points = random_points(250, seed=5)
        for i, (x, y) in enumerate(points):
            rtree.insert(Rect.point(x, y), i)
        got = rtree.nearest(42.0, 17.0, k=10)
        brute = sorted(
            (math.hypot(x - 42.0, y - 17.0), i) for i, (x, y) in enumerate(points)
        )[:10]
        assert [ref for _, ref in got] == [i for _, i in brute]
        for (d_got, _), (d_exp, _) in zip(got, brute):
            assert d_got == pytest.approx(d_exp)

    def test_iter_nearest_is_sorted_and_complete(self, rtree):
        points = random_points(80, seed=6)
        for i, (x, y) in enumerate(points):
            rtree.insert(Rect.point(x, y), i)
        stream = list(rtree.iter_nearest(0, 0))
        assert len(stream) == 80
        distances = [d for d, _ in stream]
        assert distances == sorted(distances)

    def test_rectangle_entries_window(self, rtree):
        rtree.insert(Rect(0, 0, 10, 10), 1)
        rtree.insert(Rect(20, 20, 30, 30), 2)
        hits = rtree.window(Rect(5, 5, 25, 25))
        assert sorted(ref for _, ref in hits) == [1, 2]

    def test_duplicate_refs_allowed(self, rtree):
        rtree.insert(Rect.point(1, 1), 7)
        rtree.insert(Rect.point(2, 2), 7)
        assert len(rtree) == 2

    def test_max_entries_validation(self):
        with pytest.raises(ValueError):
            RTree(PageManager(), max_entries=3)

    def test_height_grows(self, rtree):
        for i, (x, y) in enumerate(random_points(100, seed=7)):
            rtree.insert(Rect.point(x, y), i)
        assert rtree.height >= 2
        assert rtree.page_count > 1


class TestDelete:
    def test_delete_present_entry(self, rtree):
        rtree.insert(Rect.point(1, 1), 1)
        assert rtree.delete(Rect.point(1, 1), 1)
        assert len(rtree) == 0
        assert rtree.window(Rect(0, 0, 10, 10)) == []

    def test_delete_absent_entry(self, rtree):
        rtree.insert(Rect.point(1, 1), 1)
        assert not rtree.delete(Rect.point(2, 2), 1)
        assert not rtree.delete(Rect.point(1, 1), 2)
        assert len(rtree) == 1

    def test_delete_keeps_remaining_searchable(self, rtree):
        points = random_points(120, seed=8)
        for i, (x, y) in enumerate(points):
            rtree.insert(Rect.point(x, y), i)
        for i in range(0, 120, 2):
            x, y = points[i]
            assert rtree.delete(Rect.point(x, y), i)
        rtree.validate()
        survivors = sorted(ref for _, ref in rtree.window(Rect(0, 0, 100, 100)))
        assert survivors == list(range(1, 120, 2))

    def test_delete_all_then_reinsert(self, rtree):
        points = random_points(60, seed=9)
        for i, (x, y) in enumerate(points):
            rtree.insert(Rect.point(x, y), i)
        for i, (x, y) in enumerate(points):
            assert rtree.delete(Rect.point(x, y), i)
        assert len(rtree) == 0
        rtree.insert(Rect.point(1, 1), 99)
        assert [ref for _, ref in rtree.nearest(1, 1)] == [99]


@settings(max_examples=20, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0, max_value=100, allow_nan=False),
            st.floats(min_value=0, max_value=100, allow_nan=False),
        ),
        min_size=1,
        max_size=60,
    ),
    st.tuples(
        st.floats(min_value=0, max_value=100, allow_nan=False),
        st.floats(min_value=0, max_value=100, allow_nan=False),
    ),
)
def test_rtree_nn_property(points, query):
    """Property: best-first NN ordering equals brute-force ordering."""
    rtree = RTree(PageManager(buffer_pages=32), max_entries=4)
    for i, (x, y) in enumerate(points):
        rtree.insert(Rect.point(x, y), i)
    qx, qy = query
    stream = [d for d, _ in rtree.iter_nearest(qx, qy)]
    brute = sorted(math.hypot(x - qx, y - qy) for x, y in points)
    assert len(stream) == len(brute)
    for got, expected in zip(stream, brute):
        assert got == pytest.approx(expected)
