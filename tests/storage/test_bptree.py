"""B+-tree: behaviour vs a sorted-dict model, structure, I/O."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.storage.bptree import BPlusTree, BPlusTreeError, LEAF_CAPACITY_BYTES
from repro.storage.pager import PageManager


@pytest.fixture
def tree() -> BPlusTree:
    return BPlusTree(PageManager(buffer_pages=16), order=6)


class TestBasics:
    def test_empty_tree(self, tree):
        assert len(tree) == 0
        assert tree.get(1) is None
        assert tree.get(1, "dflt") == "dflt"
        assert 1 not in tree
        assert tree.min_key() is None
        assert list(tree.items()) == []

    def test_single_insert_and_get(self, tree):
        tree.insert(5, "five")
        assert tree.get(5) == "five"
        assert 5 in tree
        assert len(tree) == 1

    def test_insert_replaces_existing(self, tree):
        tree.insert(5, "a")
        tree.insert(5, "b")
        assert tree.get(5) == "b"
        assert len(tree) == 1

    def test_stored_none_differs_from_absent(self, tree):
        tree.insert(1, None)
        assert 1 in tree
        assert tree.get(1, "dflt") is None

    def test_delete_present(self, tree):
        tree.insert(1, "x")
        assert tree.delete(1)
        assert 1 not in tree
        assert len(tree) == 0

    def test_delete_absent_returns_false(self, tree):
        assert not tree.delete(1)

    def test_negative_keys(self, tree):
        tree.insert(-10, "neg")
        tree.insert(10, "pos")
        assert tree.get(-10) == "neg"
        assert [k for k, _ in tree.items()] == [-10, 10]

    def test_oversized_record_rejected(self, tree):
        with pytest.raises(BPlusTreeError):
            tree.insert(1, "big", size=LEAF_CAPACITY_BYTES + 1)

    def test_order_validation(self):
        with pytest.raises(ValueError):
            BPlusTree(PageManager(), order=2)


class TestBulkBehaviour:
    def test_many_inserts_sorted_iteration(self, tree):
        keys = list(range(200))
        random.Random(1).shuffle(keys)
        for k in keys:
            tree.insert(k, k * 10)
        assert [k for k, _ in tree.items()] == sorted(keys)
        assert len(tree) == 200
        tree.validate()

    def test_tree_grows_in_height(self, tree):
        assert tree.height == 1
        for k in range(100):
            tree.insert(k, k)
        assert tree.height >= 3
        tree.validate()

    def test_range_scan_inclusive(self, tree):
        for k in range(0, 100, 2):
            tree.insert(k, str(k))
        got = [k for k, _ in tree.range_scan(10, 20)]
        assert got == [10, 12, 14, 16, 18, 20]

    def test_range_scan_empty_window(self, tree):
        tree.insert(5, "x")
        assert list(tree.range_scan(6, 10)) == []
        assert list(tree.range_scan(10, 6)) == []

    def test_range_scan_spans_leaves(self, tree):
        for k in range(300):
            tree.insert(k, k)
        got = [k for k, _ in tree.range_scan(50, 250)]
        assert got == list(range(50, 251))

    def test_delete_everything_in_random_order(self, tree):
        keys = list(range(150))
        rnd = random.Random(2)
        for k in keys:
            tree.insert(k, k)
        rnd.shuffle(keys)
        for k in keys:
            assert tree.delete(k)
            tree.validate()
        assert len(tree) == 0
        assert list(tree.items()) == []

    def test_interleaved_inserts_and_deletes_match_dict(self, tree):
        rnd = random.Random(3)
        model = {}
        for _ in range(800):
            key = rnd.randrange(120)
            if rnd.random() < 0.6:
                tree.insert(key, key * 3)
                model[key] = key * 3
            else:
                assert tree.delete(key) == (key in model)
                model.pop(key, None)
        assert dict(tree.items()) == model
        tree.validate()

    def test_variable_sized_values_split_by_bytes(self):
        tree = BPlusTree(PageManager(buffer_pages=64))  # page-derived order
        for k in range(100):
            tree.insert(k, "v" * 100, size=1000)
        tree.validate()
        assert tree.page_count > 2  # forced splits despite only 100 entries
        assert [k for k, _ in tree.items()] == list(range(100))

    def test_page_count_shrinks_after_mass_delete(self, tree):
        for k in range(500):
            tree.insert(k, k)
        grown = tree.page_count
        for k in range(500):
            tree.delete(k)
        tree.validate()
        assert tree.page_count < grown


class TestIOCharging:
    def test_search_charges_io_on_cold_cache(self):
        pager = PageManager(buffer_pages=4)
        tree = BPlusTree(pager, order=6)
        for k in range(500):
            tree.insert(k, k)
        pager.drop_cache()
        pager.reset_stats()
        tree.get(250)
        assert pager.stats.reads >= tree.height - 1

    def test_search_hits_buffer_when_warm(self):
        pager = PageManager(buffer_pages=64)
        tree = BPlusTree(pager, order=6)
        for k in range(100):
            tree.insert(k, k)
        tree.get(50)
        pager.reset_stats()
        tree.get(50)
        assert pager.stats.reads == 0
        assert pager.stats.hits > 0


@settings(max_examples=25, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["insert", "delete", "get"]),
            st.integers(min_value=0, max_value=60),
        ),
        max_size=120,
    )
)
def test_bptree_matches_dict_model(ops):
    """Property: any op sequence behaves exactly like a dict over int keys."""
    tree = BPlusTree(PageManager(buffer_pages=8), order=4)
    model = {}
    for op, key in ops:
        if op == "insert":
            tree.insert(key, key + 1000)
            model[key] = key + 1000
        elif op == "delete":
            assert tree.delete(key) == (key in model)
            model.pop(key, None)
        else:
            assert tree.get(key) == model.get(key)
    assert dict(tree.items()) == model
    assert len(tree) == len(model)
    tree.validate()


class BPTreeMachine(RuleBasedStateMachine):
    """Stateful check: the tree stays valid under arbitrary interleavings."""

    def __init__(self):
        super().__init__()
        self.tree = BPlusTree(PageManager(buffer_pages=8), order=4)
        self.model = {}

    @rule(key=st.integers(min_value=-50, max_value=50))
    def insert(self, key):
        self.tree.insert(key, key)
        self.model[key] = key

    @rule(key=st.integers(min_value=-50, max_value=50))
    def delete(self, key):
        assert self.tree.delete(key) == (key in self.model)
        self.model.pop(key, None)

    @rule(lo=st.integers(-50, 50), hi=st.integers(-50, 50))
    def scan(self, lo, hi):
        got = [k for k, _ in self.tree.range_scan(lo, hi)]
        expected = sorted(k for k in self.model if lo <= k <= hi)
        assert got == expected

    @invariant()
    def tree_is_valid(self):
        self.tree.validate()


TestBPTreeStateful = BPTreeMachine.TestCase


class TestDestroy:
    def test_destroy_frees_every_page(self):
        pager = PageManager(buffer_pages=16)
        baseline = pager.page_count
        tree = BPlusTree(pager, name="doomed", order=4)
        for key in range(200):
            tree.insert(key, key * 2)
        assert pager.page_count > baseline
        freed = tree.destroy()
        assert freed > 0
        assert pager.page_count == baseline
        assert len(tree) == 0

    def test_destroy_leaves_sibling_trees_alone(self):
        pager = PageManager(buffer_pages=16)
        doomed = BPlusTree(pager, name="doomed", order=4)
        survivor = BPlusTree(pager, name="survivor", order=4)
        for key in range(50):
            doomed.insert(key, key)
            survivor.insert(key, key)
        doomed.destroy()
        assert survivor.get(25) == 25
        survivor.validate()


class TestPeek:
    def test_peek_matches_get_and_is_uncharged(self):
        pager = PageManager(buffer_pages=16)
        tree = BPlusTree(pager, name="peek-test")
        for key in range(200):
            tree.insert(key, key * 10)
        pager.flush()
        pager.drop_cache()
        pager.reset_stats()
        assert tree.peek(42) == 420
        assert tree.peek(9_999) is None
        assert tree.peek(9_999, default="missing") == "missing"
        assert pager.stats.reads == 0 and pager.stats.misses == 0
        assert tree.peek(42) == tree.get(42)
