"""Pager: allocation, I/O accounting, buffer interaction, occupancy."""

import pytest

from repro.storage.pager import (
    PAGE_HEADER_SIZE,
    PAGE_SIZE,
    PageManager,
    PageNotFoundError,
    PageOverflowError,
)


@pytest.fixture
def pager() -> PageManager:
    return PageManager(buffer_pages=4, name="test")


class TestAllocation:
    def test_allocate_assigns_monotonic_ids(self, pager):
        pages = [pager.allocate("a") for _ in range(5)]
        assert [p.page_id for p in pages] == [0, 1, 2, 3, 4]

    def test_allocate_sets_kind_and_payload(self, pager):
        page = pager.allocate("idx", payload={"x": 1}, nbytes=32)
        assert page.kind == "idx"
        assert page.payload == {"x": 1}
        assert page.nbytes == 32

    def test_new_page_is_dirty(self, pager):
        assert pager.allocate("a").dirty

    def test_allocate_rejects_oversized_payload(self, pager):
        with pytest.raises(PageOverflowError):
            pager.allocate("a", nbytes=PAGE_SIZE)

    def test_free_removes_page(self, pager):
        page = pager.allocate("a")
        pager.free(page.page_id)
        with pytest.raises(PageNotFoundError):
            pager.read(page.page_id)

    def test_double_free_raises(self, pager):
        page = pager.allocate("a")
        pager.free(page.page_id)
        with pytest.raises(PageNotFoundError):
            pager.free(page.page_id)

    def test_page_count_tracks_live_pages(self, pager):
        pages = [pager.allocate("a") for _ in range(3)]
        pager.free(pages[1].page_id)
        assert pager.page_count == 2

    def test_buffer_capacity_validation(self):
        with pytest.raises(ValueError):
            PageManager(buffer_pages=0)


class TestIOAccounting:
    def test_read_resident_page_is_hit(self, pager):
        page = pager.allocate("a")
        pager.reset_stats()
        pager.read(page.page_id)
        assert pager.stats.hits == 1
        assert pager.stats.reads == 0

    def test_read_after_eviction_counts_read(self, pager):
        first = pager.allocate("a")
        for _ in range(5):  # push `first` out of the 4-frame buffer
            pager.allocate("a")
        pager.reset_stats()
        pager.read(first.page_id)
        assert pager.stats.reads == 1
        assert pager.stats.misses == 1

    def test_dirty_eviction_counts_write(self, pager):
        pager.allocate("a")  # dirty page that will be evicted
        pager.reset_stats()
        for _ in range(4):
            pager.allocate("a")
        assert pager.stats.writes == 1

    def test_clean_eviction_costs_nothing(self, pager):
        page = pager.allocate("a")
        pager.flush()
        pager.reset_stats()
        for _ in range(4):
            pager.allocate("a")
        assert pager.stats.writes == 0
        assert not page.dirty

    def test_flush_writes_only_dirty_pages(self, pager):
        pager.allocate("a")
        pager.allocate("a")
        assert pager.flush() == 2
        assert pager.flush() == 0

    def test_write_marks_dirty_and_updates_size(self, pager):
        page = pager.allocate("a", nbytes=8)
        pager.flush()
        pager.write(page, nbytes=100)
        assert page.dirty
        assert page.nbytes == 100

    def test_write_to_evicted_page_counts_read(self, pager):
        page = pager.allocate("a")
        for _ in range(5):
            pager.allocate("a")
        pager.flush()
        pager.reset_stats()
        pager.write(page)
        assert pager.stats.reads == 1

    def test_drop_cache_forces_cold_reads(self, pager):
        page = pager.allocate("a")
        pager.drop_cache()
        pager.reset_stats()
        pager.read(page.page_id)
        assert pager.stats.reads == 1

    def test_stats_snapshot_diff(self, pager):
        page = pager.allocate("a")
        before = pager.stats.snapshot()
        pager.drop_cache()
        pager.read(page.page_id)
        delta = pager.stats.diff(before)
        assert delta.reads == 1
        assert delta.total_io >= 1

    def test_reset_stats_zeroes_counters(self, pager):
        pager.allocate("a")
        pager.drop_cache()
        pager.reset_stats()
        s = pager.stats
        assert (s.reads, s.writes, s.hits, s.misses) == (0, 0, 0, 0)


class TestOccupancy:
    def test_size_bytes_is_pages_times_page_size(self, pager):
        for _ in range(3):
            pager.allocate("a", nbytes=10)
        assert pager.size_bytes == 3 * PAGE_SIZE

    def test_used_bytes_includes_headers(self, pager):
        pager.allocate("a", nbytes=100)
        assert pager.used_bytes == 100 + PAGE_HEADER_SIZE

    def test_utilization_bounds(self, pager):
        assert pager.utilization == 0.0
        pager.allocate("a", nbytes=PAGE_SIZE - PAGE_HEADER_SIZE)
        assert 0.9 < pager.utilization <= 1.0

    def test_page_counts_by_kind(self, pager):
        pager.allocate("x")
        pager.allocate("y")
        pager.allocate("y")
        assert pager.page_counts_by_kind() == {"x": 1, "y": 2}

    def test_iter_pages_filters_by_kind(self, pager):
        pager.allocate("x")
        pager.allocate("y")
        assert all(p.kind == "x" for p in pager.iter_pages("x"))
        assert sum(1 for _ in pager.iter_pages()) == 2

    def test_free_bytes_property(self, pager):
        page = pager.allocate("a", nbytes=96)
        assert page.free_bytes == PAGE_SIZE - PAGE_HEADER_SIZE - 96


class TestPeek:
    def test_peek_is_uncharged(self, pager):
        page = pager.allocate("data", payload={"x": 1}, nbytes=10)
        pager.flush()
        pager.drop_cache()
        pager.reset_stats()
        assert pager.peek(page.page_id).payload == {"x": 1}
        assert pager.stats.reads == 0 and pager.stats.misses == 0

    def test_peek_missing_or_freed_raises(self, pager):
        import pytest
        from repro.storage.pager import PageNotFoundError

        with pytest.raises(PageNotFoundError):
            pager.peek(9_999)
        page = pager.allocate("data", nbytes=1)
        pager.free(page.page_id)
        with pytest.raises(PageNotFoundError):
            pager.peek(page.page_id)
