"""Buffer pool: LRU ordering, eviction, capacity."""

import pytest

from repro.storage.buffer import BufferPool
from repro.storage.pager import Page


def make_page(page_id: int) -> Page:
    return Page(page_id, "t")


class TestBufferPool:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            BufferPool(0)

    def test_admit_until_full_evicts_nothing(self):
        pool = BufferPool(3)
        assert all(pool.admit(make_page(i)) is None for i in range(3))
        assert len(pool) == 3

    def test_admit_beyond_capacity_evicts_lru(self):
        pool = BufferPool(2)
        pool.admit(make_page(0))
        pool.admit(make_page(1))
        evicted = pool.admit(make_page(2))
        assert evicted.page_id == 0

    def test_touch_refreshes_recency(self):
        pool = BufferPool(2)
        pool.admit(make_page(0))
        pool.admit(make_page(1))
        pool.touch(0)
        evicted = pool.admit(make_page(2))
        assert evicted.page_id == 1

    def test_readmit_resident_page_refreshes_recency(self):
        pool = BufferPool(2)
        a, b = make_page(0), make_page(1)
        pool.admit(a)
        pool.admit(b)
        assert pool.admit(a) is None  # refresh, no eviction
        evicted = pool.admit(make_page(2))
        assert evicted.page_id == 1

    def test_discard_removes_without_eviction(self):
        pool = BufferPool(2)
        pool.admit(make_page(0))
        pool.discard(0)
        assert not pool.contains(0)
        pool.discard(99)  # absent id is a no-op

    def test_clear_empties_pool(self):
        pool = BufferPool(2)
        pool.admit(make_page(0))
        pool.clear()
        assert len(pool) == 0

    def test_pages_iterates_lru_to_mru(self):
        pool = BufferPool(3)
        for i in range(3):
            pool.admit(make_page(i))
        pool.touch(0)
        assert [p.page_id for p in pool.pages()] == [1, 2, 0]
        assert list(pool.resident_ids()) == [1, 2, 0]

    def test_eviction_sequence_matches_lru_model(self):
        """Randomized access pattern tracks a reference LRU implementation."""
        import random

        rnd = random.Random(5)
        pool = BufferPool(4)
        model: list[int] = []
        pages = {i: make_page(i) for i in range(10)}
        for _ in range(300):
            pid = rnd.randrange(10)
            if pool.contains(pid):
                pool.touch(pid)
                model.remove(pid)
                model.append(pid)
            else:
                evicted = pool.admit(pages[pid])
                if len(model) == 4:
                    expected = model.pop(0)
                    assert evicted.page_id == expected
                else:
                    assert evicted is None
                model.append(pid)
            assert list(pool.resident_ids()) == model
