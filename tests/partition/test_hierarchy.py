"""Partition trees: structure, Definition 4 at every level, variants."""

import pytest

from repro.graph.generators import chain_network, grid_network
from repro.partition.base import PartitionError, validate_partition
from repro.partition.grid import grid_partition_tree
from repro.partition.hierarchy import (
    build_partition_tree,
    geometric_bisector,
)
from repro.partition.object_based import build_object_based_tree, object_weights


class TestBuildPartitionTree:
    def test_root_covers_network(self, medium_grid):
        tree = build_partition_tree(medium_grid, levels=2, fanout=4)
        assert len(tree.edges) == medium_grid.num_edges
        assert tree.level == 0

    def test_every_split_satisfies_definition4(self, medium_grid):
        tree = build_partition_tree(medium_grid, levels=3, fanout=4)
        for node in tree.descendants():
            if node.children:
                validate_partition(
                    set(node.edges), [set(c.edges) for c in node.children]
                )

    def test_fanout_respected(self, medium_grid):
        tree = build_partition_tree(medium_grid, levels=2, fanout=4)
        assert len(tree.children) == 4
        for child in tree.children:
            assert len(child.children) in (0, 4) or len(child.children) <= 4

    def test_levels_depth(self, medium_grid):
        tree = build_partition_tree(medium_grid, levels=2, fanout=4)
        depths = {leaf.level for leaf in tree.leaves()}
        assert max(depths) == 2

    def test_leaves_partition_all_edges(self, medium_grid):
        tree = build_partition_tree(medium_grid, levels=3, fanout=4)
        leaf_edges = [set(leaf.edges) for leaf in tree.leaves()]
        union = set().union(*leaf_edges)
        assert union == set(tree.edges)
        assert sum(len(e) for e in leaf_edges) == len(union)

    def test_fanout_two(self, medium_grid):
        tree = build_partition_tree(medium_grid, levels=2, fanout=2)
        assert len(tree.children) == 2

    def test_non_power_of_two_fanout_rejected(self, medium_grid):
        with pytest.raises(PartitionError):
            build_partition_tree(medium_grid, levels=1, fanout=3)

    def test_zero_levels_rejected(self, medium_grid):
        with pytest.raises(PartitionError):
            build_partition_tree(medium_grid, levels=0)

    def test_tiny_network_stops_early(self):
        chain = chain_network(3)  # 2 edges cannot support fanout 4 deeply
        tree = build_partition_tree(chain, levels=3, fanout=4)
        for leaf in tree.leaves():
            assert len(leaf.edges) >= 1

    def test_geometric_bisector_variant(self, medium_grid):
        tree = build_partition_tree(
            medium_grid, levels=2, fanout=4, bisector=geometric_bisector()
        )
        for node in tree.descendants():
            if node.children:
                validate_partition(
                    set(node.edges), [set(c.edges) for c in node.children]
                )

    def test_kl_produces_fewer_cut_nodes_than_plain_geometric(self):
        from repro.partition.base import cut_nodes

        net = grid_network(12, 12, seed=5)
        kl_tree = build_partition_tree(net, levels=1, fanout=4)
        geo_tree = build_partition_tree(
            net, levels=1, fanout=4, bisector=geometric_bisector()
        )
        kl_cut = cut_nodes([set(c.edges) for c in kl_tree.children])
        geo_cut = cut_nodes([set(c.edges) for c in geo_tree.children])
        assert len(kl_cut) <= len(geo_cut)

    def test_descendants_and_leaves(self, medium_grid):
        tree = build_partition_tree(medium_grid, levels=2, fanout=4)
        descendants = tree.descendants()
        assert tree in descendants
        leaves = tree.leaves()
        assert all(leaf.is_leaf for leaf in leaves)
        assert len(descendants) == 1 + 4 + sum(
            len(c.children) for c in tree.children
        )


class TestGridPartitioner:
    def test_grid_tree_valid(self, medium_grid):
        tree = grid_partition_tree(medium_grid, levels=2)
        for node in tree.descendants():
            if node.children:
                validate_partition(
                    set(node.edges), [set(c.edges) for c in node.children]
                )

    def test_grid_fanout_constraint(self, medium_grid):
        with pytest.raises(PartitionError):
            grid_partition_tree(medium_grid, levels=1, fanout=8)

    def test_grid_levels_constraint(self, medium_grid):
        with pytest.raises(PartitionError):
            grid_partition_tree(medium_grid, levels=0)


class TestObjectBased:
    def test_object_weights(self, small_grid):
        some_edge = next(iter(small_grid.edges()))[:2]
        weights = object_weights(small_grid, [some_edge, some_edge])
        assert weights[some_edge] == pytest.approx(1.0 + 2 * 4.0)
        assert all(w == 1.0 for e, w in weights.items() if e != some_edge)

    def test_object_weights_unknown_edge_rejected(self, small_grid):
        with pytest.raises(KeyError):
            object_weights(small_grid, [(998, 999)])

    def test_object_based_tree_valid(self, medium_grid):
        edges = sorted((u, v) for u, v, _ in medium_grid.edges())
        object_edges = edges[:5] * 3  # a hot corner of the network
        tree = build_object_based_tree(medium_grid, object_edges, levels=2)
        for node in tree.descendants():
            if node.children:
                validate_partition(
                    set(node.edges), [set(c.edges) for c in node.children]
                )

    def test_object_based_isolates_hot_region(self, medium_grid):
        """The hot edges' subtree should hold fewer edges than an even split."""
        edges = sorted((u, v) for u, v, _ in medium_grid.edges())
        hot = edges[:4]
        tree = build_object_based_tree(
            medium_grid, hot * 5, levels=1, emphasis=10.0
        )
        hot_parts = [c for c in tree.children if set(hot) & set(c.edges)]
        smallest_hot = min(len(c.edges) for c in hot_parts)
        even = medium_grid.num_edges / len(tree.children)
        assert smallest_hot <= even
