"""KL refinement: cut improvement, balance, invariants."""

import random

import pytest

from repro.graph.generators import grid_network
from repro.partition.base import (
    PartitionError,
    cut_nodes,
    validate_partition,
)
from repro.partition.geometric import geometric_bisection
from repro.partition.kl import refine_bisection


def all_edges(network):
    return {(u, v) for u, v, _ in network.edges()}


class TestRefineBisection:
    def test_reported_cut_matches_recount(self, medium_grid):
        edges = all_edges(medium_grid)
        left, right = geometric_bisection(medium_grid, edges)
        rl, rr, cut = refine_bisection(medium_grid, left, right)
        assert cut == len(cut_nodes([rl, rr]))

    def test_refinement_never_worsens_cut(self, medium_grid):
        edges = all_edges(medium_grid)
        left, right = geometric_bisection(medium_grid, edges)
        before = len(cut_nodes([left, right]))
        _, _, after = refine_bisection(medium_grid, left, right)
        assert after <= before

    def test_improves_bad_random_split(self, medium_grid):
        """A random (non-spatial) split has a big cut; KL must shrink it."""
        edges = sorted(all_edges(medium_grid))
        rnd = random.Random(1)
        rnd.shuffle(edges)
        half = len(edges) // 2
        left, right = set(edges[:half]), set(edges[half:])
        before = len(cut_nodes([left, right]))
        _, _, after = refine_bisection(medium_grid, left, right, max_passes=20)
        assert after < before

    def test_result_is_valid_partition(self, medium_grid):
        edges = all_edges(medium_grid)
        left, right = geometric_bisection(medium_grid, edges)
        rl, rr, _ = refine_bisection(medium_grid, left, right)
        validate_partition(edges, [rl, rr])

    def test_balance_respected(self, medium_grid):
        edges = all_edges(medium_grid)
        left, right = geometric_bisection(medium_grid, edges)
        rl, rr, _ = refine_bisection(
            medium_grid, left, right, balance_tol=0.1, max_passes=20
        )
        ideal = len(edges) / 2
        assert len(rl) <= ideal * 1.1 + 1
        assert len(rr) <= ideal * 1.1 + 1

    def test_empty_half_rejected(self, medium_grid):
        with pytest.raises(PartitionError):
            refine_bisection(medium_grid, set(), all_edges(medium_grid))

    def test_halves_never_emptied(self):
        """Tiny input: KL may move edges but both halves must survive."""
        net = grid_network(2, 3, seed=0)
        edges = sorted(all_edges(net))
        left, right = {edges[0]}, set(edges[1:])
        rl, rr, _ = refine_bisection(net, left, right, balance_tol=10.0)
        assert rl and rr

    def test_weighted_balance(self, medium_grid):
        edges = all_edges(medium_grid)
        weights = {e: 1.0 for e in edges}
        left, right = geometric_bisection(medium_grid, edges)
        rl, rr, _ = refine_bisection(
            medium_grid, left, right, weights=weights, balance_tol=0.1
        )
        validate_partition(edges, [rl, rr])

    def test_zero_passes_is_identity(self, medium_grid):
        edges = all_edges(medium_grid)
        left, right = geometric_bisection(medium_grid, edges)
        rl, rr, cut = refine_bisection(medium_grid, left, right, max_passes=0)
        assert (rl, rr) == (left, right)
        assert cut == len(cut_nodes([left, right]))
