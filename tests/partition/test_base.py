"""Partition primitives: incident/cut nodes, Definition 4 validation."""

import pytest

from repro.partition.base import (
    PartitionError,
    balance_ratio,
    cut_nodes,
    incident_nodes,
    validate_partition,
)


class TestIncidentAndCut:
    def test_incident_nodes(self):
        assert incident_nodes([(1, 2), (2, 3)]) == {1, 2, 3}

    def test_incident_nodes_empty(self):
        assert incident_nodes([]) == set()

    def test_cut_nodes_shared_endpoint(self):
        # node 2 touches edges in both parts
        assert cut_nodes([{(1, 2)}, {(2, 3)}]) == {2}

    def test_cut_nodes_disjoint_parts(self):
        assert cut_nodes([{(1, 2)}, {(3, 4)}]) == set()

    def test_cut_nodes_three_parts(self):
        parts = [{(1, 2)}, {(2, 3)}, {(3, 4), (4, 1)}]
        assert cut_nodes(parts) == {1, 2, 3}


class TestValidation:
    def test_valid_partition_passes(self):
        parent = {(1, 2), (2, 3), (3, 4)}
        validate_partition(parent, [{(1, 2)}, {(2, 3), (3, 4)}])

    def test_single_part_rejected(self):
        with pytest.raises(PartitionError):
            validate_partition({(1, 2)}, [{(1, 2)}])

    def test_empty_part_rejected(self):
        with pytest.raises(PartitionError):
            validate_partition({(1, 2)}, [{(1, 2)}, set()])

    def test_overlapping_parts_rejected(self):
        parent = {(1, 2), (2, 3)}
        with pytest.raises(PartitionError):
            validate_partition(parent, [{(1, 2), (2, 3)}, {(2, 3)}])

    def test_incomplete_cover_rejected(self):
        parent = {(1, 2), (2, 3), (3, 4)}
        with pytest.raises(PartitionError):
            validate_partition(parent, [{(1, 2)}, {(2, 3)}])

    def test_extra_edges_rejected(self):
        parent = {(1, 2)}
        with pytest.raises(PartitionError):
            validate_partition(parent, [{(1, 2)}, {(5, 6)}])


class TestBalance:
    def test_perfectly_balanced(self):
        assert balance_ratio([{(1, 2)}, {(3, 4)}]) == pytest.approx(1.0)

    def test_imbalanced(self):
        ratio = balance_ratio([{(1, 2), (3, 4), (5, 6)}, {(7, 8)}])
        assert ratio == pytest.approx(1.5)
