"""Geometric bisection: balance, determinism, degenerate inputs."""

import pytest

from repro.graph.generators import chain_network
from repro.partition.base import PartitionError, validate_partition
from repro.partition.geometric import edge_midpoint, geometric_bisection


def all_edges(network):
    return {(u, v) for u, v, _ in network.edges()}


class TestGeometricBisection:
    def test_halves_cover_and_balance(self, small_grid):
        edges = all_edges(small_grid)
        left, right = geometric_bisection(small_grid, edges)
        validate_partition(edges, [left, right])
        assert abs(len(left) - len(right)) <= 1

    def test_chain_split_is_spatial(self):
        chain = chain_network(11)
        edges = all_edges(chain)
        left, right = geometric_bisection(chain, edges)
        # The chain runs along x; the split must separate low from high ids.
        left_max = max(max(e) for e in left)
        right_min = min(min(e) for e in right)
        if left_max > right_min:  # sides may be swapped
            left, right = right, left
            left_max = max(max(e) for e in left)
            right_min = min(min(e) for e in right)
        assert left_max <= right_min + 1

    def test_deterministic(self, small_grid):
        edges = all_edges(small_grid)
        assert geometric_bisection(small_grid, edges) == geometric_bisection(
            small_grid, edges
        )

    def test_two_edges(self):
        chain = chain_network(3)
        left, right = geometric_bisection(chain, all_edges(chain))
        assert len(left) == 1 and len(right) == 1

    def test_single_edge_rejected(self):
        chain = chain_network(2)
        with pytest.raises(PartitionError):
            geometric_bisection(chain, all_edges(chain))

    def test_weighted_split_balances_weight(self, small_grid):
        edges = all_edges(small_grid)
        ordered = sorted(edges)
        # Put all the weight on one edge: it should sit alone-ish in a half.
        weights = {e: 1.0 for e in edges}
        heavy = ordered[0]
        weights[heavy] = float(len(edges))
        left, right = geometric_bisection(small_grid, edges, weights=weights)
        heavy_side = left if heavy in left else right
        other = right if heavy in left else left
        heavy_weight = sum(weights[e] for e in heavy_side)
        other_weight = sum(weights[e] for e in other)
        assert heavy_weight >= other_weight

    def test_midpoint(self):
        chain = chain_network(3, spacing=10.0)
        x, y = edge_midpoint(chain, (0, 1))
        assert (x, y) == pytest.approx((5.0, 0.0))

    def test_degenerate_coordinates_still_split(self):
        """All nodes at one point: the tie-broken sort still cuts."""
        from repro.graph.network import RoadNetwork

        net = RoadNetwork()
        for i in range(4):
            net.add_node(i, 1.0, 1.0)
        net.add_edge(0, 1, 1.0)
        net.add_edge(1, 2, 1.0)
        net.add_edge(2, 3, 1.0)
        left, right = geometric_bisection(net, all_edges(net))
        assert left and right
