"""Brute-force oracles shared across test suites.

Every engine (ROAD and the baselines) must agree with plain Dijkstra from
the query node — the paper's correctness ground truth.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.graph.network import RoadNetwork
from repro.graph.shortest_path import dijkstra_distances
from repro.objects.model import ObjectSet
from repro.queries.types import ANY, Predicate


def brute_object_distances(
    network: RoadNetwork,
    objects: ObjectSet,
    query_node: int,
    predicate: Predicate = ANY,
) -> List[Tuple[float, int]]:
    """(distance, object_id) for every reachable matching object, sorted."""
    dist = dijkstra_distances(network.neighbours, query_node)
    out: List[Tuple[float, int]] = []
    for obj in objects:
        if not predicate.matches(obj):
            continue
        u, v = obj.edge
        edge_distance = network.edge_distance(u, v)
        candidates = [
            dist[n] + obj.offset_from(n, edge_distance)
            for n in (u, v)
            if n in dist
        ]
        if candidates:
            out.append((min(candidates), obj.object_id))
    out.sort()
    return out


def brute_knn(
    network: RoadNetwork,
    objects: ObjectSet,
    query_node: int,
    k: int,
    predicate: Predicate = ANY,
) -> List[Tuple[float, int]]:
    """The k nearest matching objects by exact network distance."""
    return brute_object_distances(network, objects, query_node, predicate)[:k]


def brute_range(
    network: RoadNetwork,
    objects: ObjectSet,
    query_node: int,
    radius: float,
    predicate: Predicate = ANY,
) -> List[Tuple[float, int]]:
    """All matching objects within ``radius``, sorted by distance."""
    return [
        (d, i)
        for d, i in brute_object_distances(network, objects, query_node, predicate)
        if d <= radius + 1e-9
    ]


def assert_same_result(got, expected, *, tol: float = 1e-6) -> None:
    """Compare engine output against an oracle, tolerating distance ties.

    ``got`` is a list of ResultEntry; ``expected`` is (distance, id) pairs.
    Distances must match pairwise; ids must match except within tied
    groups, where any permutation of the tied ids is accepted.
    """
    assert len(got) == len(expected), (
        f"result size {len(got)} != expected {len(expected)}: "
        f"{[(e.object_id, e.distance) for e in got]} vs {expected}"
    )
    for entry, (exp_dist, _) in zip(got, expected):
        assert abs(entry.distance - exp_dist) <= tol, (
            f"distance mismatch: {entry} vs expected {exp_dist}"
        )
    # Group by (approximately) equal distance and compare id sets per group.
    def groups(pairs):
        grouped, current, current_d = [], [], None
        for d, i in pairs:
            if current and abs(d - current_d) > tol:
                grouped.append(sorted(current))
                current = []
            current.append(i)
            current_d = d
        if current:
            grouped.append(sorted(current))
        return grouped

    got_pairs = [(e.distance, e.object_id) for e in got]
    exp_groups = groups(expected)
    got_groups = groups(got_pairs)
    # Tie groups at the tail may be cut differently by k; compare the union.
    assert sorted(i for g in got_groups for i in g) == sorted(
        i for g in exp_groups for i in g
    ) or _tie_tolerant_equal(got_pairs, expected, tol), (
        f"id mismatch: {got_pairs} vs {expected}"
    )


def _tie_tolerant_equal(got_pairs, expected, tol: float) -> bool:
    """Accept differing ids only where distances tie at the boundary."""
    exp_by_id = {i: d for d, i in expected}
    exp_dists = sorted(d for d, _ in expected)
    got_dists = sorted(d for d, _ in got_pairs)
    if len(got_dists) != len(exp_dists):
        return False
    if any(abs(a - b) > tol for a, b in zip(got_dists, exp_dists)):
        return False
    # Every got id must either be expected, or have a distance equal to some
    # expected distance (a legitimate tie swap).
    for d, i in got_pairs:
        if i in exp_by_id:
            continue
        if not any(abs(d - e) <= tol for e in exp_dists):
            return False
    return True
