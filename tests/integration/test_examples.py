"""The shipped examples must run cleanly end to end."""

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).parent.parent.parent
EXAMPLES = sorted((REPO_ROOT / "examples").glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(REPO_ROOT / "src")]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    proc = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=420,
        env=env,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip(), "examples should print their findings"


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(names) >= 4  # quickstart + >= 3 domain scenarios
