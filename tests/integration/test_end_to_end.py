"""End-to-end scenarios across the whole stack on realistic networks."""

import pytest

from repro import ROAD, Predicate, SpatialObject
from repro.baselines import NetworkExpansionEngine
from repro.graph import ca_like, sf_like, travel_time_metric
from repro.objects import place_clustered, place_uniform
from repro.queries import knn_workload
from tests.oracle import assert_same_result, brute_knn, brute_range


@pytest.fixture(scope="module")
def city():
    """A 1k-node urban network with typed POIs — shared across scenarios."""
    network = sf_like(num_nodes=1000, seed=17)
    objects = place_uniform(
        network, 60, seed=5,
        attr_choices={"type": ["hotel", "fuel", "food"]},
    )
    road = ROAD.build(network, levels=3, fanout=4)
    road.attach_objects(objects)
    return network, objects, road


class TestQueryScenarios:
    def test_knn_matches_oracle_across_the_city(self, city):
        network, objects, road = city
        for nq in range(0, 1000, 97):
            assert_same_result(road.knn(nq, 5), brute_knn(network, objects, nq, 5))

    def test_typed_queries(self, city):
        network, objects, road = city
        for type_name in ("hotel", "fuel", "food"):
            pred = Predicate.of(type=type_name)
            got = road.knn(500, 3, pred)
            assert_same_result(got, brute_knn(network, objects, 500, 3, pred))
            for entry in got:
                assert objects.get(entry.object_id).attrs["type"] == type_name

    def test_range_query_consistency(self, city):
        network, objects, road = city
        radius = 2000.0
        got = road.range(250, radius)
        assert_same_result(got, brute_range(network, objects, 250, radius))

    def test_workload_batch(self, city):
        network, objects, road = city
        for query in knn_workload(network, 15, 4, seed=9):
            result = road.execute(query)
            assert len(result) == 4
            distances = [e.distance for e in result]
            assert distances == sorted(distances)

    def test_agreement_with_netexp_engine(self, city):
        network, objects, road = city
        netexp = NetworkExpansionEngine(network.copy(), objects)
        for nq in (10, 333, 777):
            ours = [(e.object_id, round(e.distance, 6)) for e in road.knn(nq, 6)]
            theirs = [
                (e.object_id, round(e.distance, 6)) for e in netexp.knn(nq, 6)
            ]
            assert ours == theirs


class TestLifecycleScenario:
    def test_full_day_of_operations(self):
        """Build, query, congest, close, reopen, relocate — stay exact."""
        network = ca_like(num_nodes=600, seed=23)
        road = ROAD.build(network, levels=3, fanout=4)
        directory = road.attach_objects(
            place_clustered(network, 25, clusters=3, seed=11)
        )
        import random

        rnd = random.Random(99)
        edges = sorted((u, v) for u, v, _ in network.edges())

        for step in range(12):
            action = step % 4
            if action == 0:  # congestion
                u, v = edges[rnd.randrange(len(edges))]
                road.update_edge_distance(
                    u, v, network.edge_distance(u, v) * rnd.uniform(1.2, 3.0)
                )
            elif action == 1:  # object churn
                victim = directory.objects.ids()[0]
                removed = road.delete_object(victim).obj
                u, v = edges[rnd.randrange(len(edges))]
                road.insert_object(
                    SpatialObject(victim, (u, v), 0.0, dict(removed.attrs))
                )
            elif action == 2:  # new road
                while True:
                    a = rnd.randrange(network.num_nodes)
                    b = rnd.randrange(network.num_nodes)
                    if a != b and not network.has_edge(a, b):
                        break
                road.add_edge(a, b, rnd.uniform(100.0, 500.0))
            else:  # re-rating
                target = directory.objects.ids()[-1]
                road.update_object_attrs(target, {"type": "updated"})

            nq = rnd.randrange(network.num_nodes)
            assert_same_result(
                road.knn(nq, 4), brute_knn(network, directory.objects, nq, 4)
            )
        road.hierarchy.validate()

    def test_travel_time_city(self):
        """The conference scenario: exact minutes-based queries."""
        streets = sf_like(num_nodes=500, seed=31)
        minutes = travel_time_metric(streets, seed=7, speed_range=(60.0, 90.0))
        road = ROAD.build(minutes, levels=2, fanout=4)
        objects = place_uniform(
            minutes, 30, seed=2, attr_choices={"type": ["hotel", "bus"]}
        )
        road.attach_objects(objects)
        pred = Predicate.of(type="hotel")
        got = road.range(100, 10.0, pred)
        assert_same_result(got, brute_range(minutes, objects, 100, 10.0, pred))


class TestColdCacheBehaviour:
    def test_cold_queries_are_deterministic(self, city):
        network, objects, road = city
        road.pager.drop_cache()
        first = road.knn(42, 5)
        road.pager.drop_cache()
        second = road.knn(42, 5)
        assert [(e.object_id, e.distance) for e in first] == [
            (e.object_id, e.distance) for e in second
        ]

    def test_warm_cache_reduces_io(self, city):
        _, _, road = city
        road.pager.drop_cache()
        road.pager.reset_stats()
        road.knn(42, 5)
        cold_reads = road.pager.stats.reads
        road.pager.reset_stats()
        road.knn(42, 5)
        warm_reads = road.pager.stats.reads
        assert warm_reads < cold_reads
