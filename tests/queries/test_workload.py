"""Workload generators: determinism, shapes."""

from repro.graph.generators import grid_network
from repro.queries.types import Predicate
from repro.queries.workload import (
    knn_workload,
    random_query_nodes,
    range_workload,
)


class TestWorkloads:
    def test_query_nodes_valid_and_deterministic(self):
        net = grid_network(5, 5, seed=0)
        nodes = random_query_nodes(net, 20, seed=3)
        assert len(nodes) == 20
        assert all(net.has_node(n) for n in nodes)
        assert nodes == random_query_nodes(net, 20, seed=3)
        assert nodes != random_query_nodes(net, 20, seed=4)

    def test_knn_workload(self):
        net = grid_network(5, 5, seed=0)
        queries = knn_workload(net, 10, k=5, seed=1)
        assert len(queries) == 10
        assert all(q.k == 5 for q in queries)

    def test_knn_workload_with_predicate(self):
        net = grid_network(5, 5, seed=0)
        pred = Predicate.of(type="hotel")
        queries = knn_workload(net, 5, k=2, seed=1, predicate=pred)
        assert all(q.predicate == pred for q in queries)

    def test_range_workload(self):
        net = grid_network(5, 5, seed=0)
        queries = range_workload(net, 10, radius=123.0, seed=2)
        assert len(queries) == 10
        assert all(q.radius == 123.0 for q in queries)
