"""Workload generators: determinism, shapes."""

from repro.graph.generators import grid_network
from repro.queries.types import Predicate
from repro.queries.workload import (
    knn_workload,
    random_query_nodes,
    range_workload,
)


class TestWorkloads:
    def test_query_nodes_valid_and_deterministic(self):
        net = grid_network(5, 5, seed=0)
        nodes = random_query_nodes(net, 20, seed=3)
        assert len(nodes) == 20
        assert all(net.has_node(n) for n in nodes)
        assert nodes == random_query_nodes(net, 20, seed=3)
        assert nodes != random_query_nodes(net, 20, seed=4)

    def test_knn_workload(self):
        net = grid_network(5, 5, seed=0)
        queries = knn_workload(net, 10, k=5, seed=1)
        assert len(queries) == 10
        assert all(q.k == 5 for q in queries)

    def test_knn_workload_with_predicate(self):
        net = grid_network(5, 5, seed=0)
        pred = Predicate.of(type="hotel")
        queries = knn_workload(net, 5, k=2, seed=1, predicate=pred)
        assert all(q.predicate == pred for q in queries)

    def test_range_workload(self):
        net = grid_network(5, 5, seed=0)
        queries = range_workload(net, 10, radius=123.0, seed=2)
        assert len(queries) == 10
        assert all(q.radius == 123.0 for q in queries)


class TestMixedWorkload:
    def test_mixed_workload_shape_and_determinism(self):
        from repro.queries.types import KNNQuery, RangeQuery
        from repro.queries.workload import mixed_workload

        net = grid_network(6, 6, seed=1)
        preds = [Predicate.of(type="a"), Predicate.of(type="b")]
        batch = mixed_workload(
            net, 40, k=3, radius=5.0, seed=7, predicates=preds
        )
        again = mixed_workload(
            net, 40, k=3, radius=5.0, seed=7, predicates=preds
        )
        assert batch == again  # deterministic from the seed
        kinds = {type(q) for q in batch}
        assert kinds == {KNNQuery, RangeQuery}  # both LDSQs present
        assert {q.predicate for q in batch} == set(preds)
        for q in batch:
            assert net.has_node(q.node)

    def test_mixed_workload_requires_predicates(self):
        import pytest

        from repro.queries.workload import mixed_workload

        net = grid_network(4, 4, seed=1)
        with pytest.raises(ValueError):
            mixed_workload(net, 5, predicates=[])
