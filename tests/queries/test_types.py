"""Query types: predicates, validation, result ordering."""

import pytest

from repro.objects.model import SpatialObject
from repro.queries.types import (
    ANY,
    KNNQuery,
    Predicate,
    RangeQuery,
    ResultEntry,
    sort_result,
)


def obj(**attrs):
    return SpatialObject(1, (1, 2), 0.0, attrs)


class TestPredicate:
    def test_unconstrained_matches_everything(self):
        assert ANY.is_unconstrained
        assert ANY.matches(obj())
        assert ANY.matches(obj(type="hotel"))

    def test_single_attribute(self):
        pred = Predicate.of(type="hotel")
        assert pred.matches(obj(type="hotel"))
        assert not pred.matches(obj(type="fuel"))
        assert not pred.matches(obj())

    def test_conjunction(self):
        pred = Predicate.of(type="hotel", stars="4")
        assert pred.matches(obj(type="hotel", stars="4"))
        assert not pred.matches(obj(type="hotel", stars="5"))

    def test_order_independence_and_hash(self):
        a = Predicate.of(type="hotel", city="SF")
        b = Predicate.from_mapping({"city": "SF", "type": "hotel"})
        assert a == b
        assert hash(a) == hash(b)

    def test_as_dict(self):
        assert Predicate.of(type="x").as_dict() == {"type": "x"}

    def test_extra_attributes_allowed(self):
        pred = Predicate.of(type="hotel")
        assert pred.matches(obj(type="hotel", extra="yes"))


class TestQueryValidation:
    def test_knn_requires_positive_k(self):
        with pytest.raises(ValueError):
            KNNQuery(0, 0)
        assert KNNQuery(0, 1).k == 1

    def test_range_requires_non_negative_radius(self):
        with pytest.raises(ValueError):
            RangeQuery(0, -0.1)
        assert RangeQuery(0, 0.0).radius == 0.0

    def test_queries_are_hashable(self):
        assert len({KNNQuery(0, 1), KNNQuery(0, 1), RangeQuery(0, 5.0)}) == 2


class TestResults:
    def test_sort_result_by_distance_then_id(self):
        entries = [
            ResultEntry(3, 5.0),
            ResultEntry(1, 5.0),
            ResultEntry(2, 1.0),
        ]
        assert [e.object_id for e in sort_result(entries)] == [2, 1, 3]
