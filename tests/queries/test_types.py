"""Query types: predicates, validation, result ordering."""

import pytest

from repro.objects.model import SpatialObject
from repro.queries.types import (
    ANY,
    AggregateKNNQuery,
    KNNQuery,
    ODMatrixEntry,
    ODMatrixQuery,
    Predicate,
    RangeQuery,
    ResultEntry,
    RouteKNNQuery,
    ServiceAreaEntry,
    ServiceAreaQuery,
    sort_result,
)


def obj(**attrs):
    return SpatialObject(1, (1, 2), 0.0, attrs)


class TestPredicate:
    def test_unconstrained_matches_everything(self):
        assert ANY.is_unconstrained
        assert ANY.matches(obj())
        assert ANY.matches(obj(type="hotel"))

    def test_single_attribute(self):
        pred = Predicate.of(type="hotel")
        assert pred.matches(obj(type="hotel"))
        assert not pred.matches(obj(type="fuel"))
        assert not pred.matches(obj())

    def test_conjunction(self):
        pred = Predicate.of(type="hotel", stars="4")
        assert pred.matches(obj(type="hotel", stars="4"))
        assert not pred.matches(obj(type="hotel", stars="5"))

    def test_order_independence_and_hash(self):
        a = Predicate.of(type="hotel", city="SF")
        b = Predicate.from_mapping({"city": "SF", "type": "hotel"})
        assert a == b
        assert hash(a) == hash(b)

    def test_as_dict(self):
        assert Predicate.of(type="x").as_dict() == {"type": "x"}

    def test_extra_attributes_allowed(self):
        pred = Predicate.of(type="hotel")
        assert pred.matches(obj(type="hotel", extra="yes"))


class TestQueryValidation:
    def test_knn_requires_positive_k(self):
        with pytest.raises(ValueError):
            KNNQuery(0, 0)
        assert KNNQuery(0, 1).k == 1

    def test_range_requires_non_negative_radius(self):
        with pytest.raises(ValueError):
            RangeQuery(0, -0.1)
        assert RangeQuery(0, 0.0).radius == 0.0

    def test_queries_are_hashable(self):
        assert len({KNNQuery(0, 1), KNNQuery(0, 1), RangeQuery(0, 5.0)}) == 2

    @pytest.mark.parametrize("bad", [True, 1.5, "0", None])
    def test_node_fields_reject_non_ints(self, bad):
        with pytest.raises(ValueError):
            KNNQuery(bad, 1)
        with pytest.raises(ValueError):
            ODMatrixQuery((0, bad), (1,))
        with pytest.raises(ValueError):
            ServiceAreaQuery(bad, (1.0,))
        with pytest.raises(ValueError):
            RouteKNNQuery((bad,), 1)

    def test_bool_k_is_rejected(self):
        # bool is an int subclass; k=True must not mean k=1.
        with pytest.raises(ValueError):
            KNNQuery(0, True)
        with pytest.raises(ValueError):
            RouteKNNQuery((0,), True)

    @pytest.mark.parametrize(
        "bad_radius", [float("nan"), float("inf"), -1.0, "far", True]
    )
    def test_distances_must_be_finite_non_negative(self, bad_radius):
        with pytest.raises(ValueError):
            RangeQuery(0, bad_radius)
        with pytest.raises(ValueError):
            ServiceAreaQuery(0, (bad_radius,))

    def test_od_matrix_sources_must_be_non_empty(self):
        with pytest.raises(ValueError, match="need at least one source"):
            ODMatrixQuery((), (0,))
        assert ODMatrixQuery((0,), ()).targets == ()

    def test_route_path_must_be_non_empty(self):
        with pytest.raises(ValueError, match="need at least one path"):
            RouteKNNQuery((), 1)

    def test_aggregate_nodes_must_be_non_empty(self):
        with pytest.raises(ValueError, match="need at least one query"):
            AggregateKNNQuery((), 1)

    def test_breaks_normalise_to_sorted_floats(self):
        query = ServiceAreaQuery(0, (10, 2.5, 7))
        assert query.breaks == (2.5, 7.0, 10.0)
        with pytest.raises(ValueError, match="need at least one break"):
            ServiceAreaQuery(0, ())

    def test_new_queries_are_hashable(self):
        queries = {
            ODMatrixQuery((0,), (1,)),
            ODMatrixQuery((0,), (1,)),
            ServiceAreaQuery(0, (1.0,)),
            RouteKNNQuery((0,), 1),
        }
        assert len(queries) == 3


class TestResults:
    def test_sort_result_by_distance_then_id(self):
        entries = [
            ResultEntry(3, 5.0),
            ResultEntry(1, 5.0),
            ResultEntry(2, 1.0),
        ]
        assert [e.object_id for e in sort_result(entries)] == [2, 1, 3]

    def test_service_area_entry_is_a_result_entry(self):
        entry = ServiceAreaEntry(4, 2.0, 1)
        assert isinstance(entry, ResultEntry)
        assert (entry.object_id, entry.distance, entry.bucket) == (4, 2.0, 1)

    def test_od_entry_equality_and_hash(self):
        assert ODMatrixEntry(0, 1, 2.0) == ODMatrixEntry(0, 1, 2.0)
        assert len({ODMatrixEntry(0, 1, 2.0), ODMatrixEntry(0, 1, 2.0)}) == 1
