"""CLI experiment runner."""

import pytest

from repro.eval.cli import REGISTRY, main


@pytest.fixture(autouse=True)
def tiny_scale(monkeypatch):
    """Shrink datasets so CLI smoke runs stay fast."""
    import repro.eval.config as config
    from repro.eval.datasets import load_dataset

    original = config.MINI_PROFILES
    config.MINI_PROFILES = {
        name: config.NetworkProfile(
            p.name, 250, p.edge_ratio, 0, p.seed, 2, (1, 2), 6
        )
        for name, p in original.items()
    }
    load_dataset.cache_clear()
    monkeypatch.setenv("REPRO_QUERIES", "2")
    yield
    config.MINI_PROFILES = original
    load_dataset.cache_clear()


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig17a" in out and "table1" in out
        assert len(out.splitlines()) == len(REGISTRY)

    def test_single_experiment(self, capsys):
        assert main(["table1"]) == 0
        assert "Evaluation parameters" in capsys.readouterr().out

    def test_experiment_with_output_dir(self, tmp_path, capsys):
        assert main(["fig11", "--out", str(tmp_path)]) == 0
        assert (tmp_path / "fig11.txt").exists()

    def test_unknown_experiment(self, capsys):
        assert main(["fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_queries_flag(self, monkeypatch, capsys):
        import os

        assert main(["table1", "--queries", "3"]) == 0
        assert os.environ["REPRO_QUERIES"] == "3"

    def test_registry_covers_every_figure(self):
        for fig in ("fig11", "fig13", "fig14", "fig15", "fig16",
                    "fig17a", "fig17b", "fig17c",
                    "fig18a", "fig18b", "fig18c", "fig19"):
            assert fig in REGISTRY
