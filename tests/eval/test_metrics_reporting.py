"""Measurement protocol and table rendering."""

import pytest

from repro.baselines import NetworkExpansionEngine
from repro.eval.metrics import (
    WorkloadSummary,
    measure_query,
    run_workload,
    time_call,
)
from repro.eval.reporting import ExperimentResult, dominance
from repro.graph.generators import grid_network
from repro.objects.placement import place_uniform
from repro.queries.types import KNNQuery
from repro.queries.workload import knn_workload


@pytest.fixture
def engine():
    net = grid_network(6, 6, seed=2)
    return NetworkExpansionEngine(net, place_uniform(net, 8, seed=1))


class TestMetrics:
    def test_measure_query_cold_cache(self, engine):
        m = measure_query(engine, KNNQuery(0, 3))
        assert m.elapsed_ms > 0
        assert m.io_reads > 0  # cold cache must hit the disk
        assert m.result_size == 3

    def test_run_workload_aggregates(self, engine):
        queries = knn_workload(engine.network, 5, 2, seed=3)
        summary = run_workload(engine, queries, label="test")
        assert summary.count == 5
        assert summary.label == "test"
        assert summary.mean_ms > 0
        assert summary.median_ms > 0
        assert summary.mean_io > 0
        assert summary.mean_result_size == pytest.approx(2.0)

    def test_empty_summary(self):
        summary = WorkloadSummary("empty")
        assert summary.mean_ms == 0.0
        assert summary.median_ms == 0.0
        assert summary.mean_io == 0.0
        assert summary.mean_result_size == 0.0

    def test_time_call(self):
        result, seconds = time_call(lambda x: x * 2, 21)
        assert result == 42
        assert seconds >= 0


class TestReporting:
    def test_render_contains_rows_and_notes(self):
        result = ExperimentResult("figX", "demo", ["engine", "time_ms"])
        result.add_row(engine="ROAD", time_ms=1.234)
        result.add_row(engine="NetExp", time_ms=15_000.5)
        result.note("a note")
        text = result.render()
        assert "figX" in text and "demo" in text
        assert "ROAD" in text and "1.23" in text
        assert "15,000" in text  # large floats get thousands separators
        assert "note: a note" in text

    def test_column_accessor(self):
        result = ExperimentResult("figX", "demo", ["a", "b"])
        result.add_row(a=1, b=2)
        result.add_row(a=3, b=4)
        assert result.column("a") == [1, 3]
        assert result.column("missing") == ["", ""]

    def test_save_round_trip(self, tmp_path):
        result = ExperimentResult("figY", "demo", ["a"])
        result.add_row(a="x")
        path = result.save(tmp_path)
        assert path.name == "figY.txt"
        assert "figY" in path.read_text()

    def test_dominance(self):
        result = ExperimentResult("figZ", "demo", ["engine", "time_ms"])
        result.add_row(engine="A", time_ms=10.0)
        result.add_row(engine="B", time_ms=1.0)
        result.add_row(engine="A", time_ms=20.0)
        result.add_row(engine="B", time_ms=2.0)
        assert dominance(result, "time_ms") == "B"

    def test_dominance_empty(self):
        assert dominance(ExperimentResult("f", "t", ["x"]), "x") == "n/a"
